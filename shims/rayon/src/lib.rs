//! Offline substitute for the `rayon` crate.
//!
//! Exposes the prelude traits the workspace uses (`into_par_iter`,
//! `par_iter`, `par_iter_mut`, `par_chunks_mut`) but executes
//! **sequentially**: every `par_*` entry point returns the corresponding
//! `std` iterator, so all downstream adapters (`map`, `enumerate`, `zip`,
//! `collect`, `for_each`, …) come from `std::iter::Iterator` unchanged.
//!
//! This preserves exact semantics and determinism — the BSP cluster's
//! `Parallel` mode degrades to the `Sequential` schedule, which the
//! engine's correctness never depends on (results are superstep-barrier
//! deterministic either way). When a real thread pool is available again,
//! swapping the registry dependency back restores the speedup without any
//! caller changes.

pub mod prelude {
    /// Sequential stand-in for rayon's `ParallelIterator`: wraps a serial
    /// iterator and exposes the rayon-shaped adapters whose signatures
    /// differ from `std::iter::Iterator` (`reduce` with an identity
    /// closure, `map_init`), plus the common ones the workspace chains.
    pub struct ParIter<I>(I);

    impl<I: Iterator> ParIter<I> {
        /// Applies `f` to every element.
        pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> ParIter<impl Iterator<Item = O>> {
            ParIter(self.0.map(f))
        }

        /// Rayon's `map_init`: creates per-worker scratch once (once total
        /// here — one sequential worker) and passes it to every call.
        pub fn map_init<T, O, INIT, F>(
            self,
            init: INIT,
            mut f: F,
        ) -> ParIter<impl Iterator<Item = O>>
        where
            INIT: Fn() -> T,
            F: FnMut(&mut T, I::Item) -> O,
        {
            let mut scratch = init();
            ParIter(self.0.map(move |item| f(&mut scratch, item)))
        }

        /// Pairs every element with its index.
        pub fn enumerate(self) -> ParIter<impl Iterator<Item = (usize, I::Item)>> {
            ParIter(self.0.enumerate())
        }

        /// Zips with another (serial) iterable.
        pub fn zip<J: IntoIterator>(
            self,
            other: J,
        ) -> ParIter<impl Iterator<Item = (I::Item, J::Item)>> {
            ParIter(self.0.zip(other))
        }

        /// Keeps elements matching `pred`.
        pub fn filter<F: FnMut(&I::Item) -> bool>(
            self,
            pred: F,
        ) -> ParIter<impl Iterator<Item = I::Item>> {
            ParIter(self.0.filter(pred))
        }

        /// Consumes the iterator, calling `f` on every element.
        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.0.for_each(f)
        }

        /// Collects into any `FromIterator` collection.
        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        /// Rayon's `reduce`: folds with `op` starting from `identity()`.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: FnMut(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }

        /// Sums the elements.
        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        /// Counts the elements.
        pub fn count(self) -> usize {
            self.0.count()
        }
    }

    /// `rayon::iter::IntoParallelIterator`, sequential edition: every
    /// `IntoIterator` can be "parallelized" into a [`ParIter`] over its
    /// own serial iterator.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;

        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }

    /// `par_iter` over shared references.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `par_iter_mut` over exclusive references.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `par_chunks_mut` over slices.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// `par_chunks` over slices.
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }
}

/// Runs both closures (sequentially here) and returns their results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The sequential executor has exactly one lane.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_matches_serial() {
        let out: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_enumerate_zip() {
        let mut v = vec![0u32; 4];
        let adds = vec![10u32, 20, 30, 40];
        v.par_iter_mut().enumerate().zip(adds).for_each(|((i, slot), a)| *slot = i as u32 + a);
        assert_eq!(v, vec![10, 21, 32, 43]);
    }

    #[test]
    fn par_chunks_mut_fills_rows() {
        let mut data = vec![0u32; 9];
        data.par_chunks_mut(3).enumerate().for_each(|(r, row)| row.fill(r as u32));
        assert_eq!(data, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
