//! Offline substitute for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`ProptestConfig`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * cases are drawn from a **deterministic** per-test RNG (seeded from
//!   the test name), so failures are reproducible across runs;
//! * there is **no shrinking** — a failing case reports its index and
//!   message but not a minimized input;
//! * `prop_assume!` rejections simply skip the case (no rejection-rate
//!   bookkeeping).

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for `case` of the test identified by `tag`.
    pub fn deterministic(tag: u64, case: u64) -> Self {
        Self { state: tag ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D1CE_4E5B }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// FNV-1a hash of a test name, used to seed its RNG.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the harness panics with the message.
    Fail(String),
    /// `prop_assume!` rejected the case; the harness skips it.
    Reject(String),
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API compatibility).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, dynamically-typed strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Lengths accepted by [`vec`].
    pub trait IntoSizeRange {
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end.max(self.start + 1) - 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max > self.min {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            } else {
                self.min
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `elem`-generated values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test file needs.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Asserts inside a proptest case; failure aborts the case with a message
/// instead of unwinding through generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Inequality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng =
                    $crate::TestRng::deterministic($crate::fnv(stringify!($name)), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), case, msg);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::deterministic(1, 0);
        for _ in 0..500 {
            let x = Strategy::generate(&(3u32..9), &mut rng);
            assert!((3..9).contains(&x));
            let y = Strategy::generate(&(0usize..=4), &mut rng);
            assert!(y <= 4);
        }
    }

    #[test]
    fn map_flat_map_and_vec_compose() {
        let strat = (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u32..10, n..(n + 1)).prop_map(move |v| (n, v))
        });
        let mut rng = TestRng::deterministic(2, 0);
        for _ in 0..100 {
            let (n, v) = Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_machinery_works(a in 0u32..100, b in 0u32..100) {
            prop_assume!(a != b);
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = || {
            let mut rng = TestRng::deterministic(crate::fnv("x"), 3);
            Strategy::generate(&(0u64..1_000_000), &mut rng)
        };
        assert_eq!(draw(), draw());
    }
}
