//! Offline substitute for the `rustc-hash` crate.
//!
//! Same public surface the workspace uses (`FxHashMap`, `FxHashSet`,
//! `FxHasher`, `FxBuildHasher`) and the same Fx multiply-rotate hashing
//! scheme, so hash-map behaviour (speed class, non-cryptographic) matches
//! the real crate. Implemented in-tree because the build environment has no
//! registry access.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash function: a fast multiply-rotate word hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
