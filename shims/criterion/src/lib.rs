//! Offline substitute for the `criterion` crate.
//!
//! Supports the subset the workspace's `[[bench]]` targets use —
//! `Criterion::bench_function`, `Bencher::iter` / `iter_batched`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//! Instead of criterion's statistical machinery it runs a short
//! warmup, then times a fixed measurement window and reports mean
//! ns/iteration — enough to compare kernels locally and to keep the
//! bench targets compiling and runnable offline.

use std::time::{Duration, Instant};

/// How batched-setup inputs are sized; accepted for API compatibility
/// (the sequential harness treats every variant the same).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark timing driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    mean_ns: f64,
    iters: u64,
    measure_window: Duration,
}

impl Bencher {
    fn new(measure_window: Duration) -> Self {
        Self { mean_ns: f64::NAN, iters: 0, measure_window }
    }

    /// Times `routine` repeatedly over the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup (also primes caches and forces lazy statics).
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < self.measure_window || iters == 0 {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.mean_ns = started.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            std::hint::black_box(routine(setup()));
        }
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        while spent < self.measure_window || iters == 0 {
            let input = setup();
            let started = Instant::now();
            std::hint::black_box(routine(input));
            spent += started.elapsed();
            iters += 1;
        }
        self.mean_ns = spent.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    measure_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short window: these benches run in CI/tests, not for papers.
        Self { measure_window: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim measures a fixed window
    /// rather than a statistical sample, so the count is ignored.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure_window = d;
        self
    }

    /// Accepted for API compatibility; the shim does not warm up.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark and prints its mean time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.measure_window);
        f(&mut b);
        let (value, unit) = if b.mean_ns >= 1e6 {
            (b.mean_ns / 1e6, "ms")
        } else if b.mean_ns >= 1e3 {
            (b.mean_ns / 1e3, "µs")
        } else {
            (b.mean_ns, "ns")
        };
        println!("{name:<44} {value:>10.2} {unit}/iter  ({} iters)", b.iters);
        self
    }
}

/// Re-export so call sites can keep `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function running each listed benchmark.
/// Supports both the positional form and real criterion's named
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter(|| 1 + 1);
        assert!(b.mean_ns.is_finite() && b.mean_ns >= 0.0);
        assert!(b.iters > 0);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }

    #[test]
    fn bench_function_runs() {
        Criterion { measure_window: Duration::from_millis(2) }
            .bench_function("smoke", |b| b.iter(|| 2 * 2));
    }
}
