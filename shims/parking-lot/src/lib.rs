//! Offline substitute for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (`lock()` returns the guard directly). A poisoned std lock is recovered
//! by taking the inner guard — matching parking_lot's semantics, where a
//! panicking holder never poisons.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisition methods cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
