//! Offline substitute for the `rand` crate.
//!
//! Implements the subset of rand 0.8's API this workspace uses — the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, uniform `gen_range`
//! over integer and float ranges, `gen`, `gen_bool`, and
//! [`seq::SliceRandom`] (`shuffle` / `choose`). Determinism guarantees are
//! the ones the repo's tests rely on: the same seed always produces the
//! same stream. Bit-compatibility with upstream rand is *not* promised
//! (no test here asserts upstream-derived constants).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform generator: a source of random 64-bit words.
pub trait RngCore {
    /// Next uniformly random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&w[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (rand 0.8 shape: a byte-array seed plus the
/// `seed_from_u64` convenience that expands a word via SplitMix64).
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit state into a full seed with SplitMix64 and
    /// constructs the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`hi` exclusive).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]` (`hi` inclusive).
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased-in-practice bounded u64 via 128-bit multiply-shift.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * u;
                // Guard the open upper bound against rounding.
                if v >= hi { lo } else { v }
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                lo + (hi - lo) * <$t as Standard>::sample_standard(rng)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A value of the inferred type from the standard distribution.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Random-order and random-pick operations on slices.
    pub trait SliceRandom {
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

pub mod rngs {
    //! A default in-tree generator, for completeness with rand's `rngs`.

    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result =
                (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn f64_standard_is_half_open_unit() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
