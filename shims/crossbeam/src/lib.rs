//! Offline substitute for the `crossbeam` crate.
//!
//! Provides the `channel` module surface the workspace uses (`unbounded`,
//! `Sender`, `Receiver`, the recv error types) on top of `std::sync::mpsc`.
//! Semantics relevant to the runtime are identical: unbounded buffering,
//! cloneable senders, FIFO per sender, `recv_timeout`, and disconnect
//! errors once every sender is dropped.

pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
    use std::time::Duration;

    /// Sending half of an unbounded channel (cloneable).
    #[derive(Debug)]
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    // Derived Clone would require T: Clone; the underlying sender does not.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Sender<T> {
        /// Sends a message; never blocks. Errs if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Returns a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1u32).unwrap();
        let tx2 = tx.clone();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        std::thread::spawn(move || tx.send(99u64).unwrap());
        assert_eq!(rx.recv().unwrap(), 99);
    }
}
