//! Offline substitute for the `rand_chacha` crate.
//!
//! [`ChaCha8Rng`] is a genuine ChaCha keystream generator with 8 rounds
//! (RFC 8439 quarter-round on the standard 16-word state), exposing the
//! `RngCore` + `SeedableRng` traits of the in-tree `rand` shim. The repo
//! relies on seeded reproducibility, not on bit-compatibility with the
//! upstream crate, and every seeded stream here is stable.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha keystream generator with 8 double-round-pairs worth of mixing.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constants + counter + nonce, the standard 16-word layout.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        // Counter (12–13) and nonce (14–15) start at zero.
        Self { state, block: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_stream_is_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn keystream_crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // 16 words per block; pull several blocks' worth.
        let words: Vec<u32> = (0..100).map(|_| rng.next_u32()).collect();
        assert_eq!(words.len(), 100);
        // Not all equal (sanity that the counter advances).
        assert!(words.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn works_with_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let x = rng.gen_range(0..10u32);
            assert!(x < 10);
        }
    }
}
