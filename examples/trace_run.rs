//! Trace a dynamic-graph analysis end to end.
//!
//! Runs a small anytime-anywhere analysis — construction, partial
//! convergence, a vertex-addition batch, a checkpoint, reconvergence —
//! with a live event sink, then writes:
//!
//! * `trace_run.trace.json` — a Chrome-trace array on the LogP-simulated
//!   timeline (open in Perfetto or `chrome://tracing`): one lane per rank
//!   plus a driver lane for exchanges, collectives, RC steps and
//!   checkpoints;
//! * `trace_run.report.json` — the machine-readable RunReport the CI perf
//!   gate consumes (see `perfgate`).
//!
//! ```text
//! cargo run --release --example trace_run
//! ```

use anytime_anywhere::core::changes::preferential_batch;
use anytime_anywhere::core::{AnytimeEngine, AssignStrategy, EngineConfig, MemorySink};
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::observe::{aggregate_phases, chrome_trace, per_rank_busy};
use std::sync::Arc;

fn main() {
    let procs = 8;
    let g = barabasi_albert(600, 3, WeightModel::Unit, 42).expect("generator");

    // Install the collecting sink before construction so even the DD and
    // IA phases are traced.
    let sink = Arc::new(MemorySink::new());
    let mut engine = AnytimeEngine::with_sink(g, EngineConfig::deterministic(procs), sink.clone())
        .expect("engine");

    // Partial static convergence, then a change arrives mid-analysis.
    for _ in 0..4 {
        engine.rc_step();
    }
    let batch = preferential_batch(engine.graph(), 24, 2, 7);
    engine.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).expect("batch");
    let _checkpoint = engine.checkpoint_bytes().expect("checkpoint");
    let summary = engine.run_to_convergence();
    assert!(summary.converged);

    // Export both artifacts.
    let events = sink.drain();
    let trace = chrome_trace(&events, procs);
    std::fs::write("trace_run.trace.json", &trace).expect("trace write");

    let mut report = engine.stats().init_report("trace_run:example");
    report.scale = 600;
    report.procs = procs as u64;
    report.seed = 42;
    report.rc_steps = engine.rc_steps_done() as u64;
    report.phases = aggregate_phases(&events);
    report.ranks = per_rank_busy(&events);
    std::fs::write("trace_run.report.json", report.to_json_string()).expect("report write");

    println!("traced {} spans across {} lanes", events.len(), report.ranks.len());
    println!(
        "simulated time: {:.1} ms  (comm {:.1} ms, compute {:.1} ms)",
        report.sim_total_us() / 1e3,
        report.sim_comm_us / 1e3,
        report.sim_compute_us / 1e3
    );
    for phase in &report.phases {
        println!("  {:>20}  ×{:<5} {:>10.1} µs sim", phase.name, phase.count, phase.sim_us);
    }
    println!("wrote trace_run.trace.json (Perfetto) and trace_run.report.json (perfgate)");
}
