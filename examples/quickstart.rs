//! Quickstart: build a scale-free social graph, run the anytime anywhere
//! engine, query closeness mid-analysis, then absorb a dynamic change.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use anytime_anywhere::core::changes::preferential_batch;
use anytime_anywhere::core::{AnytimeEngine, AssignStrategy, EngineConfig};
use anytime_anywhere::graph::closeness::top_k;
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};

fn main() {
    // 1. A scale-free "social network" of 2,000 actors.
    let graph =
        barabasi_albert(2_000, 3, WeightModel::Unit, 42).expect("generator parameters valid");
    println!("graph: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    // 2. Distributed analysis on 8 logical processors.
    let mut engine =
        AnytimeEngine::new(graph, EngineConfig::with_procs(8)).expect("engine construction");

    // 3. Anytime: query after a single recombination step — the estimate is
    //    already usable and only improves from here.
    engine.rc_step();
    let early = engine.closeness();
    println!("after 1 RC step, top-5 estimate: {:?}", top_k(&early, 5));

    let summary = engine.run_to_convergence();
    println!(
        "converged in {} more steps; top-5 exact: {:?}",
        summary.steps,
        top_k(&engine.closeness(), 5)
    );

    // 4. Anywhere: 50 new actors join mid-analysis; incorporate them without
    //    restarting, then re-converge.
    let batch = preferential_batch(engine.graph(), 50, 3, 7);
    engine.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).expect("valid batch");
    let summary = engine.run_to_convergence();
    println!("absorbed 50 vertex additions in {} RC steps (no restart)", summary.steps);

    let stats = engine.stats();
    println!(
        "totals: {} messages, {:.1} MB, simulated time {:.2} s (compute {:.2} s + comm {:.2} s), wall {:.2} s",
        stats.messages,
        stats.bytes as f64 / 1e6,
        stats.sim_total_secs(),
        stats.sim_compute_us / 1e6,
        stats.sim_comm_us / 1e6,
        stats.wall.as_secs_f64(),
    );
}
