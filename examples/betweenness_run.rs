//! Incremental betweenness riding the anytime pipeline — the engine
//! maintains two centrality columns at once, a vertex batch lands
//! mid-analysis, and the incremental path re-converges doing far less
//! per-source work than a full Brandes rescan would.
//!
//! ```text
//! cargo run --release --example betweenness_run
//! ```

use anytime_anywhere::core::changes::preferential_batch;
use anytime_anywhere::core::{AnytimeEngine, AssignStrategy, EngineConfig, MetricKind};
use anytime_anywhere::graph::centrality::betweenness_exact_det;
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::graph::Csr;
use anytime_anywhere::serve::ServeHandle;

const VERTICES: usize = 600;
const PROCS: usize = 4;

fn main() {
    let graph = barabasi_albert(VERTICES, 2, WeightModel::UniformRange { lo: 1, hi: 6 }, 9)
        .expect("valid params");
    let mut config = EngineConfig::deterministic(PROCS);
    config.metrics = vec![MetricKind::Betweenness];
    let mut engine = AnytimeEngine::new(graph, config).expect("engine");
    println!(
        "scale-free graph: {} vertices on {} simulated processors",
        engine.graph().num_vertices(),
        PROCS
    );
    println!("metrics carried by every published epoch: {:?}\n", engine.metric_mask());

    // Static convergence: both columns are exact once the DV rows are.
    engine.run_to_convergence();
    let handle = ServeHandle::attach(&engine);
    let close = handle.top_k_for(MetricKind::Closeness, 3).expect("always carried");
    let betw = handle.top_k_for(MetricKind::Betweenness, 3).expect("enabled at build");
    println!("top-3 closeness:   {close:?}");
    println!("top-3 betweenness: {betw:?}");

    let oracle = betweenness_exact_det(&Csr::from_adj(engine.graph()));
    let col = handle.view().metric_values(MetricKind::Betweenness).expect("carried");
    assert_eq!(col, oracle, "converged column is bit-equal to the Brandes oracle");
    println!("column matches the deterministic Brandes oracle bit-for-bit\n");

    // A dynamic batch lands; the incremental path recomputes dependency
    // vectors only for sources whose DV rows changed.
    let batch = preferential_batch(engine.graph(), 30, 2, 11);
    engine.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).expect("batch applies");
    engine.run_to_convergence();

    let n = engine.graph().num_vertices() as u64;
    let tally = engine.metric_tally(MetricKind::Betweenness).expect("maintained");
    println!(
        "after the batch: {} update epochs, {} source recomputations \
         (a per-epoch rescan would have cost {}), {} entries changed",
        tally.epochs,
        tally.sources_recomputed,
        n * tally.epochs,
        tally.changed_entries
    );

    let oracle = betweenness_exact_det(&Csr::from_adj(engine.graph()));
    let col = handle.view().metric_values(MetricKind::Betweenness).expect("carried");
    assert_eq!(col, oracle, "re-converged column is exact again");
    println!("re-converged column matches the oracle bit-for-bit");

    // Asking for a metric the engine does not maintain is a typed error,
    // never a panic or a silent zero.
    let plain = AnytimeEngine::new(
        barabasi_albert(50, 2, WeightModel::Unit, 1).unwrap(),
        EngineConfig::deterministic(2),
    )
    .expect("engine");
    let plain_handle = ServeHandle::attach(&plain);
    let err = plain_handle.top_k_for(MetricKind::Betweenness, 3).unwrap_err();
    println!("\nquerying an absent metric: {err}");
}
