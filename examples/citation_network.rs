//! A citation network receiving a large batch of new publications from a
//! few research communities — the workload where processor-assignment
//! strategy matters (§V.B.2). Compares RoundRobin-PS, CutEdge-PS and
//! Repartition-S on new-cut-edges and runtime.
//!
//! ```text
//! cargo run --release --example citation_network
//! ```

use anytime_anywhere::core::changes::{community_batch, CommunityBatchParams};
use anytime_anywhere::core::{AnytimeEngine, AssignStrategy, EngineConfig};
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::partition::quality::new_cut_edges;

const PAPERS: usize = 1_500;
const NEW_PAPERS: usize = 160;
const PROCS: usize = 8;

fn main() {
    let graph = barabasi_albert(PAPERS, 2, WeightModel::Unit, 5).expect("valid params");
    println!(
        "citation network: {} papers, {} citations; adding {} papers from ~{} communities\n",
        graph.num_vertices(),
        graph.num_edges(),
        NEW_PAPERS,
        NEW_PAPERS / 40
    );
    let params = CommunityBatchParams {
        count: NEW_PAPERS,
        community_size: 40,
        attach_edges: 2,
        seed: 9,
        ..Default::default()
    };
    let (batch, _) = community_batch(&graph, &params);
    let base = graph.num_vertices() as u32;
    println!(
        "batch: {} new vertices, {} edges ({} internal to the batch)",
        batch.len(),
        batch.num_edges(),
        batch.internal_edges(base).len()
    );

    println!("\nstrategy        new cut-edges   RC steps   simulated time");
    for strategy in [
        AssignStrategy::RoundRobin,
        AssignStrategy::CutEdge { seed: 1, tries: 4 },
        AssignStrategy::Repartition { seed: 1 },
    ] {
        let mut engine =
            AnytimeEngine::new(graph.clone(), EngineConfig::with_procs(PROCS)).expect("engine");
        engine.run_to_convergence();
        let before = engine.stats();

        engine.apply_vertex_additions(&batch, strategy).expect("valid batch");
        let summary = engine.run_to_convergence();
        let after = engine.stats();

        // Score: how many of the new edges ended up crossing processors?
        let global_edges: Vec<(u32, u32)> =
            batch.global_edges(base).iter().map(|&(a, b, _)| (a, b)).collect();
        let cut = new_cut_edges(engine.partition(), &global_edges);
        println!(
            "{:14} {:>13} {:>10} {:>13.2} s",
            strategy.name(),
            cut,
            summary.steps,
            (after.sim_total_us() - before.sim_total_us()) / 1e6,
        );
    }
    println!("\nCutEdge-PS keeps batch communities together (fewer cut edges than");
    println!("RoundRobin-PS); Repartition-S pays a migration cost but globally");
    println!("re-optimizes — the Figure 5–7 trade-off.");
}
