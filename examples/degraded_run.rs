//! Degraded-mode anytime answers under unrecoverable faults.
//!
//! Arms a chaos plan whose faults never stop, gives the supervisor almost
//! no retry budget, and shows what the engine hands back when it gives up:
//! the current closeness estimate plus a certified per-vertex error bound.
//! The bound is then validated against the exact (oracle) closeness, and
//! the run finishes by disarming chaos and reconverging exactly — degraded
//! state is stale, never poisoned.
//!
//! Run with: `cargo run --release --example degraded_run`

use anytime_anywhere::core::{AnytimeEngine, ChaosPlan, EngineConfig, RetryPolicy};
use anytime_anywhere::graph::closeness::closeness_exact;
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::graph::Csr;

fn main() {
    let g = barabasi_albert(300, 2, WeightModel::UniformRange { lo: 1, hi: 5 }, 11)
        .expect("generator params valid");
    let exact = closeness_exact(&Csr::from_adj(&g));

    let mut engine =
        AnytimeEngine::new(g, EngineConfig::deterministic(8)).expect("engine construction");
    // Faults forever (infinite horizon), almost no patience: the supervised
    // loop is forced onto the degraded path quickly.
    engine.set_chaos(ChaosPlan::seeded(7, 0.8, u64::MAX));
    let policy = RetryPolicy { max_attempts: 2, max_fallbacks: 1, ..RetryPolicy::default() };
    let run = engine.run_supervised(&policy).expect("supervised run");

    let report = run.degraded.expect("endless faults with a tiny budget must degrade");
    println!("supervised run gave up after {} steps:", run.summary.steps);
    println!("  reason:   {}", report.reason);
    println!(
        "  faults:   {} injected ({} dropped, {} duplicated, {} delayed, {} corrupted, {} stalls)",
        report.faults.injected(),
        report.faults.dropped,
        report.faults.duplicated,
        report.faults.delayed,
        report.faults.corrupted,
        report.faults.stalls,
    );
    println!(
        "  repairs:  {} rows retransmitted, {} fallbacks",
        report.faults.retransmits, run.fallbacks
    );

    // The degraded answer: estimate ± certified bound, versus the oracle.
    println!("\n  worst ten vertices by certified bound:");
    println!(
        "  {:>6}  {:>10}  {:>10}  {:>10}  {:>10}",
        "vertex", "estimate", "exact", "|error|", "bound"
    );
    let mut by_bound: Vec<usize> = (0..report.bound.len()).collect();
    by_bound.sort_by(|&a, &b| report.bound[b].total_cmp(&report.bound[a]));
    for &v in by_bound.iter().take(10) {
        let err = (exact[v] - report.estimate[v]).abs();
        println!(
            "  {:>6}  {:>10.6}  {:>10.6}  {:>10.6}  {:>10.6}",
            v, report.estimate[v], exact[v], err, report.bound[v]
        );
    }
    println!("\n  max bound:  {:.6}", report.max_bound());
    println!("  mean bound: {:.6}", report.mean_bound());
    assert!(
        report.certifies(&exact),
        "certification failure: some |exact − estimate| exceeded its bound"
    );
    println!("  certified:  every |exact − estimate| ≤ bound ✓");

    // Recovery: the network heals (chaos disarmed) and the same engine
    // walks from the degraded state to the exact fixed point.
    engine.set_chaos(ChaosPlan::none());
    let summary = engine.run_to_convergence();
    let healed = engine.closeness();
    let worst = healed.iter().zip(&exact).map(|(h, e)| (h - e).abs()).fold(0.0f64, f64::max);
    println!(
        "\nafter the network healed: reconverged in {} steps, max |error| = {:.2e}",
        summary.steps, worst
    );
    assert!(summary.converged && worst < 1e-12);
}
