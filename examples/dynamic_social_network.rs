//! A continuously evolving online community (the paper's motivating
//! scenario, §I): actors join in waves while the centrality analysis is
//! running. Compares the anytime anywhere approach against restarting, and
//! shows the anytime quality improving between waves.
//!
//! ```text
//! cargo run --release --example dynamic_social_network
//! ```

use anytime_anywhere::core::baseline::BaselineRestart;
use anytime_anywhere::core::changes::preferential_batch;
use anytime_anywhere::core::{AnytimeEngine, AssignStrategy, EngineConfig, QualityTracker};
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};

const INITIAL_ACTORS: usize = 1_200;
const WAVES: usize = 5;
const JOINS_PER_WAVE: usize = 30;
const PROCS: usize = 8;

fn main() {
    let graph = barabasi_albert(INITIAL_ACTORS, 2, WeightModel::Unit, 11).expect("valid params");
    println!(
        "initial community: {} actors, {} ties; {} join waves of {} incoming",
        graph.num_vertices(),
        graph.num_edges(),
        WAVES,
        JOINS_PER_WAVE
    );

    // --- Anytime anywhere: one engine, changes absorbed in place ----------
    let mut engine =
        AnytimeEngine::new(graph.clone(), EngineConfig::with_procs(PROCS)).expect("engine");
    let mut full = graph.clone();
    for wave in 0..WAVES {
        // A couple of RC steps of refinement between waves ("analysis keeps
        // running while the network changes").
        engine.rc_step();
        engine.rc_step();
        let batch = preferential_batch(&full, JOINS_PER_WAVE, 2, 100 + wave as u64);
        let base = full.num_vertices() as u32;
        full.add_vertices(batch.len());
        for (a, b, w) in batch.global_edges(base) {
            full.add_edge(a, b, w).expect("valid edge");
        }
        engine.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).expect("valid batch");
        println!("wave {wave}: +{JOINS_PER_WAVE} actors absorbed (total {})", full.num_vertices());
    }
    engine.run_to_convergence();
    let anytime = engine.stats();

    // Quality check against the exact answer for the final graph.
    let mut tracker = QualityTracker::new(&full, 10);
    let sample = tracker.record(engine.rc_steps_done(), &engine.closeness());
    println!(
        "anytime anywhere: final error {:.2e}, top-10 recall {:.0}%",
        sample.error,
        100.0 * sample.top_k_recall
    );

    // --- Baseline restart: recompute from scratch after every wave --------
    let mut baseline = BaselineRestart::new(EngineConfig::with_procs(PROCS));
    let mut snapshot = graph.clone();
    baseline.analyze(&snapshot).expect("baseline run");
    for wave in 0..WAVES {
        let batch = preferential_batch(&snapshot, JOINS_PER_WAVE, 2, 100 + wave as u64);
        let base = snapshot.num_vertices() as u32;
        snapshot.add_vertices(batch.len());
        for (a, b, w) in batch.global_edges(base) {
            snapshot.add_edge(a, b, w).expect("valid edge");
        }
        baseline.analyze(&snapshot).expect("baseline run");
    }
    let restart = baseline.total_stats();

    println!("\n                       simulated time     messages");
    println!(
        "anytime anywhere       {:>10.2} s   {:>10}",
        anytime.sim_total_secs(),
        anytime.messages
    );
    println!(
        "baseline restart       {:>10.2} s   {:>10}",
        restart.sim_total_secs(),
        restart.messages
    );
    println!(
        "speedup: {:.1}x (the Figure 4 / Figure 8 effect)",
        restart.sim_total_secs() / anytime.sim_total_secs().max(1e-9)
    );
}
