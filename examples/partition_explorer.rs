//! Explores the substrates on their own: generates graphs with several
//! models, partitions them with every partitioner, and detects communities
//! with Louvain — printing the quality metrics the engine's DD phase cares
//! about (cut edges, balance, boundary sizes).
//!
//! ```text
//! cargo run --release --example partition_explorer
//! ```

use anytime_anywhere::graph::community::{louvain, LouvainConfig};
use anytime_anywhere::graph::generators::*;
use anytime_anywhere::graph::AdjGraph;
use anytime_anywhere::partition::simple::{
    BlockPartitioner, HashPartitioner, RandomPartitioner, RoundRobinPartitioner,
};
use anytime_anywhere::partition::{
    boundary_vertices, cut_edges, vertex_balance, MultilevelPartitioner, Partition, Partitioner,
};

const K: usize = 8;

fn report(name: &str, g: &AdjGraph) {
    println!("\n=== {name}: {} vertices, {} edges ===", g.num_vertices(), g.num_edges());
    // `Partitioner::partition` is generic over the storage backend, so the
    // trait is not dyn-compatible — monomorphize per partitioner instead.
    let partitioners: Vec<(&str, Partition)> = vec![
        ("multilevel", MultilevelPartitioner::seeded(1).partition(g, K)),
        ("block", BlockPartitioner.partition(g, K)),
        ("round-robin", RoundRobinPartitioner.partition(g, K)),
        ("hash", HashPartitioner.partition(g, K)),
        ("random", RandomPartitioner { seed: 1 }.partition(g, K)),
    ]
    .into_iter()
    .map(|(pname, p)| (pname, p.expect("partitioning succeeds")))
    .collect();
    println!("{:>12}  {:>9}  {:>8}  {:>10}", "partitioner", "cut-edges", "balance", "boundary");
    for (pname, part) in partitioners {
        let boundary: usize = boundary_vertices(g, &part).iter().map(|b| b.len()).sum();
        println!(
            "{:>12}  {:>9}  {:>8.3}  {:>10}",
            pname,
            cut_edges(g, &part),
            vertex_balance(&part),
            boundary
        );
    }
    let communities = louvain(g, &LouvainConfig::default());
    println!(
        "louvain: {} communities, modularity {:.3}",
        communities.num_communities, communities.modularity
    );
}

fn main() {
    let ba = barabasi_albert(4_000, 3, WeightModel::Unit, 7).expect("valid params");
    report("Barabási–Albert (scale-free)", &ba);

    let (sbm, _) = planted_partition(
        &PlantedPartition { communities: 8, size: 500, p_in: 0.02, p_out: 0.0005 },
        WeightModel::Unit,
        7,
    )
    .expect("valid params");
    report("planted partition (communities)", &sbm);

    let ws = watts_strogatz(4_000, 6, 0.1, WeightModel::Unit, 7).expect("valid params");
    report("Watts–Strogatz (small world)", &ws);

    let rm = rmat(12, 4, RmatParams::default(), WeightModel::Unit, 7).expect("valid params");
    report("R-MAT (power law)", &rm);

    println!("\nThe multilevel partitioner should dominate the cut-edge column —");
    println!("that is why the paper's DD phase uses METIS-family partitioning.");
}
