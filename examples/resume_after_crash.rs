//! Anytime persistence: checkpoint a running analysis, crash a rank
//! mid-recombination, restore the rank from the snapshot and converge to
//! the same answer as an uninterrupted run.
//!
//! ```text
//! cargo run --release --example resume_after_crash
//! ```

use anytime_anywhere::checkpoint::CheckpointPolicy;
use anytime_anywhere::core::{
    AnytimeEngine, ClusterError, CoreError, EngineConfig, FaultPlan, Snapshot,
};
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};

fn main() {
    let graph =
        barabasi_albert(1_000, 3, WeightModel::Unit, 42).expect("generator parameters valid");
    let config = EngineConfig::with_procs(8);

    // Reference: an uninterrupted run on the same graph.
    let mut reference = AnytimeEngine::new(graph.clone(), config.clone()).expect("engine");
    reference.run_to_convergence();
    let expected = reference.closeness();

    // Victim: checkpoint every 2 RC steps, and rank 3 dies at superstep 6.
    let mut engine = AnytimeEngine::new(graph, config).expect("engine");
    engine.inject_fault(FaultPlan::at(3, 6));

    let mut snapshots: Vec<Vec<u8>> = Vec::new();
    let result = engine
        .run_to_convergence_checkpointed(CheckpointPolicy::EveryNRcSteps(2), |bytes| {
            snapshots.push(bytes.to_vec())
        });

    match result {
        Err(CoreError::Cluster(ClusterError::RankFailed { rank, superstep })) => {
            println!(
                "rank {rank} failed at superstep {superstep}; {} snapshot(s) on disk",
                snapshots.len()
            );
            // Recover the dead rank from the latest snapshot (which may
            // predate the failure — min-merge monotonicity makes the
            // replay safe) and finish the analysis.
            let latest = Snapshot::from_bytes(snapshots.last().expect("a snapshot was taken"))
                .expect("snapshot readable");
            engine.recover_rank(rank, &latest).expect("recovery");
            let summary = engine.run_to_convergence_checked().expect("no second fault armed");
            println!(
                "recovered and re-converged in {} more RC steps ({} restores recorded)",
                summary.steps,
                engine.stats().restores
            );
        }
        other => panic!("expected the armed fault to fire, got {other:?}"),
    }

    // The recovered run ends at exactly the same closeness values.
    assert_eq!(engine.closeness(), expected);
    println!("closeness after recovery is bit-identical to the uninterrupted run ✓");

    // A full engine restore from the snapshot also resumes cleanly.
    let bytes = snapshots.last().expect("a snapshot was taken");
    let mut resumed =
        AnytimeEngine::restore(&bytes[..], EngineConfig::with_procs(8)).expect("restore");
    resumed.run_to_convergence();
    assert_eq!(resumed.closeness(), expected);
    println!(
        "cold restore from snapshot (RC step {}) re-converged to the same fixed point ✓",
        resumed.rc_steps_done()
    );
}
