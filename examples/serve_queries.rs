//! Serving queries while the engine computes — the ingest → compute →
//! publish pipeline end to end. A writer thread streams dynamic changes
//! through the coalescing ingest log and re-converges; reader threads
//! answer point and top-k queries from immutable, epoch-stamped published
//! views the whole time, without a single lock on the compute loop.
//!
//! ```text
//! cargo run --release --example serve_queries
//! ```

use anytime_anywhere::core::changes::{preferential_batch, DynamicChange};
use anytime_anywhere::core::{AnytimeEngine, AssignStrategy, BoundsMode, EngineConfig};
use anytime_anywhere::graph::generators::{barabasi_albert, WeightModel};
use anytime_anywhere::serve::ServeHandle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const VERTICES: usize = 1_200;
const PROCS: usize = 8;
const READERS: usize = 3;

fn main() {
    let graph = barabasi_albert(VERTICES, 2, WeightModel::UniformRange { lo: 1, hi: 6 }, 7)
        .expect("valid params");
    let mut config = EngineConfig::deterministic(PROCS);
    config.publish_bounds = BoundsMode::Certified; // views carry error bounds
    let mut engine = AnytimeEngine::new(graph, config).expect("engine");
    println!(
        "social graph: {} vertices on {} simulated processors\n",
        engine.graph().num_vertices(),
        PROCS
    );

    // Readers attach to the publish layer, not to the engine: a handle is
    // a clone-able Arc over the view cell, so queries are plain `&self`
    // loads that never block (or wait for) the BSP loop.
    let handle = ServeHandle::attach(&engine);
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|id| {
            let h = handle.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let (mut lookups, mut last_epoch, mut switches) = (0u64, 0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    let view = h.view(); // one immutable epoch, held as long as we like
                    if view.epoch != last_epoch {
                        last_epoch = view.epoch;
                        switches += 1;
                    }
                    for v in 0..view.num_vertices() as u32 {
                        let c = view.point(v).expect("views are complete");
                        assert!(c.is_finite());
                        lookups += 1;
                    }
                }
                (id, lookups, switches, last_epoch)
            })
        })
        .collect();

    // Writer: converge, then stream churn through the ingest log. Each
    // mutation is a typed Change; the log coalesces (the add+remove pair
    // below annihilates before ever reaching the compute layer) and the
    // driver drains it at the next RC-step barrier.
    engine.run_to_convergence();
    println!("converged: epoch {} published", engine.epochs_published());

    let batch = preferential_batch(engine.graph(), 40, 2, 11);
    engine
        .submit_with_strategy(
            DynamicChange::AddVertices(batch),
            AssignStrategy::CutEdge { seed: 1, tries: 4 },
        )
        .expect("valid batch");
    engine.submit(DynamicChange::AddEdge { u: 3, v: 900, w: 2 }).expect("valid edge");
    engine.submit(DynamicChange::SetWeight { u: 3, v: 900, w: 1 }).expect("valid reweight");
    engine.submit(DynamicChange::RemoveEdge { u: 3, v: 900 }).expect("valid removal");
    let stats = engine.ingest_stats();
    println!(
        "submitted {} changes; {} coalesced away in the log; {} pending",
        stats.submitted,
        stats.coalesced,
        engine.pending_changes()
    );

    engine.run_to_convergence();
    stop.store(true, Ordering::Relaxed);
    let meta = handle.metadata();
    println!(
        "re-converged: epoch {}, {} changes applied, {} epochs published total\n",
        meta.epoch,
        meta.changes_applied,
        engine.epochs_published()
    );

    for r in readers {
        let (id, lookups, switches, last) = r.join().expect("reader panicked");
        println!("reader {id}: {lookups} lookups, saw {switches} epoch switches, ended on {last}");
    }
    let (v, c) = handle.top_k(1)[0];
    println!(
        "\nmost central vertex: {} (closeness {:.6}, certified error ≤ {:.6})",
        v,
        c,
        handle.error_bound(v).expect("certified mode publishes bounds")
    );
}
