//! Working representation for the multilevel hierarchy: a weighted graph
//! with vertex weights (collapsed fine vertices) and combined edge weights.

use aaa_store::GraphStore;
use rayon::prelude::*;
use rustc_hash::FxHashMap;

/// Weighted graph used during coarsening. Vertex `v` represents
/// `vwgt[v]` original vertices; parallel fine edges are merged with summed
/// weights; no self edges are stored.
#[derive(Debug, Clone)]
pub(crate) struct WGraph {
    pub vwgt: Vec<u64>,
    pub adj: Vec<Vec<(u32, u64)>>,
}

impl WGraph {
    pub(crate) fn from_store<G: GraphStore>(g: &G) -> Self {
        let n = g.num_vertices();
        let mut adj = vec![Vec::new(); n];
        for v in g.vertices() {
            adj[v as usize] = g.successors(v).map(|(t, w)| (t, w as u64)).collect();
        }
        Self { vwgt: vec![1; n], adj }
    }

    #[inline]
    pub(crate) fn n(&self) -> usize {
        self.vwgt.len()
    }

    pub(crate) fn total_vwgt(&self) -> u64 {
        self.vwgt.iter().sum()
    }
}

/// Maximum allowed part load for balance factor `epsilon`.
pub(crate) fn max_load(total: u64, k: usize, epsilon: f64) -> u64 {
    let ideal = total as f64 / k as f64;
    (ideal * (1.0 + epsilon)).ceil() as u64 + 1
}

/// Builds the coarse graph for a fine graph and a fine→coarse map.
/// `parallel` switches the adjacency accumulation onto rayon.
pub(crate) fn coarsen(fine: &WGraph, map: &[u32], parallel: bool) -> WGraph {
    let nc = map.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut vwgt = vec![0u64; nc];
    for (v, &c) in map.iter().enumerate() {
        vwgt[c as usize] += fine.vwgt[v];
    }
    // Group fine vertices by coarse id so each coarse adjacency can be
    // built independently (this is the parallel unit).
    let mut members = vec![Vec::new(); nc];
    for (v, &c) in map.iter().enumerate() {
        members[c as usize].push(v as u32);
    }
    let build = |c: usize| -> Vec<(u32, u64)> {
        let mut acc: FxHashMap<u32, u64> = FxHashMap::default();
        for &v in &members[c] {
            for &(t, w) in &fine.adj[v as usize] {
                let ct = map[t as usize];
                if ct as usize != c {
                    *acc.entry(ct).or_insert(0) += w;
                }
            }
        }
        let mut list: Vec<(u32, u64)> = acc.into_iter().collect();
        list.sort_unstable(); // deterministic order regardless of hash state
        list
    };
    let adj: Vec<Vec<(u32, u64)>> = if parallel {
        (0..nc).into_par_iter().map(build).collect()
    } else {
        (0..nc).map(build).collect()
    };
    WGraph { vwgt, adj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_graph::AdjGraph;

    fn path4() -> WGraph {
        // 0-1-2-3 path, unit weights.
        let mut g = AdjGraph::with_vertices(4);
        for i in 0..3 {
            g.add_edge(i, i + 1, 1).unwrap();
        }
        WGraph::from_store(&g)
    }

    #[test]
    fn from_store_mirrors_structure() {
        let wg = path4();
        assert_eq!(wg.n(), 4);
        assert_eq!(wg.total_vwgt(), 4);
        assert_eq!(wg.adj[1].len(), 2);
    }

    #[test]
    fn coarsen_merges_pairs() {
        let wg = path4();
        // Match (0,1) -> 0 and (2,3) -> 1.
        let coarse = coarsen(&wg, &[0, 0, 1, 1], false);
        assert_eq!(coarse.n(), 2);
        assert_eq!(coarse.vwgt, vec![2, 2]);
        // Single surviving edge 1-2 becomes coarse edge 0-1 of weight 1.
        assert_eq!(coarse.adj[0], vec![(1, 1)]);
        assert_eq!(coarse.adj[1], vec![(0, 1)]);
    }

    #[test]
    fn coarsen_sums_parallel_edges() {
        // Square 0-1-2-3-0: matching (0,1) and (2,3) leaves two cross edges
        // (1-2 and 3-0) that merge into one coarse edge of weight 2.
        let mut g = AdjGraph::with_vertices(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            g.add_edge(u, v, 1).unwrap();
        }
        let coarse = coarsen(&WGraph::from_store(&g), &[0, 0, 1, 1], false);
        assert_eq!(coarse.adj[0], vec![(1, 2)]);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let mut g = AdjGraph::with_vertices(100);
        for i in 0..99 {
            g.add_edge(i, i + 1, i % 5 + 1).unwrap();
        }
        let wg = WGraph::from_store(&g);
        let map: Vec<u32> = (0..100).map(|v| v / 2).collect();
        let a = coarsen(&wg, &map, false);
        let b = coarsen(&wg, &map, true);
        assert_eq!(a.vwgt, b.vwgt);
        assert_eq!(a.adj, b.adj);
    }

    #[test]
    fn max_load_bounds() {
        assert!(max_load(100, 4, 0.0) >= 25);
        assert!(max_load(100, 4, 0.05) >= 26);
        assert!(max_load(0, 4, 0.05) >= 1);
    }
}
