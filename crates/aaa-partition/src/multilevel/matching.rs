//! Heavy-edge matching for the coarsening phase.

use super::WGraph;
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;

/// Computes a heavy-edge matching and returns the fine→coarse map.
///
/// Vertices are visited in random order; an unmatched vertex is merged with
/// its unmatched neighbor of maximum edge weight (ties: smaller id).
/// Unmatched leftovers become singleton coarse vertices. Coarse ids are
/// dense and assigned in visit order.
pub(crate) fn heavy_edge_matching(g: &WGraph, rng: &mut ChaCha8Rng) -> Vec<u32> {
    let n = g.n();
    const UNMATCHED: u32 = u32::MAX;
    let mut map = vec![UNMATCHED; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut next = 0u32;
    for &v in &order {
        if map[v as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u64, u32)> = None;
        for &(t, w) in &g.adj[v as usize] {
            if map[t as usize] == UNMATCHED {
                let better = match best {
                    None => true,
                    Some((bw, bt)) => w > bw || (w == bw && t < bt),
                };
                if better {
                    best = Some((w, t));
                }
            }
        }
        map[v as usize] = next;
        if let Some((_, t)) = best {
            map[t as usize] = next;
        }
        next += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_graph::AdjGraph;
    use rand::SeedableRng;

    fn wgraph(edges: &[(u32, u32, u32)], n: usize) -> WGraph {
        let mut g = AdjGraph::with_vertices(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w).unwrap();
        }
        WGraph::from_store(&g)
    }

    #[test]
    fn map_is_dense_and_total() {
        let g = wgraph(&[(0, 1, 1), (1, 2, 1), (2, 3, 1)], 5);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let map = heavy_edge_matching(&g, &mut rng);
        assert_eq!(map.len(), 5);
        let max = *map.iter().max().unwrap();
        // Every coarse id in 0..=max appears.
        for c in 0..=max {
            assert!(map.contains(&c), "missing coarse id {c}");
        }
    }

    #[test]
    fn pairs_have_at_most_two_members() {
        let g = wgraph(&[(0, 1, 1), (0, 2, 1), (0, 3, 1)], 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let map = heavy_edge_matching(&g, &mut rng);
        let max = *map.iter().max().unwrap() as usize;
        let mut counts = vec![0; max + 1];
        for &c in &map {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 2));
    }

    #[test]
    fn prefers_heavy_edges() {
        // Two heavy pairs (0-1, 2-3) with light cross edges: regardless of
        // visit order, every vertex's heaviest unmatched neighbor is its
        // heavy partner, so the matching is forced.
        let g = wgraph(&[(0, 1, 100), (2, 3, 100), (0, 2, 1), (1, 3, 1)], 4);
        for seed in 0..20 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let map = heavy_edge_matching(&g, &mut rng);
            assert_eq!(map[0], map[1], "seed {seed}");
            assert_eq!(map[2], map[3], "seed {seed}");
            assert_ne!(map[0], map[2], "seed {seed}");
        }
    }

    #[test]
    fn isolated_vertices_become_singletons() {
        let g = wgraph(&[], 3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let map = heavy_edge_matching(&g, &mut rng);
        let mut sorted = map.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
