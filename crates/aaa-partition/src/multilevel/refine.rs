//! Boundary FM-style k-way refinement.
//!
//! Greedy passes over boundary vertices: each vertex may move to the
//! neighboring part with the best cut-gain, subject to the balance
//! constraint. Simpler than full Fiduccia–Mattheyses (no tentative
//! negative-gain sequences), which in practice recovers most of the quality
//! at a fraction of the complexity — refinement runs at every uncoarsening
//! level, so small per-level gains compound.

use super::WGraph;
use aaa_graph::PartId;
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashMap;

/// Refines `label` in place. `max_load` is the balance ceiling per part.
pub(crate) fn refine(
    g: &WGraph,
    label: &mut [PartId],
    k: usize,
    max_load: u64,
    passes: usize,
    rng: &mut ChaCha8Rng,
) {
    let n = g.n();
    if n == 0 || k < 2 {
        return;
    }
    let mut load = vec![0u64; k];
    for v in 0..n {
        load[label[v] as usize] += g.vwgt[v];
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut conn: FxHashMap<PartId, u64> = FxHashMap::default();

    for _ in 0..passes {
        order.shuffle(rng);
        let mut moved = 0usize;
        for &v in &order {
            let own = label[v as usize];
            conn.clear();
            let mut is_boundary = false;
            for &(t, w) in &g.adj[v as usize] {
                let pt = label[t as usize];
                if pt != own {
                    is_boundary = true;
                }
                *conn.entry(pt).or_insert(0) += w;
            }
            if !is_boundary {
                continue;
            }
            let internal = conn.get(&own).copied().unwrap_or(0);
            let vw = g.vwgt[v as usize];
            // Candidate: the neighboring part with the largest gain that
            // still satisfies the balance ceiling after the move.
            let mut best: Option<(i64, u64, PartId)> = None; // (gain, -load tiebreak via load, part)
            for (&p, &w) in conn.iter() {
                if p == own || load[p as usize] + vw > max_load {
                    continue;
                }
                let gain = w as i64 - internal as i64;
                let better = match best {
                    None => true,
                    Some((bg, bl, bp)) => {
                        gain > bg
                            || (gain == bg && load[p as usize] < bl)
                            || (gain == bg && load[p as usize] == bl && p < bp)
                    }
                };
                if better {
                    best = Some((gain, load[p as usize], p));
                }
            }
            if let Some((gain, _, p)) = best {
                // Positive gain always moves; zero gain moves only when it
                // improves balance (prevents oscillation).
                let balance_gain = load[own as usize] > load[p as usize] + vw;
                if gain > 0 || (gain == 0 && balance_gain) {
                    label[v as usize] = p;
                    load[own as usize] -= vw;
                    load[p as usize] += vw;
                    moved += 1;
                }
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_graph::AdjGraph;
    use rand::SeedableRng;

    fn cut_of(g: &WGraph, label: &[PartId]) -> u64 {
        let mut cut = 0;
        for v in 0..g.n() {
            for &(t, w) in &g.adj[v] {
                if label[v] != label[t as usize] {
                    cut += w;
                }
            }
        }
        cut / 2
    }

    #[test]
    fn repairs_a_bad_split_of_two_cliques() {
        // Two K6s bridged by one edge, deliberately mis-assigned.
        let mut g = AdjGraph::with_vertices(12);
        for c in 0..2u32 {
            let base = c * 6;
            for u in 0..6 {
                for v in (u + 1)..6 {
                    g.add_edge(base + u, base + v, 1).unwrap();
                }
            }
        }
        g.add_edge(0, 6, 1).unwrap();
        let wg = WGraph::from_store(&g);
        // Swap two vertices across the natural split.
        let mut label: Vec<PartId> = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0];
        let before = cut_of(&wg, &label);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        refine(&wg, &mut label, 2, 7, 8, &mut rng);
        let after = cut_of(&wg, &label);
        assert!(after < before, "cut {before} -> {after}");
        assert_eq!(after, 1);
    }

    #[test]
    fn respects_balance_ceiling() {
        // Star: center plus 8 leaves; everything wants to join the center's
        // part, but max_load forbids overfilling.
        let mut g = AdjGraph::with_vertices(9);
        for leaf in 1..9 {
            g.add_edge(0, leaf, 10).unwrap();
        }
        let wg = WGraph::from_store(&g);
        let mut label: Vec<PartId> = (0..9).map(|v| (v % 2) as PartId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        refine(&wg, &mut label, 2, 5, 8, &mut rng);
        let c0 = label.iter().filter(|&&l| l == 0).count() as u64;
        let c1 = 9 - c0;
        assert!(c0 <= 5 && c1 <= 5, "loads {c0}/{c1}");
    }

    #[test]
    fn noop_on_single_part_or_empty() {
        let wg = WGraph::from_store(&AdjGraph::with_vertices(3));
        let mut label = vec![0 as PartId; 3];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        refine(&wg, &mut label, 1, 10, 4, &mut rng);
        assert_eq!(label, vec![0, 0, 0]);
        let empty = WGraph::from_store(&AdjGraph::new());
        let mut none: Vec<PartId> = vec![];
        refine(&empty, &mut none, 2, 10, 4, &mut rng);
    }

    #[test]
    fn zero_gain_moves_only_improve_balance() {
        // Path 0-1-2 with balanced weights: refinement must not oscillate;
        // it terminates and keeps a valid labelling.
        let mut g = AdjGraph::with_vertices(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        let wg = WGraph::from_store(&g);
        let mut label: Vec<PartId> = vec![0, 0, 1];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        refine(&wg, &mut label, 2, 2, 16, &mut rng);
        assert!(label.iter().all(|&l| l < 2));
        let c0 = label.iter().filter(|&&l| l == 0).count();
        assert!((1..=2).contains(&c0));
    }
}
