//! Greedy graph growing: the initial k-way partition on the coarsest graph.

use super::WGraph;
use aaa_graph::PartId;
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const UNASSIGNED: PartId = PartId::MAX;

/// Grows `k` regions one at a time. Each region starts from a random
/// unassigned seed and repeatedly absorbs the unassigned frontier vertex
/// with the strongest connection to the region (lazy max-heap), until the
/// region reaches its weight target. Leftovers go to the lightest part.
#[allow(clippy::needless_range_loop)] // part/v are rank-semantic indices
pub(crate) fn greedy_graph_growing(g: &WGraph, k: usize, rng: &mut ChaCha8Rng) -> Vec<PartId> {
    let n = g.n();
    let mut label = vec![UNASSIGNED; n];
    if n == 0 {
        return label;
    }
    let total = g.total_vwgt();
    let target = (total as f64 / k as f64).ceil() as u64;
    let mut load = vec![0u64; k];
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.shuffle(rng);
    let mut seed_cursor = 0usize;

    for part in 0..k.saturating_sub(1) {
        // Heap of (connection weight, vertex); lazily revalidated.
        let mut heap: BinaryHeap<(u64, Reverse<u32>)> = BinaryHeap::new();
        let mut conn = vec![0u64; n];
        while load[part] < target {
            let v = match heap.pop() {
                Some((w, Reverse(v)))
                    if label[v as usize] == UNASSIGNED && w >= conn[v as usize] =>
                {
                    v
                }
                Some((_, Reverse(v))) if label[v as usize] == UNASSIGNED => {
                    // Stale weight; re-push the current value.
                    heap.push((conn[v as usize], Reverse(v)));
                    continue;
                }
                Some(_) => continue, // already assigned elsewhere
                None => {
                    // Frontier exhausted (disconnected region): new seed.
                    let mut fresh = None;
                    while seed_cursor < seeds.len() {
                        let s = seeds[seed_cursor];
                        seed_cursor += 1;
                        if label[s as usize] == UNASSIGNED {
                            fresh = Some(s);
                            break;
                        }
                    }
                    match fresh {
                        Some(s) => s,
                        None => break, // nothing left anywhere
                    }
                }
            };
            label[v as usize] = part as PartId;
            load[part] += g.vwgt[v as usize];
            for &(t, w) in &g.adj[v as usize] {
                if label[t as usize] == UNASSIGNED {
                    conn[t as usize] += w;
                    heap.push((conn[t as usize], Reverse(t)));
                }
            }
        }
    }
    // Everything unassigned goes to the last part first, then rebalance
    // trivially by assigning to the lightest part.
    for v in 0..n {
        if label[v] == UNASSIGNED {
            let lightest = (0..k).min_by_key(|&p| load[p]).unwrap_or(k - 1);
            label[v] = lightest as PartId;
            load[lightest] += g.vwgt[v];
        }
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_graph::AdjGraph;
    use rand::SeedableRng;

    fn two_cliques() -> WGraph {
        let mut g = AdjGraph::with_vertices(12);
        for c in 0..2u32 {
            let base = c * 6;
            for u in 0..6 {
                for v in (u + 1)..6 {
                    g.add_edge(base + u, base + v, 1).unwrap();
                }
            }
        }
        g.add_edge(0, 6, 1).unwrap();
        WGraph::from_store(&g)
    }

    #[test]
    fn covers_all_vertices() {
        let g = two_cliques();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let label = greedy_graph_growing(&g, 3, &mut rng);
        assert_eq!(label.len(), 12);
        assert!(label.iter().all(|&l| (l as usize) < 3));
    }

    #[test]
    fn roughly_balanced() {
        let g = two_cliques();
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let label = greedy_graph_growing(&g, 2, &mut rng);
            let c0 = label.iter().filter(|&&l| l == 0).count();
            assert!((4..=8).contains(&c0), "seed {seed}: part0 has {c0}");
        }
    }

    #[test]
    fn single_part() {
        let g = two_cliques();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let label = greedy_graph_growing(&g, 1, &mut rng);
        assert!(label.iter().all(|&l| l == 0));
    }

    #[test]
    fn handles_isolated_vertices() {
        let g = WGraph::from_store(&AdjGraph::with_vertices(10));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let label = greedy_graph_growing(&g, 4, &mut rng);
        assert!(label.iter().all(|&l| (l as usize) < 4));
        // All parts should receive something close to fair.
        let mut sizes = vec![0; 4];
        for &l in &label {
            sizes[l as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s >= 1), "sizes {sizes:?}");
    }
}
