//! Multilevel k-way graph partitioner (METIS substitute).
//!
//! The classic three-stage scheme of Karypis & Kumar, implemented from
//! scratch:
//!
//! 1. **Coarsening** ([`matching`]) — repeated heavy-edge matching collapses
//!    the graph until it is small;
//! 2. **Initial partitioning** ([`initial`]) — greedy graph growing assigns
//!    the coarsest vertices to k balanced parts;
//! 3. **Uncoarsening + refinement** ([`refine`]) — the partition is projected
//!    back level by level, with boundary FM-style refinement at each level.
//!
//! With [`MultilevelConfig::parallel`] set, the coarse-graph construction
//! runs on rayon — the role ParMETIS plays in the paper's DD phase.

mod initial;
mod matching;
mod refine;
mod wgraph;

pub(crate) use wgraph::WGraph;

use crate::{Partition, PartitionError, Partitioner};
use aaa_graph::PartId;
use aaa_store::GraphStore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Tuning knobs for the multilevel partitioner.
#[derive(Debug, Clone)]
pub struct MultilevelConfig {
    /// Stop coarsening once the graph has at most `coarsen_to × k` vertices.
    pub coarsen_to_per_part: usize,
    /// Allowed imbalance: a part may hold up to `(1 + epsilon) × ideal`.
    pub epsilon: f64,
    /// Refinement passes per level.
    pub refine_passes: usize,
    /// RNG seed (matching order, seed selection, tie-breaks).
    pub seed: u64,
    /// Build coarse graphs with rayon (the ParMETIS-substitute path).
    pub parallel: bool,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        Self { coarsen_to_per_part: 24, epsilon: 0.05, refine_passes: 6, seed: 0, parallel: false }
    }
}

/// The multilevel k-way partitioner.
#[derive(Debug, Clone, Default)]
pub struct MultilevelPartitioner {
    pub config: MultilevelConfig,
}

impl MultilevelPartitioner {
    /// Creates a partitioner with the given seed, other knobs default.
    pub fn seeded(seed: u64) -> Self {
        Self { config: MultilevelConfig { seed, ..MultilevelConfig::default() } }
    }
}

impl Partitioner for MultilevelPartitioner {
    fn partition<G: GraphStore>(&self, g: &G, k: usize) -> Result<Partition, PartitionError> {
        if k == 0 {
            return Err(PartitionError::ZeroParts);
        }
        let n = g.num_vertices();
        if k == 1 {
            return Partition::new(vec![0; n], 1);
        }
        if n <= k {
            // Each vertex its own part; extra parts stay empty.
            return Partition::new((0..n as PartId).collect(), k);
        }
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

        // --- Coarsening ---------------------------------------------------
        let mut levels: Vec<(WGraph, Vec<u32>)> = Vec::new(); // (finer graph, fine->coarse map)
        let mut current = WGraph::from_store(g);
        let stop_at = (cfg.coarsen_to_per_part * k).max(64);
        while current.n() > stop_at {
            let map = matching::heavy_edge_matching(&current, &mut rng);
            let coarse = wgraph::coarsen(&current, &map, cfg.parallel);
            // Diminishing returns: stop if the graph barely shrank.
            if coarse.n() as f64 > 0.95 * current.n() as f64 {
                break;
            }
            levels.push((current, map));
            current = coarse;
        }

        // --- Initial partition on the coarsest graph ----------------------
        let max_load = wgraph::max_load(current.total_vwgt(), k, cfg.epsilon);
        let mut labels = initial::greedy_graph_growing(&current, k, &mut rng);
        refine::refine(&current, &mut labels, k, max_load, cfg.refine_passes, &mut rng);

        // --- Uncoarsen + refine at every level -----------------------------
        while let Some((finer, map)) = levels.pop() {
            let mut fine_labels = vec![0 as PartId; finer.n()];
            for (v, l) in fine_labels.iter_mut().enumerate() {
                *l = labels[map[v] as usize];
            }
            labels = fine_labels;
            refine::refine(&finer, &mut labels, k, max_load, cfg.refine_passes, &mut rng);
        }
        Partition::new(labels, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cut_edges, vertex_balance};
    use aaa_graph::generators::{
        barabasi_albert, planted_partition, PlantedPartition, WeightModel,
    };
    use aaa_graph::AdjGraph;

    #[test]
    fn trivial_cases() {
        let g = AdjGraph::with_vertices(5);
        let p = MultilevelPartitioner::default().partition(&g, 1).unwrap();
        assert!(p.assignment().iter().all(|&x| x == 0));
        let p = MultilevelPartitioner::default().partition(&g, 8).unwrap();
        assert_eq!(p.part_sizes()[..5], [1, 1, 1, 1, 1]);
        assert!(MultilevelPartitioner::default().partition(&g, 0).is_err());
    }

    #[test]
    fn splits_two_cliques_cleanly() {
        // Two K10s joined by one edge: the optimal bisection cuts 1 edge.
        let mut g = AdjGraph::with_vertices(20);
        for c in 0..2u32 {
            let base = c * 10;
            for u in 0..10 {
                for v in (u + 1)..10 {
                    g.add_edge(base + u, base + v, 1).unwrap();
                }
            }
        }
        g.add_edge(0, 10, 1).unwrap();
        let p = MultilevelPartitioner::seeded(3).partition(&g, 2).unwrap();
        assert_eq!(cut_edges(&g, &p), 1);
        assert!((vertex_balance(&p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn beats_random_on_community_graphs() {
        let m = PlantedPartition { communities: 8, size: 64, p_in: 0.2, p_out: 0.005 };
        let (g, _) = planted_partition(&m, WeightModel::Unit, 5).unwrap();
        let ml = MultilevelPartitioner::seeded(1).partition(&g, 8).unwrap();
        let rnd = crate::simple::RandomPartitioner { seed: 1 }.partition(&g, 8).unwrap();
        let (cut_ml, cut_rnd) = (cut_edges(&g, &ml), cut_edges(&g, &rnd));
        assert!((cut_ml as f64) < 0.5 * cut_rnd as f64, "multilevel {cut_ml} vs random {cut_rnd}");
        assert!(vertex_balance(&ml) <= 1.0 + 0.1, "balance {}", vertex_balance(&ml));
    }

    #[test]
    fn balanced_on_scale_free_graphs() {
        let g = barabasi_albert(2000, 3, WeightModel::Unit, 9).unwrap();
        for k in [2usize, 4, 16] {
            let p = MultilevelPartitioner::seeded(2).partition(&g, k).unwrap();
            assert_eq!(p.len(), 2000);
            let b = vertex_balance(&p);
            assert!(b <= 1.12, "k={k} balance {b}");
        }
    }

    #[test]
    fn parallel_path_produces_valid_partition() {
        let g = barabasi_albert(1500, 3, WeightModel::Unit, 4).unwrap();
        let cfg = MultilevelConfig { parallel: true, ..Default::default() };
        let p = MultilevelPartitioner { config: cfg }.partition(&g, 8).unwrap();
        assert_eq!(p.len(), 1500);
        assert!(vertex_balance(&p) <= 1.12);
        assert!(p.part_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn deterministic_in_seed() {
        let g = barabasi_albert(800, 2, WeightModel::Unit, 6).unwrap();
        let a = MultilevelPartitioner::seeded(7).partition(&g, 4).unwrap();
        let b = MultilevelPartitioner::seeded(7).partition(&g, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut g = AdjGraph::with_vertices(300);
        // Three disjoint paths of 100.
        for c in 0..3u32 {
            let base = c * 100;
            for i in 0..99 {
                g.add_edge(base + i, base + i + 1, 1).unwrap();
            }
        }
        let p = MultilevelPartitioner::seeded(1).partition(&g, 3).unwrap();
        assert_eq!(p.len(), 300);
        assert!(vertex_balance(&p) <= 1.12);
    }
}
