//! Simple partitioners: block, round-robin, hash, random.
//!
//! These are the non-cut-aware baselines. Round-robin in particular is the
//! assignment discipline behind the paper's RoundRobin-PS strategy.

use crate::{Partition, PartitionError, Partitioner};
use aaa_graph::PartId;
use aaa_store::GraphStore;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Contiguous blocks: vertices `[i·n/k, (i+1)·n/k)` go to part `i`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockPartitioner;

impl Partitioner for BlockPartitioner {
    fn partition<G: GraphStore>(&self, g: &G, k: usize) -> Result<Partition, PartitionError> {
        if k == 0 {
            return Err(PartitionError::ZeroParts);
        }
        let n = g.num_vertices();
        let per = n.div_ceil(k).max(1);
        let assignment = (0..n).map(|v| ((v / per).min(k - 1)) as PartId).collect();
        Partition::new(assignment, k)
    }
}

/// Round-robin: vertex `v` goes to part `v mod k`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinPartitioner;

impl Partitioner for RoundRobinPartitioner {
    fn partition<G: GraphStore>(&self, g: &G, k: usize) -> Result<Partition, PartitionError> {
        if k == 0 {
            return Err(PartitionError::ZeroParts);
        }
        let assignment = (0..g.num_vertices()).map(|v| (v % k) as PartId).collect();
        Partition::new(assignment, k)
    }
}

/// Deterministic hash: scrambles ids so adjacent ids land apart.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition<G: GraphStore>(&self, g: &G, k: usize) -> Result<Partition, PartitionError> {
        if k == 0 {
            return Err(PartitionError::ZeroParts);
        }
        let assignment = (0..g.num_vertices() as u64)
            .map(|v| {
                // SplitMix64 finalizer: cheap, well-distributed.
                let mut x = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((x ^ (x >> 31)) % k as u64) as PartId
            })
            .collect();
        Partition::new(assignment, k)
    }
}

/// Uniform random assignment with a seed.
#[derive(Debug, Clone, Copy)]
pub struct RandomPartitioner {
    pub seed: u64,
}

impl Partitioner for RandomPartitioner {
    fn partition<G: GraphStore>(&self, g: &G, k: usize) -> Result<Partition, PartitionError> {
        if k == 0 {
            return Err(PartitionError::ZeroParts);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let assignment = (0..g.num_vertices()).map(|_| rng.gen_range(0..k) as PartId).collect();
        Partition::new(assignment, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_balance;

    fn graph(n: usize) -> aaa_graph::AdjGraph {
        aaa_graph::AdjGraph::with_vertices(n)
    }

    #[test]
    fn block_partitions_are_contiguous_and_balanced() {
        let p = BlockPartitioner.partition(&graph(10), 3).unwrap();
        assert_eq!(p.part_of(0), 0);
        assert_eq!(p.part_of(9), 2);
        assert!(vertex_balance(&p) <= 1.0 + 1e-9);
        // Monotone non-decreasing labels.
        let a = p.assignment();
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn round_robin_is_perfectly_balanced() {
        let p = RoundRobinPartitioner.partition(&graph(10), 4).unwrap();
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn hash_is_deterministic_and_covers_parts() {
        let a = HashPartitioner.partition(&graph(1000), 8).unwrap();
        let b = HashPartitioner.partition(&graph(1000), 8).unwrap();
        assert_eq!(a, b);
        assert!(a.part_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn random_respects_seed() {
        let a = RandomPartitioner { seed: 1 }.partition(&graph(100), 4).unwrap();
        let b = RandomPartitioner { seed: 1 }.partition(&graph(100), 4).unwrap();
        let c = RandomPartitioner { seed: 2 }.partition(&graph(100), 4).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn more_parts_than_vertices_is_allowed() {
        let p = RoundRobinPartitioner.partition(&graph(2), 5).unwrap();
        assert_eq!(p.k(), 5);
        assert_eq!(p.part_sizes()[4], 0);
        let p = BlockPartitioner.partition(&graph(2), 5).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn zero_parts_rejected_everywhere() {
        let g = graph(3);
        assert!(BlockPartitioner.partition(&g, 0).is_err());
        assert!(RoundRobinPartitioner.partition(&g, 0).is_err());
        assert!(HashPartitioner.partition(&g, 0).is_err());
        assert!(RandomPartitioner { seed: 0 }.partition(&g, 0).is_err());
    }
}
