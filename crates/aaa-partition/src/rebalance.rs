//! Incremental background repartitioning.
//!
//! The paper treats Repartition-S as a stop-the-world event triggered by a
//! vertex batch. The rebalancer here turns the PS/RS pair into *runtime
//! policies* evaluated continuously at RC-step barriers: it reads per-part
//! load and edge-cut signals, and when the configured skew threshold is
//! crossed it either plans a small budgeted set of boundary-vertex
//! migrations (the PS-flavoured move, xDGP/SDP style) or escalates to a
//! full repartition (the RS-flavoured move). Because the DV fixed point is
//! the exact distance matrix — independent of which rank owns which row —
//! any plan this module produces preserves bit-identical converged
//! answers; only *where* the work happens changes.
//!
//! The planner itself is a pure function of the graph, the partition and a
//! [`LoadSignals`] snapshot, so runs that feed it deterministic structural
//! signals (the default) are exactly reproducible and safe to perf-gate.
//! Measured per-rank busy-time skew from the observability layer can be
//! attached and opted into via [`RebalanceConfig::use_measured`] for
//! deployments that want wall-clock-driven decisions.

use crate::quality::{per_part_cut, vertex_balance};
use crate::Partition;
use aaa_graph::{PartId, VertexId};
use aaa_store::GraphStore;

/// Which rebalancing strategy runs at RC-step barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RebalancePolicy {
    /// Never rebalance (the paper's baseline: the initial decomposition is
    /// kept for the lifetime of the run).
    #[default]
    Static,
    /// Partial strategy: migrate up to a budget of boundary vertices from
    /// overloaded parts whenever skew exceeds the trigger.
    Ps,
    /// Repartition strategy: full multilevel repartition + wholesale
    /// migration whenever skew exceeds the trigger.
    Rs,
    /// Budgeted migrations while skew is moderate; escalate to a full
    /// repartition once it passes [`RebalanceConfig::rs_trigger`].
    Adaptive,
}

impl std::str::FromStr for RebalancePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "static" => Ok(RebalancePolicy::Static),
            "ps" => Ok(RebalancePolicy::Ps),
            "rs" => Ok(RebalancePolicy::Rs),
            "adaptive" => Ok(RebalancePolicy::Adaptive),
            other => Err(format!("rebalance policy wants static|ps|rs|adaptive, got {other}")),
        }
    }
}

/// Tuning knobs for the background rebalancer. The default is
/// [`RebalancePolicy::Static`], i.e. fully disabled — engines behave
/// exactly as before unless a policy is opted into.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Strategy selector.
    pub policy: RebalancePolicy,
    /// Evaluate the planner every `every` RC-step barriers.
    pub every: usize,
    /// Maximum vertices migrated per planning event (PS moves).
    pub budget: usize,
    /// Skew (max part load / ideal part load) above which the policy acts.
    pub trigger: f64,
    /// Skew above which [`RebalancePolicy::Adaptive`] escalates from
    /// budgeted migration to a full repartition.
    pub rs_trigger: f64,
    /// Seed for the multilevel partitioner on RS escalations.
    pub seed: u64,
    /// Decide on measured busy-time skew (when provided) instead of the
    /// structural vertex balance. Measured skew is wall-clock-derived and
    /// therefore nondeterministic; pinned scenarios keep this off.
    pub use_measured: bool,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            policy: RebalancePolicy::Static,
            every: 4,
            budget: 16,
            trigger: 1.15,
            rs_trigger: 1.60,
            seed: 0,
            use_measured: false,
        }
    }
}

impl RebalanceConfig {
    /// A config running `policy` with the default knobs.
    pub fn with_policy(policy: RebalancePolicy) -> Self {
        Self { policy, ..Self::default() }
    }

    /// True when any rebalancing can happen at all.
    pub fn enabled(&self) -> bool {
        self.policy != RebalancePolicy::Static
    }

    /// True when the planner should run at RC-step barrier `rc_step`.
    pub fn due_at(&self, rc_step: usize) -> bool {
        self.enabled() && rc_step > 0 && rc_step % self.every.max(1) == 0
    }
}

/// A snapshot of the load/cut signals the planner decides on. The
/// structural fields are exact functions of the graph and partition;
/// `measured_skew` optionally carries the observability layer's busy-time
/// ratio (see `aaa_observe`'s per-rank span data).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSignals {
    /// Vertices per part.
    pub part_sizes: Vec<usize>,
    /// Cut edges incident to each part.
    pub per_part_cut: Vec<usize>,
    /// Structural skew: max part size / ⌈n/k⌉ (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Max/mean per-rank busy time from recorded spans, if available.
    pub measured_skew: Option<f64>,
}

impl LoadSignals {
    /// Computes the structural signals for `(g, p)`.
    pub fn measure<G: GraphStore>(g: &G, p: &Partition) -> Self {
        Self {
            part_sizes: p.part_sizes(),
            per_part_cut: per_part_cut(g, p),
            imbalance: vertex_balance(p),
            measured_skew: None,
        }
    }

    /// Attaches a measured busy-time skew (max/mean over ranks).
    pub fn with_measured_skew(mut self, skew: Option<f64>) -> Self {
        self.measured_skew = skew;
        self
    }

    /// The skew the policy decides on: measured when asked for *and*
    /// available, structural otherwise.
    pub fn skew(&self, use_measured: bool) -> f64 {
        match (use_measured, self.measured_skew) {
            (true, Some(s)) => s,
            _ => self.imbalance,
        }
    }
}

/// What the planner decided at one barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebalancePlan {
    /// Skew is within tolerance (or the policy is static): do nothing.
    Hold,
    /// Migrate each `(vertex, destination part)` in the list. Non-empty,
    /// at most [`RebalanceConfig::budget`] entries, every move strictly
    /// improves the donor/recipient balance.
    Migrate(Vec<(VertexId, PartId)>),
    /// Skew is beyond repair-by-budget: full repartition + migration.
    Repartition,
}

/// The background rebalancer: a pure planner over load/cut signals.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rebalancer {
    config: RebalanceConfig,
}

impl Rebalancer {
    /// A rebalancer with the given knobs.
    pub fn new(config: RebalanceConfig) -> Self {
        Self { config }
    }

    /// The knobs in effect.
    pub fn config(&self) -> &RebalanceConfig {
        &self.config
    }

    /// Plans what (if anything) to do given the current signals. Pure and
    /// deterministic: the same `(g, p, signals)` always yields the same
    /// plan.
    pub fn plan<G: GraphStore>(
        &self,
        g: &G,
        p: &Partition,
        signals: &LoadSignals,
    ) -> RebalancePlan {
        let cfg = &self.config;
        let skew = signals.skew(cfg.use_measured);
        match cfg.policy {
            RebalancePolicy::Static => RebalancePlan::Hold,
            RebalancePolicy::Rs => {
                if skew > cfg.trigger {
                    RebalancePlan::Repartition
                } else {
                    RebalancePlan::Hold
                }
            }
            RebalancePolicy::Ps => {
                if skew > cfg.trigger {
                    self.plan_moves(g, p, signals)
                } else {
                    RebalancePlan::Hold
                }
            }
            RebalancePolicy::Adaptive => {
                if skew > cfg.rs_trigger {
                    RebalancePlan::Repartition
                } else if skew > cfg.trigger {
                    self.plan_moves(g, p, signals)
                } else {
                    RebalancePlan::Hold
                }
            }
        }
    }

    /// Greedy budgeted move selection: walk overloaded parts hottest
    /// first; inside each, score every member by the cut gain of moving it
    /// to its best eligible recipient (most neighbors, and strictly less
    /// loaded than the donor after the move). Boundary vertices whose
    /// neighborhoods already live elsewhere score highest, so they migrate
    /// first — interior vertices only move as a pure balance repair when
    /// nothing better is left.
    fn plan_moves<G: GraphStore>(
        &self,
        g: &G,
        p: &Partition,
        signals: &LoadSignals,
    ) -> RebalancePlan {
        let k = p.k();
        let n = p.len();
        if k < 2 || n == 0 {
            return RebalancePlan::Hold;
        }
        let ideal = n.div_ceil(k);
        let mut sizes = signals.part_sizes.clone();
        let members = p.members();

        // Donors: overloaded parts, most loaded first (ties: lowest id).
        let mut donors: Vec<usize> = (0..k).filter(|&q| sizes[q] > ideal).collect();
        donors.sort_by_key(|&q| (std::cmp::Reverse(sizes[q]), q));

        let mut moves: Vec<(VertexId, PartId)> = Vec::new();
        let mut budget = self.config.budget;
        for donor in donors {
            if budget == 0 {
                break;
            }
            // Score each member: neighbors per part, best recipient.
            let mut scored: Vec<(i64, VertexId, PartId)> = Vec::new();
            let mut nbr_counts = vec![0i64; k];
            for &v in &members[donor] {
                nbr_counts.iter_mut().for_each(|c| *c = 0);
                for (t, _) in g.successors(v) {
                    nbr_counts[p.part_of(t) as usize] += 1;
                }
                // Best recipient: most neighbors, then least loaded, then
                // lowest id. Parts as loaded as the donor are ineligible —
                // a move there would not improve balance.
                let mut best: Option<(i64, usize)> = None;
                for q in 0..k {
                    if q == donor || sizes[q] + 2 > sizes[donor] {
                        continue;
                    }
                    let cand = (nbr_counts[q], q);
                    let better = match best {
                        None => true,
                        Some((bn, bq)) => cand.0 > bn || (cand.0 == bn && sizes[q] < sizes[bq]),
                    };
                    if better {
                        best = Some(cand);
                    }
                }
                if let Some((nq, q)) = best {
                    scored.push((nq - nbr_counts[donor], v, q as PartId));
                }
            }
            // Highest cut gain first; ids break ties deterministically.
            scored.sort_by_key(|&(gain, v, _)| (std::cmp::Reverse(gain), v));
            for (_, v, q) in scored {
                if budget == 0 || sizes[donor] <= ideal {
                    break;
                }
                // Re-check eligibility against the running size tallies.
                if sizes[q as usize] + 2 > sizes[donor] {
                    continue;
                }
                sizes[donor] -= 1;
                sizes[q as usize] += 1;
                moves.push((v, q));
                budget -= 1;
            }
        }
        if moves.is_empty() {
            RebalancePlan::Hold
        } else {
            RebalancePlan::Migrate(moves)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_graph::{AdjGraph, GraphBuilder};

    /// A path graph over `n` vertices.
    fn path(n: usize) -> AdjGraph {
        let mut b = GraphBuilder::with_vertices(n);
        for v in 1..n as u32 {
            b.edge(v - 1, v, 1);
        }
        b.build().unwrap()
    }

    fn skewed_partition(n: usize, k: usize) -> Partition {
        // Everything on part 0 except one vertex per other part.
        let mut a = vec![0 as PartId; n];
        for q in 1..k {
            a[n - q] = q as PartId;
        }
        Partition::new(a, k).unwrap()
    }

    #[test]
    fn static_policy_never_plans() {
        let g = path(20);
        let p = skewed_partition(20, 4);
        let s = LoadSignals::measure(&g, &p);
        assert!(s.imbalance > 2.0);
        let r = Rebalancer::new(RebalanceConfig::default());
        assert_eq!(r.plan(&g, &p, &s), RebalancePlan::Hold);
    }

    #[test]
    fn balanced_partition_holds() {
        let g = path(16);
        let a: Vec<PartId> = (0..16).map(|v| (v / 4) as PartId).collect();
        let p = Partition::new(a, 4).unwrap();
        let s = LoadSignals::measure(&g, &p);
        let r = Rebalancer::new(RebalanceConfig::with_policy(RebalancePolicy::Adaptive));
        assert_eq!(r.plan(&g, &p, &s), RebalancePlan::Hold);
    }

    #[test]
    fn ps_moves_reduce_imbalance_within_budget() {
        let g = path(24);
        let p = skewed_partition(24, 3);
        let s = LoadSignals::measure(&g, &p);
        let cfg = RebalanceConfig {
            policy: RebalancePolicy::Ps,
            budget: 5,
            ..RebalanceConfig::default()
        };
        let plan = Rebalancer::new(cfg).plan(&g, &p, &s);
        let RebalancePlan::Migrate(moves) = plan else {
            panic!("expected moves, got {plan:?}");
        };
        assert!(!moves.is_empty() && moves.len() <= 5);
        let mut q = p.clone();
        for &(v, part) in &moves {
            assert_eq!(p.part_of(v), 0, "moves drain the overloaded part");
            assert_ne!(part, 0);
            q.set_part(v, part).unwrap();
        }
        assert!(vertex_balance(&q) < s.imbalance, "every event strictly improves balance");
        // No vertex moves twice in one plan.
        let mut ids: Vec<_> = moves.iter().map(|&(v, _)| v).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), moves.len());
    }

    #[test]
    fn adaptive_escalates_to_repartition_on_extreme_skew() {
        let g = path(30);
        let p = skewed_partition(30, 3);
        let s = LoadSignals::measure(&g, &p);
        assert!(s.imbalance > 1.6);
        let r = Rebalancer::new(RebalanceConfig::with_policy(RebalancePolicy::Adaptive));
        assert_eq!(r.plan(&g, &p, &s), RebalancePlan::Repartition);
        // Moderate skew: the same policy plans budgeted moves instead.
        let mild = LoadSignals { imbalance: 1.3, ..s.clone() };
        assert!(matches!(r.plan(&g, &p, &mild), RebalancePlan::Migrate(_)));
    }

    #[test]
    fn planner_is_deterministic() {
        let g = path(40);
        let p = skewed_partition(40, 4);
        let s = LoadSignals::measure(&g, &p);
        let r = Rebalancer::new(RebalanceConfig::with_policy(RebalancePolicy::Ps));
        assert_eq!(r.plan(&g, &p, &s), r.plan(&g, &p, &s));
    }

    #[test]
    fn measured_skew_only_decides_when_opted_in() {
        let g = path(16);
        let a: Vec<PartId> = (0..16).map(|v| (v / 4) as PartId).collect();
        let p = Partition::new(a, 4).unwrap();
        // Structurally balanced, but the wall clock says rank 0 is hot.
        let s = LoadSignals::measure(&g, &p).with_measured_skew(Some(3.0));
        let mut cfg = RebalanceConfig::with_policy(RebalancePolicy::Rs);
        let hold = Rebalancer::new(cfg).plan(&g, &p, &s);
        assert_eq!(hold, RebalancePlan::Hold, "measured skew is ignored by default");
        cfg.use_measured = true;
        assert_eq!(Rebalancer::new(cfg).plan(&g, &p, &s), RebalancePlan::Repartition);
    }

    #[test]
    fn due_at_respects_cadence_and_enablement() {
        let cfg = RebalanceConfig {
            policy: RebalancePolicy::Adaptive,
            every: 4,
            ..RebalanceConfig::default()
        };
        assert!(!cfg.due_at(0));
        assert!(!cfg.due_at(3));
        assert!(cfg.due_at(4));
        assert!(cfg.due_at(8));
        assert!(!RebalanceConfig::default().due_at(4));
    }
}
