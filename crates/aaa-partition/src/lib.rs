//! Graph partitioning for the anytime-anywhere reproduction.
//!
//! The paper's domain-decomposition phase requires "any cut-edge
//! optimization based graph partitioning algorithm" and its experiments use
//! METIS/ParMETIS. This crate provides:
//!
//! * [`multilevel`] — a from-scratch multilevel k-way partitioner (heavy-edge
//!   matching coarsening, greedy graph growing initial partition, boundary
//!   FM refinement) in the METIS algorithm family; a rayon-parallel
//!   coarsening path stands in for ParMETIS.
//! * [`simple`] — block, round-robin, hash and random partitioners (used as
//!   baselines and by ablation benches).
//! * [`quality`] — cut size, balance and boundary metrics used throughout
//!   the engine and the experiment harness.
//! * [`rebalance`] — the incremental background rebalancer: turns the
//!   paper's PS/RS strategies into runtime policies that plan budgeted
//!   boundary-vertex migrations (or full repartitions) from load/cut skew.

pub mod multilevel;
pub mod quality;
pub mod rebalance;
pub mod simple;

pub use multilevel::{MultilevelConfig, MultilevelPartitioner};
pub use quality::{boundary_vertices, cut_edges, cut_weight, edge_balance, vertex_balance};
pub use rebalance::{LoadSignals, RebalanceConfig, RebalancePlan, RebalancePolicy, Rebalancer};

use aaa_graph::{PartId, VertexId};
use aaa_store::GraphStore;
use std::fmt;

/// A k-way assignment of vertices to parts (processors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<PartId>,
    k: usize,
}

impl Partition {
    /// Wraps an assignment vector; every entry must be `< k`.
    pub fn new(assignment: Vec<PartId>, k: usize) -> Result<Self, PartitionError> {
        if k == 0 {
            return Err(PartitionError::ZeroParts);
        }
        if let Some(&bad) = assignment.iter().find(|&&p| p as usize >= k) {
            return Err(PartitionError::PartOutOfRange { part: bad, k });
        }
        Ok(Self { assignment, k })
    }

    /// Number of parts.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of assigned vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True if no vertices are assigned.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Part of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: VertexId) -> PartId {
        self.assignment[v as usize]
    }

    /// The raw assignment slice.
    #[inline]
    pub fn assignment(&self) -> &[PartId] {
        &self.assignment
    }

    /// Reassigns vertex `v` (used by dynamic strategies).
    pub fn set_part(&mut self, v: VertexId, p: PartId) -> Result<(), PartitionError> {
        if p as usize >= self.k {
            return Err(PartitionError::PartOutOfRange { part: p, k: self.k });
        }
        self.assignment[v as usize] = p;
        Ok(())
    }

    /// Appends assignments for newly added vertices.
    pub fn extend(
        &mut self,
        parts: impl IntoIterator<Item = PartId>,
    ) -> Result<(), PartitionError> {
        for p in parts {
            if p as usize >= self.k {
                return Err(PartitionError::PartOutOfRange { part: p, k: self.k });
            }
            self.assignment.push(p);
        }
        Ok(())
    }

    /// Number of vertices in each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Vertices of each part, ascending.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.k];
        for (v, &p) in self.assignment.iter().enumerate() {
            out[p as usize].push(v as VertexId);
        }
        out
    }
}

/// Errors from partition construction or partitioners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// k must be at least 1.
    ZeroParts,
    /// An assignment referenced a part ≥ k.
    PartOutOfRange { part: PartId, k: usize },
    /// The partitioner was given an assignment/graph size mismatch.
    LengthMismatch { expected: usize, got: usize },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::ZeroParts => write!(f, "partition must have at least one part"),
            PartitionError::PartOutOfRange { part, k } => {
                write!(f, "part {part} out of range for k = {k}")
            }
            PartitionError::LengthMismatch { expected, got } => {
                write!(f, "assignment length {got} does not match graph size {expected}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A graph partitioner. Generic over the storage backend so domain
/// decomposition can run directly on a compressed on-disk graph.
pub trait Partitioner {
    /// Partitions `g` into `k` parts. Parts may be empty when
    /// `k > |V|`; implementations must still return a valid assignment.
    fn partition<G: GraphStore>(&self, g: &G, k: usize) -> Result<Partition, PartitionError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_validates_bounds() {
        assert!(Partition::new(vec![0, 1, 2], 3).is_ok());
        assert_eq!(
            Partition::new(vec![0, 3], 3),
            Err(PartitionError::PartOutOfRange { part: 3, k: 3 })
        );
        assert_eq!(Partition::new(vec![], 0), Err(PartitionError::ZeroParts));
    }

    #[test]
    fn part_sizes_and_members() {
        let p = Partition::new(vec![0, 1, 0, 2, 1], 3).unwrap();
        assert_eq!(p.part_sizes(), vec![2, 2, 1]);
        assert_eq!(p.members()[0], vec![0, 2]);
        assert_eq!(p.part_of(3), 2);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn set_part_and_extend() {
        let mut p = Partition::new(vec![0, 0], 2).unwrap();
        p.set_part(1, 1).unwrap();
        assert_eq!(p.part_of(1), 1);
        assert!(p.set_part(0, 5).is_err());
        p.extend([1, 0]).unwrap();
        assert_eq!(p.len(), 4);
        assert!(p.extend([9]).is_err());
    }
}
