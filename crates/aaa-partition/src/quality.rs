//! Partition quality metrics: cut size, balance, boundary structure.
//!
//! These are the quantities the paper's analysis is written in terms of —
//! cut-edges drive communication volume (§IV.C) and vertex balance drives
//! computational load (§IV.C.1a). Figure 7 is reproduced entirely from
//! these functions.

use crate::Partition;
use aaa_graph::VertexId;
use aaa_store::{edges, GraphStore};

/// Number of cut edges (edges whose endpoints lie in different parts).
pub fn cut_edges<G: GraphStore>(g: &G, p: &Partition) -> usize {
    edges(g).filter(|&(u, v, _)| p.part_of(u) != p.part_of(v)).count()
}

/// Total weight of cut edges.
pub fn cut_weight<G: GraphStore>(g: &G, p: &Partition) -> u64 {
    edges(g).filter(|&(u, v, _)| p.part_of(u) != p.part_of(v)).map(|(_, _, w)| w as u64).sum()
}

/// Per-part cut size: number of cut edges incident to each part.
/// (The paper calls this the "cut-size of a sub-graph".)
pub fn per_part_cut<G: GraphStore>(g: &G, p: &Partition) -> Vec<usize> {
    let mut cut = vec![0usize; p.k()];
    for (u, v, _) in edges(g) {
        let (pu, pv) = (p.part_of(u), p.part_of(v));
        if pu != pv {
            cut[pu as usize] += 1;
            cut[pv as usize] += 1;
        }
    }
    cut
}

/// Vertex balance: `max part size / ceil(n / k)`. 1.0 is perfect; higher
/// means the largest part is overloaded. Returns 1.0 for empty partitions.
pub fn vertex_balance(p: &Partition) -> f64 {
    if p.is_empty() {
        return 1.0;
    }
    let sizes = p.part_sizes();
    let max = *sizes.iter().max().unwrap() as f64;
    let ideal = (p.len() as f64 / p.k() as f64).ceil();
    if ideal == 0.0 {
        1.0
    } else {
        max / ideal
    }
}

/// Edge balance: `max part edge-endpoints / ideal`. Edges internal to a part
/// count twice for that part; cut edges count once for each side. Gauges
/// communication/computation skew from edge distribution.
pub fn edge_balance<G: GraphStore>(g: &G, p: &Partition) -> f64 {
    if g.num_edges() == 0 || p.k() == 0 {
        return 1.0;
    }
    let mut load = vec![0usize; p.k()];
    for (u, v, _) in edges(g) {
        load[p.part_of(u) as usize] += 1;
        load[p.part_of(v) as usize] += 1;
    }
    let max = *load.iter().max().unwrap() as f64;
    let ideal = (2.0 * g.num_edges() as f64 / p.k() as f64).max(1.0);
    max / ideal
}

/// Boundary vertices of each part: vertices with at least one neighbor in a
/// different part. These are the vertices whose distance vectors are
/// exchanged each recombination step.
pub fn boundary_vertices<G: GraphStore>(g: &G, p: &Partition) -> Vec<Vec<VertexId>> {
    let mut out = vec![Vec::new(); p.k()];
    for v in g.vertices() {
        let pv = p.part_of(v);
        if g.successors(v).any(|(t, _)| p.part_of(t) != pv) {
            out[pv as usize].push(v);
        }
    }
    out
}

/// Counts how many *new* cut edges `edges` would add under partition `p`
/// (endpoints outside `p`'s range are ignored). Used by Figure 7 to score
/// processor-assignment strategies.
pub fn new_cut_edges(p: &Partition, edges: &[(VertexId, VertexId)]) -> usize {
    edges
        .iter()
        .filter(|&&(u, v)| {
            (u as usize) < p.len() && (v as usize) < p.len() && p.part_of(u) != p.part_of(v)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;
    use aaa_graph::AdjGraph;

    fn square() -> AdjGraph {
        // 0-1, 1-2, 2-3, 3-0 (cycle)
        let mut g = AdjGraph::with_vertices(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            g.add_edge(u, v, 2).unwrap();
        }
        g
    }

    #[test]
    fn cut_metrics_on_split_square() {
        let g = square();
        let p = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        assert_eq!(cut_edges(&g, &p), 2); // 1-2 and 3-0
        assert_eq!(cut_weight(&g, &p), 4);
        assert_eq!(per_part_cut(&g, &p), vec![2, 2]);
    }

    #[test]
    fn balance_metrics() {
        let p = Partition::new(vec![0, 0, 0, 1], 2).unwrap();
        assert!((vertex_balance(&p) - 1.5).abs() < 1e-12);
        let p = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        assert!((vertex_balance(&p) - 1.0).abs() < 1e-12);
        let g = square();
        assert!((edge_balance(&g, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_vertices_of_split_square() {
        let g = square();
        let p = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        let b = boundary_vertices(&g, &p);
        assert_eq!(b[0], vec![0, 1]);
        assert_eq!(b[1], vec![2, 3]);
        // One part only: nothing is boundary.
        let p1 = Partition::new(vec![0, 0, 0, 0], 1).unwrap();
        assert!(boundary_vertices(&g, &p1).iter().all(|b| b.is_empty()));
    }

    #[test]
    fn new_cut_edges_counts_cross_part_pairs() {
        let p = Partition::new(vec![0, 1, 0], 2).unwrap();
        let edges = [(0, 1), (0, 2), (1, 2), (0, 9)];
        // (0,1) cut, (0,2) same, (1,2) cut, (0,9) out of range -> ignored
        assert_eq!(new_cut_edges(&p, &edges), 2);
    }

    #[test]
    fn empty_partition_degenerates_gracefully() {
        let p = Partition::new(vec![], 3).unwrap();
        assert_eq!(vertex_balance(&p), 1.0);
        let g = AdjGraph::new();
        assert_eq!(cut_edges(&g, &p), 0);
        assert_eq!(edge_balance(&g, &p), 1.0);
    }
}
