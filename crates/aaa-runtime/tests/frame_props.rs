//! Property and corruption tests for the socket frame codec.
//!
//! The codec is the trust boundary between a rank and the network: every
//! byte that arrives is attacker-controlled as far as the decoder is
//! concerned. Two families of guarantees are pinned here:
//!
//! * **round-trip** — encode → decode is the identity for every frame
//!   kind, sequence number, and payload (including Delta-row-shaped
//!   payloads), and decoding consumes exactly the encoded length even
//!   with trailing bytes from a following frame;
//! * **corruption** — the CRC covers the *entire* frame, so every
//!   single-bit flip anywhere (header included) is a typed error, and
//!   every truncation is `FrameError::Truncated` (the "read more"
//!   signal), never a panic or a bogus frame.

use aaa_runtime::{decode_frame, encode_frame, Frame, FrameError, FrameKind, Hello};
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = FrameKind> {
    (0usize..FrameKind::ALL.len()).prop_map(|i| FrameKind::ALL[i])
}

/// Arbitrary payload bytes, biased toward the shapes the protocol layer
/// actually ships: empty control payloads, Delta-row-style LE tuples, and
/// unstructured fuzz.
fn any_payload() -> impl Strategy<Value = Vec<u8>> {
    (0u8..3).prop_flat_map(|which| match which {
        0 => Just(Vec::new()).boxed(),
        // Delta-row shape: (u32 vertex, u32 dist) pairs, little-endian.
        1 => proptest::collection::vec((0u32..5_000, 0u32..100_000), 0..24)
            .prop_map(|pairs| {
                let mut out = Vec::with_capacity(8 * pairs.len());
                for (v, d) in pairs {
                    out.extend_from_slice(&v.to_le_bytes());
                    out.extend_from_slice(&d.to_le_bytes());
                }
                out
            })
            .boxed(),
        _ => proptest::collection::vec(0u8..=255, 0..200).boxed(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_is_the_identity(
        kind in any_kind(),
        seq in 0u64..=u64::MAX,
        payload in any_payload(),
    ) {
        let frame = Frame { kind, seq, payload };
        let bytes = encode_frame(&frame);
        let (decoded, consumed) = decode_frame(&bytes).expect("own encoding decodes");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn decode_consumes_exactly_one_frame_from_a_stream(
        kind in any_kind(),
        seq in 0u64..=u64::MAX,
        payload in any_payload(),
        trailing in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        // A TCP read usually hands back this frame plus the head of the
        // next one; the decoder must stop at the boundary.
        let frame = Frame { kind, seq, payload };
        let bytes = encode_frame(&frame);
        let mut stream = bytes.clone();
        stream.extend_from_slice(&trailing);
        let (decoded, consumed) = decode_frame(&stream).expect("prefix decodes");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn every_single_bit_flip_is_a_typed_error(
        kind in any_kind(),
        seq in 0u64..=u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        // CRC-32 detects all single-bit errors, and the CRC here covers
        // header and payload alike — so no flip anywhere may yield Ok.
        let bytes = encode_frame(&Frame { kind, seq, payload });
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                match decode_frame(&bad) {
                    Err(_) => {}
                    Ok((frame, _)) => prop_assert!(
                        false,
                        "bit {bit} of byte {pos} flipped undetected; decoded {:?}",
                        frame.kind
                    ),
                }
            }
        }
    }

    #[test]
    fn every_truncation_asks_for_more_bytes(
        kind in any_kind(),
        seq in 0u64..=u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let bytes = encode_frame(&Frame { kind, seq, payload });
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(FrameError::Truncated { have, need }) => {
                    prop_assert_eq!(have, cut);
                    prop_assert!(need > cut, "need {need} must exceed the {cut} bytes present");
                    prop_assert!(
                        need <= bytes.len(),
                        "need {need} overshoots the true frame length {}",
                        bytes.len()
                    );
                }
                other => prop_assert!(false, "truncation at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn hello_round_trips_and_rejects_short_input(
        rank in 0u32..=u32::MAX,
        session in 0u64..=u64::MAX,
        last_recv in 0u64..=u64::MAX,
    ) {
        let hello = Hello { rank, session, last_recv };
        let bytes = hello.to_bytes();
        prop_assert_eq!(Hello::from_bytes(&bytes).expect("own encoding decodes"), hello);
        for cut in 0..bytes.len() {
            prop_assert!(Hello::from_bytes(&bytes[..cut]).is_err());
        }
    }
}

/// Deterministic edge cases the fuzz loops above could in principle miss.
#[test]
fn hostile_headers_map_to_the_right_typed_errors() {
    let good = encode_frame(&Frame { kind: FrameKind::Data, seq: 9, payload: vec![1, 2, 3] });

    // Wrong magic beats everything else.
    let mut bad = good.clone();
    bad[0] = 0x00;
    assert!(matches!(decode_frame(&bad), Err(FrameError::BadMagic(_))));

    // Unknown kind byte.
    let mut bad = good.clone();
    bad[2] = 0xEE;
    assert!(matches!(decode_frame(&bad), Err(FrameError::UnknownKind(0xEE))));

    // Reserved flags set.
    let mut bad = good.clone();
    bad[3] = 0x01;
    assert!(matches!(decode_frame(&bad), Err(FrameError::BadFlags(0x01))));

    // A length field claiming more than the cap is rejected *before* any
    // allocation — the allocation-bomb guard.
    let mut bad = good.clone();
    bad[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(decode_frame(&bad), Err(FrameError::TooLarge { .. })));

    // A length field inside the cap but beyond the buffer just asks for
    // more bytes; the stream loop's deadline bounds how long it waits.
    let mut bad = good.clone();
    bad[12..16].copy_from_slice(&1_000u32.to_le_bytes());
    assert!(matches!(decode_frame(&bad), Err(FrameError::Truncated { .. })));

    // Same frame with a re-zeroed CRC: pure CRC failure.
    let mut bad = good.clone();
    bad[16..20].copy_from_slice(&[0; 4]);
    assert!(matches!(decode_frame(&bad), Err(FrameError::BadCrc { .. })));

    // The unharmed original still decodes.
    assert!(decode_frame(&good).is_ok());
}
