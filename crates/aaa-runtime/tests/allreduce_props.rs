//! Property tests for the reduction collectives: `allreduce_or` and
//! `allreduce_max` must be execution-mode invariant — the Sequential and
//! Parallel executors are different schedulers over the same reduction
//! tree, so on any input they must agree with each other and with the
//! single-machine fold.

use aaa_runtime::{Cluster, ClusterConfig, ExecutionMode, LogPModel};
use proptest::prelude::*;

fn config(mode: ExecutionMode) -> ClusterConfig {
    ClusterConfig { model: LogPModel::ethernet_1g(), mode, ..ClusterConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn allreduce_or_agrees_across_modes(
        vals in proptest::collection::vec(0u64..1_000, 1..33),
        threshold in 0u64..1_000,
    ) {
        let run = |mode| {
            let mut c = Cluster::new(vals.clone(), config(mode));
            let or = c.allreduce_or(|_, &v| v > threshold);
            (or, c.stats().collectives, c.stats().sim_comm_us)
        };
        let seq = run(ExecutionMode::Sequential);
        let par = run(ExecutionMode::Parallel);
        prop_assert_eq!(seq, par);
        // And both agree with the plain fold.
        prop_assert_eq!(seq.0, vals.iter().any(|&v| v > threshold));
    }

    #[test]
    fn allreduce_max_agrees_across_modes(
        vals in proptest::collection::vec(0u64..1_000_000, 1..33),
    ) {
        let run = |mode| {
            let mut c = Cluster::new(vals.clone(), config(mode));
            let max = c.allreduce_max(|_, &v| v);
            (max, c.stats().collectives, c.stats().sim_comm_us)
        };
        let seq = run(ExecutionMode::Sequential);
        let par = run(ExecutionMode::Parallel);
        prop_assert_eq!(seq, par);
        prop_assert_eq!(seq.0, vals.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn reductions_commute_with_rank_permutation(
        vals in proptest::collection::vec(0u64..1_000, 2..17),
        rot in 1usize..16,
    ) {
        // OR/MAX are commutative monoids: rotating which rank holds which
        // value must not change either reduction.
        let rot = rot % vals.len();
        let mut rotated = vals.clone();
        rotated.rotate_left(rot);
        let reduce = |vs: &[u64]| {
            let mut c = Cluster::new(vs.to_vec(), config(ExecutionMode::Sequential));
            (c.allreduce_or(|_, &v| v > 500), c.allreduce_max(|_, &v| v))
        };
        prop_assert_eq!(reduce(&vals), reduce(&rotated));
    }
}
