//! SPMD thread-per-rank execution: each logical processor runs on its own
//! OS thread and communicates through channels — the programming model of
//! the paper's MPI deployment, in-process.
//!
//! The orchestrated BSP [`crate::Cluster`] is what the engine uses (it
//! gives deterministic replay and clean cost accounting); this module is
//! the lower-level substrate variant: point-to-point sends, blocking
//! receives, barriers and all-reductions between genuinely concurrent
//! ranks. The test suite runs a distributed Bellman–Ford on it to show the
//! two runtimes express the same algorithms.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use crate::Rank;

/// Per-rank communication context handed to an SPMD body.
pub struct SpmdCtx<M: Send> {
    rank: Rank,
    p: usize,
    tx: Vec<Sender<(Rank, M)>>,
    rx: Receiver<(Rank, M)>,
    barrier: Arc<Barrier>,
    reduce: Arc<Mutex<Vec<u64>>>,
}

impl<M: Send> SpmdCtx<M> {
    /// This rank's index.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Sends `msg` to rank `to` (non-blocking; channels are unbounded).
    ///
    /// # Panics
    /// If `to` is out of range. Sending to a rank that already returned is
    /// allowed — the message is dropped with the channel.
    pub fn send(&self, to: Rank, msg: M) {
        assert!(to < self.p, "rank {} sent to nonexistent rank {to}", self.rank);
        // A disconnected receiver means the peer has finished; dropping the
        // message mirrors MPI's freedom to complete sends after peer exit.
        let _ = self.tx[to].send((self.rank, msg));
    }

    /// Blocks until a message arrives; returns `(from, message)`.
    pub fn recv(&self) -> (Rank, M) {
        self.rx.recv().expect("all senders dropped while receiving")
    }

    /// Receives with a timeout (`None` on expiry).
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(Rank, M)> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Some(m),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drains every message currently queued.
    pub fn drain(&self) -> Vec<(Rank, M)> {
        let mut out = Vec::new();
        while let Ok(m) = self.rx.try_recv() {
            out.push(m);
        }
        out
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// MAX all-reduction (two barriers; every rank contributes first).
    pub fn allreduce_max(&self, value: u64) -> u64 {
        {
            self.reduce.lock()[self.rank] = value;
        }
        self.barrier();
        let result = *self.reduce.lock().iter().max().expect("p >= 1");
        self.barrier();
        result
    }

    /// OR all-reduction.
    pub fn allreduce_or(&self, value: bool) -> bool {
        self.allreduce_max(value as u64) != 0
    }

    /// SUM all-reduction. Values are summed as u64; the caller is
    /// responsible for overflow headroom.
    pub fn allreduce_sum(&self, value: u64) -> u64 {
        {
            self.reduce.lock()[self.rank] = value;
        }
        self.barrier();
        let result = self.reduce.lock().iter().sum();
        self.barrier();
        result
    }
}

/// Runs `body` on `p` concurrent ranks and returns their results in rank
/// order. Panics in any rank propagate after all threads are joined.
pub fn run_spmd<M, R, F>(p: usize, body: F) -> Vec<R>
where
    M: Send,
    R: Send,
    F: Fn(SpmdCtx<M>) -> R + Sync,
{
    assert!(p >= 1, "need at least one rank");
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let barrier = Arc::new(Barrier::new(p));
    let reduce = Arc::new(Mutex::new(vec![0u64; p]));
    let body = &body;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, rx) in receivers.into_iter().enumerate() {
            let ctx = SpmdCtx {
                rank,
                p,
                tx: senders.clone(),
                rx,
                barrier: Arc::clone(&barrier),
                reduce: Arc::clone(&reduce),
            };
            handles.push(scope.spawn(move || body(ctx)));
        }
        // Drop the original senders so channels close when ranks finish.
        drop(senders);
        handles.into_iter().map(|h| h.join().expect("SPMD rank panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{broadcast_tree, tournament_rounds};

    #[test]
    fn ring_pass() {
        let results = run_spmd::<u64, u64, _>(4, |ctx| {
            let next = (ctx.rank() + 1) % ctx.p();
            ctx.send(next, ctx.rank() as u64 * 10);
            let (from, v) = ctx.recv();
            assert_eq!(from, (ctx.rank() + ctx.p() - 1) % ctx.p());
            v
        });
        assert_eq!(results, vec![30, 0, 10, 20]);
    }

    #[test]
    fn tournament_all_to_all_covers_all_pairs() {
        let p = 5;
        let results = run_spmd::<u64, Vec<Rank>, _>(p, |ctx| {
            let mut partners_seen = Vec::new();
            for round in tournament_rounds(ctx.p()) {
                let me = round.iter().find(|&&(a, b)| a == ctx.rank() || b == ctx.rank());
                if let Some(&(a, b)) = me {
                    let partner = if a == ctx.rank() { b } else { a };
                    ctx.send(partner, ctx.rank() as u64);
                    let (from, v) = ctx.recv();
                    assert_eq!(from, partner);
                    assert_eq!(v, partner as u64);
                    partners_seen.push(partner);
                }
                ctx.barrier();
            }
            partners_seen.sort_unstable();
            partners_seen
        });
        for (rank, partners) in results.into_iter().enumerate() {
            let expected: Vec<Rank> = (0..p).filter(|&q| q != rank).collect();
            assert_eq!(partners, expected, "rank {rank}");
        }
    }

    #[test]
    fn tree_broadcast_reaches_all() {
        let p = 7;
        let root = 2;
        let results = run_spmd::<u64, u64, _>(p, |ctx| {
            let edges = broadcast_tree(ctx.p(), root);
            let mut value = if ctx.rank() == root { 99 } else { 0 };
            for (from, to) in edges {
                if ctx.rank() == to {
                    let (src, v) = ctx.recv();
                    assert_eq!(src, from);
                    value = v;
                }
                if ctx.rank() == from {
                    ctx.send(to, value);
                }
                // Edges are in dependency order: a value is always received
                // before it must be forwarded, so no barrier is needed.
            }
            value
        });
        assert_eq!(results, vec![99; p]);
    }

    #[test]
    fn reductions() {
        let results = run_spmd::<(), (u64, bool, u64), _>(6, |ctx| {
            let max = ctx.allreduce_max(ctx.rank() as u64);
            let any = ctx.allreduce_or(ctx.rank() == 3);
            let sum = ctx.allreduce_sum(1);
            (max, any, sum)
        });
        for (max, any, sum) in results {
            assert_eq!(max, 5);
            assert!(any);
            assert_eq!(sum, 6);
        }
    }

    #[test]
    fn repeated_reductions_do_not_interfere() {
        let results = run_spmd::<(), Vec<u64>, _>(3, |ctx| {
            (0..10u64).map(|i| ctx.allreduce_max(ctx.rank() as u64 + i)).collect()
        });
        for per_rank in results {
            let expected: Vec<u64> = (0..10u64).map(|i| 2 + i).collect();
            assert_eq!(per_rank, expected);
        }
    }

    #[test]
    fn drain_and_timeout() {
        run_spmd::<u32, (), _>(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7);
                ctx.send(1, 8);
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                let msgs = ctx.drain();
                assert_eq!(msgs.len(), 2);
                assert!(ctx.recv_timeout(Duration::from_millis(10)).is_none());
            }
        });
    }

    /// Distributed Bellman–Ford over block-partitioned vertices: the same
    /// boundary-exchange pattern as the engine's RC phase, on real threads.
    #[test]
    fn distributed_bellman_ford_matches_dijkstra() {
        use aaa_graph::generators::{barabasi_albert, WeightModel};
        use aaa_graph::{sssp::dijkstra, Csr, Dist, INF};

        let g = barabasi_albert(120, 2, WeightModel::UniformRange { lo: 1, hi: 5 }, 3).unwrap();
        let csr = Csr::from_adj(&g);
        let n = csr.num_vertices();
        let p = 4;
        let expected = dijkstra(&csr, 0);

        let per = n.div_ceil(p);
        let csr_ref = &csr;
        let results = run_spmd::<(u32, Dist), Vec<(u32, Dist)>, _>(p, move |ctx| {
            let lo = ctx.rank() * per;
            let hi = ((ctx.rank() + 1) * per).min(n);
            let mut dist = vec![INF; n];
            if lo == 0 {
                dist[0] = 0;
            }
            loop {
                // Local relaxation to a fixed point over owned vertices.
                let mut changed_any = true;
                let mut frontier_updates: Vec<(u32, Dist)> = Vec::new();
                while changed_any {
                    changed_any = false;
                    for v in lo..hi {
                        let dv = dist[v];
                        if dv == INF {
                            continue;
                        }
                        for (t, w) in csr_ref.neighbors(v as u32) {
                            let nd = dv.saturating_add(w);
                            if nd < dist[t as usize] {
                                dist[t as usize] = nd;
                                if (t as usize) < lo || t as usize >= hi {
                                    frontier_updates.push((t, nd));
                                } else {
                                    changed_any = true;
                                }
                            }
                        }
                    }
                }
                // Exchange cross-partition updates.
                for &(t, d) in &frontier_updates {
                    let owner = (t as usize / per).min(p - 1);
                    ctx.send(owner, (t, d));
                }
                ctx.barrier();
                let mut improved = false;
                for (_, (t, d)) in ctx.drain() {
                    if d < dist[t as usize] {
                        dist[t as usize] = d;
                        improved = true;
                    }
                }
                if !ctx.allreduce_or(improved || !frontier_updates.is_empty()) {
                    break;
                }
            }
            (lo..hi).map(|v| (v as u32, dist[v])).collect()
        });
        let mut got = vec![INF; n];
        for chunk in results {
            for (v, d) in chunk {
                got[v as usize] = d;
            }
        }
        assert_eq!(got, expected);
    }
}
