//! Seeded message-fault injection (the chaos layer).
//!
//! PR 1's [`crate::FaultPlan`] models the catastrophic failure — a whole
//! rank dies and loses its state. This module models the *messy middle*
//! that real clusters face far more often: individual messages dropped,
//! duplicated, delayed past their barrier, corrupted in flight, and ranks
//! that stall without dying. A [`ChaosPlan`] draws a [`ChannelFault`] for
//! every cross-rank message from a seeded hash of the message's coordinate
//! `(superstep, src, dst, ordinal)`, so a given seed produces the *same*
//! fault sequence on every run and under both execution modes — chaos
//! experiments are exactly reproducible.
//!
//! The algorithmic reason this is survivable at all: the engine's
//! recombination merge is a min-merge on distance rows, which is
//! **idempotent** (duplicates are no-ops) and **commutative** (reorders
//! and delays don't matter), and every row is an upper bound on the fixed
//! point (drops lose progress, never correctness). The supervised loop in
//! `aaa-core` exploits exactly that to retry blindly.

use crate::Rank;

/// The fate a [`ChaosPlan`] assigns to one cross-rank message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelFault {
    /// Delivered normally.
    Deliver,
    /// Transmitted but lost in flight: priced, never delivered.
    Drop,
    /// Delivered twice (e.g. a sender-side retransmit racing its ack).
    Duplicate,
    /// Held for `k ≥ 1` supersteps in the delay queue, delivered at the
    /// first exchange at or after `superstep + k`.
    Delay(u64),
    /// Payload garbled in flight; the receiver's checksum rejects it, so
    /// it is priced (plus a NACK) but discarded, and the incident surfaces
    /// as [`crate::ClusterError::MessageCorrupted`].
    Corrupt,
}

/// A seeded, deterministic message-fault schedule.
///
/// Each cross-rank message independently suffers each fault with the
/// configured Bernoulli probability; each rank independently stalls for a
/// superstep with probability [`ChaosPlan::stall_p`]. Faults only fire
/// while `superstep < horizon` — after the horizon the channel is clean,
/// which models *eventual delivery* (the partial-synchrony "global
/// stabilization time"). A finite horizon is what makes bit-identical
/// reconvergence provable; an effectively infinite horizon
/// (`u64::MAX`) exercises the degraded-mode give-up path instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed for every per-message draw.
    pub seed: u64,
    /// P(message dropped).
    pub drop_p: f64,
    /// P(message duplicated).
    pub dup_p: f64,
    /// P(message delayed).
    pub delay_p: f64,
    /// Delays are drawn uniformly from `1..=max_delay` supersteps.
    pub max_delay: u64,
    /// P(message corrupted).
    pub corrupt_p: f64,
    /// P(a rank stalls for a superstep), per rank per exchange.
    pub stall_p: f64,
    /// Faults fire only at supersteps strictly below this.
    pub horizon: u64,
}

/// SplitMix64 finalizer — the same generator `FaultPlan::seeded` uses.
#[inline]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Hash a chain of values into one u64 (order-sensitive).
#[inline]
pub(crate) fn mix(seed: u64, vals: &[u64]) -> u64 {
    let mut h = splitmix64(seed);
    for &v in vals {
        h = splitmix64(h ^ v);
    }
    h
}

/// Map a u64 to a unit-interval f64 (53 high bits).
#[inline]
pub(crate) fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl ChaosPlan {
    /// The inert plan: no fault ever fires. Installing it is equivalent to
    /// not installing a plan at all (the cluster keeps its fast path).
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            max_delay: 0,
            corrupt_p: 0.0,
            stall_p: 0.0,
            horizon: 0,
        }
    }

    /// A balanced plan from a single knob: `rate` is the total per-message
    /// fault probability, split evenly across drop/duplicate/delay/corrupt
    /// (`rate/4` each); ranks stall with probability `rate/4` per exchange;
    /// delays are 1–3 supersteps. Mirrors `FaultPlan::seeded`'s degenerate
    /// guards: a non-positive `rate` or a zero `horizon` yields the inert
    /// plan instead of a plan that fires at a bogus coordinate.
    pub fn seeded(seed: u64, rate: f64, horizon: u64) -> Self {
        if rate.is_nan() || rate <= 0.0 || horizon == 0 {
            return Self::none();
        }
        let q = rate.min(1.0) / 4.0;
        Self {
            seed,
            drop_p: q,
            dup_p: q,
            delay_p: q,
            max_delay: 3,
            corrupt_p: q,
            stall_p: q,
            horizon,
        }
    }

    /// True if no fault can ever fire under this plan.
    pub fn is_none(&self) -> bool {
        self.horizon == 0
            || (self.drop_p <= 0.0
                && self.dup_p <= 0.0
                && self.delay_p <= 0.0
                && self.corrupt_p <= 0.0
                && self.stall_p <= 0.0)
    }

    /// Whether any fault may fire at `superstep`.
    pub fn active_at(&self, superstep: u64) -> bool {
        superstep < self.horizon && !self.is_none()
    }

    /// The fate of the `ordinal`-th cross-rank message routed at
    /// `superstep` from `src` to `dst`. Pure function of the plan and the
    /// coordinate — identical under both execution modes.
    pub fn fate(&self, superstep: u64, src: Rank, dst: Rank, ordinal: u64) -> ChannelFault {
        if !self.active_at(superstep) {
            return ChannelFault::Deliver;
        }
        let h = mix(self.seed, &[1, superstep, src as u64, dst as u64, ordinal]);
        let u = unit(h);
        if u < self.drop_p {
            ChannelFault::Drop
        } else if u < self.drop_p + self.dup_p {
            ChannelFault::Duplicate
        } else if u < self.drop_p + self.dup_p + self.delay_p {
            let k = 1 + mix(self.seed, &[2, superstep, src as u64, dst as u64, ordinal])
                % self.max_delay.max(1);
            ChannelFault::Delay(k)
        } else if u < self.drop_p + self.dup_p + self.delay_p + self.corrupt_p {
            ChannelFault::Corrupt
        } else {
            ChannelFault::Deliver
        }
    }

    /// Whether `rank` stalls at `superstep`: its whole outbox is held at
    /// the sender for one superstep and the barrier reports
    /// [`crate::ClusterError::RankStalled`].
    pub fn stalls(&self, superstep: u64, rank: Rank) -> bool {
        self.active_at(superstep)
            && unit(mix(self.seed, &[3, superstep, rank as u64])) < self.stall_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_everywhere() {
        let p = ChaosPlan::none();
        assert!(p.is_none());
        for s in [0, 1, 100] {
            assert!(!p.active_at(s));
            assert_eq!(p.fate(s, 0, 1, 0), ChannelFault::Deliver);
            assert!(!p.stalls(s, 0));
        }
    }

    #[test]
    fn seeded_guards_degenerate_inputs() {
        assert!(ChaosPlan::seeded(7, 0.0, 10).is_none());
        assert!(ChaosPlan::seeded(7, -1.0, 10).is_none());
        assert!(ChaosPlan::seeded(7, f64::NAN, 10).is_none());
        assert!(ChaosPlan::seeded(7, 0.5, 0).is_none());
        assert!(!ChaosPlan::seeded(7, 0.5, 1).is_none());
    }

    #[test]
    fn fate_is_deterministic_and_horizon_bounded() {
        let p = ChaosPlan::seeded(42, 0.8, 5);
        for s in 0..5 {
            for ord in 0..20 {
                assert_eq!(p.fate(s, 1, 2, ord), p.fate(s, 1, 2, ord));
            }
        }
        // Past the horizon everything delivers.
        assert_eq!(p.fate(5, 1, 2, 0), ChannelFault::Deliver);
        assert!(!p.stalls(5, 1));
        // A high rate produces at least one of each fault kind in-horizon.
        let mut seen_drop = false;
        let (mut seen_dup, mut seen_delay, mut seen_corrupt) = (false, false, false);
        for s in 0..5 {
            for src in 0..8 {
                for dst in 0..8 {
                    for ord in 0..16 {
                        match p.fate(s, src, dst, ord) {
                            ChannelFault::Drop => seen_drop = true,
                            ChannelFault::Duplicate => seen_dup = true,
                            ChannelFault::Delay(k) => {
                                assert!((1..=p.max_delay).contains(&k));
                                seen_delay = true;
                            }
                            ChannelFault::Corrupt => seen_corrupt = true,
                            ChannelFault::Deliver => {}
                        }
                    }
                }
            }
        }
        assert!(seen_drop && seen_dup && seen_delay && seen_corrupt);
    }

    #[test]
    fn different_coordinates_decorrelate() {
        let p = ChaosPlan::seeded(1, 0.5, 100);
        let base = p.fate(3, 0, 1, 0);
        let others =
            [p.fate(4, 0, 1, 0), p.fate(3, 1, 0, 0), p.fate(3, 0, 2, 0), p.fate(3, 0, 1, 1)];
        // Not a strict requirement of any single draw, but over a few
        // coordinates at 50% fault rate at least one must differ.
        assert!(others.iter().any(|f| *f != base) || base == ChannelFault::Deliver);
    }

    #[test]
    fn stall_rate_roughly_matches_probability() {
        let p = ChaosPlan::seeded(9, 0.8, 1000); // stall_p = 0.2
        let hits = (0..1000).filter(|&s| p.stalls(s, 3)).count();
        assert!((100..320).contains(&hits), "got {hits} stalls for p=0.2");
    }
}
