//! In-process message-passing runtime: the cluster substitute.
//!
//! The paper evaluates on a 32-node MPI cluster; its runtime analysis is
//! written in the LogP model (§IV.C). This crate reproduces that substrate
//! in-process:
//!
//! * [`Cluster`] — P logical ranks, each owning private state, advanced in
//!   BSP supersteps. Rank computation runs concurrently (rayon) or
//!   sequentially (bit-deterministic, used by tests); messages are routed
//!   between supersteps.
//! * [`LogPModel`] — latency/overhead/gap/bandwidth parameters that price
//!   every message, so each run yields a *simulated communication time*
//!   alongside real wall-clock time.
//! * [`schedule`] — the communication schedules the paper uses: a
//!   serialized personalized all-to-all ("only one message traverses the
//!   network at any given time", §IV.C) plus a pairwise tournament
//!   alternative, and the binomial broadcast tree behind the vertex-addition
//!   row broadcasts (Fig. 3, line 22).
//!
//! Correctness of the algorithms above never depends on the cost model —
//! it only prices traffic; message *routing* is exact.
//!
//! Every superstep, exchange and collective is also recorded as a typed
//! span into an installed [`EventSink`] (S24; `aaa-observe`). The default
//! sink is disarmed and costs one predictable branch per site.

pub mod chaos;
pub mod cluster;
pub mod logp;
pub mod net;
pub mod schedule;
pub mod spmd;
pub mod stats;

pub use aaa_observe::{EventSink, MemorySink, NoopSink, SpanEvent, SpanKind, DRIVER_LANE};
pub use chaos::{ChannelFault, ChaosPlan};
pub use cluster::{Cluster, ClusterConfig, ClusterError, ExecutionMode, FaultPlan};
pub use logp::LogPModel;
pub use net::{
    decode_frame, encode_frame, mix64, read_hello, unit_f64, Backoff, Frame, FrameError, FrameKind,
    HeartbeatConfig, Hello, LocalTransport, NetChaos, NetError, NetFault, SocketTransport,
    Transport,
};
pub use schedule::ExchangeSchedule;
pub use stats::{FaultCounters, RunStats};

/// Rank index within a cluster.
pub type Rank = usize;
