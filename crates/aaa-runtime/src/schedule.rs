//! Communication schedules.
//!
//! The paper's recombination phase uses "a personalized all-to-all
//! communication schedule that ensures only one message traverses the
//! network at any given time" (§IV.C). That serialized schedule is
//! [`ExchangeSchedule::Sequential`]. [`ExchangeSchedule::Pairwise`] is the
//! classic tournament (circle-method) schedule in which every round is a
//! perfect matching — an ablation target, since it trades the paper's
//! flood-avoidance for parallel rounds.

use crate::logp::LogPModel;
use crate::Rank;

/// How a personalized all-to-all is priced/ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeSchedule {
    /// One message on the wire at a time (the paper's schedule):
    /// total cost = Σ over messages of the full message cost.
    #[default]
    Sequential,
    /// Tournament rounds: cost = Σ over rounds of the max pair cost.
    Pairwise,
}

/// The tournament (circle method) round structure for `p` ranks: a list of
/// rounds, each a set of disjoint pairs. Every unordered pair appears in
/// exactly one round. For odd `p` a bye is inserted internally.
pub fn tournament_rounds(p: usize) -> Vec<Vec<(Rank, Rank)>> {
    if p < 2 {
        return Vec::new();
    }
    // Work with an even number of slots; `p` odd gets a phantom slot.
    let slots = if p % 2 == 0 { p } else { p + 1 };
    let phantom = slots - 1;
    let mut ring: Vec<usize> = (0..slots).collect();
    let mut rounds = Vec::with_capacity(slots - 1);
    for _ in 0..slots - 1 {
        let mut pairs = Vec::with_capacity(slots / 2);
        for i in 0..slots / 2 {
            let (a, b) = (ring[i], ring[slots - 1 - i]);
            if p % 2 == 1 && (a == phantom || b == phantom) {
                continue; // bye
            }
            pairs.push((a.min(b), a.max(b)));
        }
        rounds.push(pairs);
        // Rotate all but the first element.
        ring[1..].rotate_right(1);
    }
    rounds
}

/// Simulated time for a personalized all-to-all where `bytes[i][j]` is the
/// payload rank `i` sends to rank `j` (0 = no message).
pub fn all_to_all_cost_us(
    schedule: ExchangeSchedule,
    model: &LogPModel,
    bytes: &[Vec<usize>],
) -> f64 {
    let p = bytes.len();
    match schedule {
        ExchangeSchedule::Sequential => {
            let mut total = 0.0;
            let mut sent = 0usize;
            for row in bytes {
                for &b in row {
                    if b > 0 {
                        total += model.message_cost_us(b);
                        sent += 1;
                    }
                }
            }
            // Consecutive injections are also separated by the gap.
            if sent > 1 {
                total += (sent as f64 - 1.0) * model.gap_us;
            }
            total
        }
        ExchangeSchedule::Pairwise => {
            let mut total = 0.0;
            for round in tournament_rounds(p) {
                let mut worst = 0.0f64;
                for (a, b) in round {
                    // Both directions exchanged within the round.
                    let cost =
                        model.message_cost_us(bytes[a][b]).max(model.message_cost_us(bytes[b][a]));
                    let cost = if bytes[a][b] == 0 && bytes[b][a] == 0 { 0.0 } else { cost };
                    worst = worst.max(cost);
                }
                total += worst;
            }
            total
        }
    }
}

/// Binomial broadcast tree rooted at `root`: returns `(parent, children)`
/// edges as a list of `(from, to)` in dependency order. Rank numbering is
/// relative (rank `r` maps to `(r + root) % p`).
pub fn broadcast_tree(p: usize, root: Rank) -> Vec<(Rank, Rank)> {
    let mut edges = Vec::new();
    let mut covered = 1usize;
    while covered < p {
        let wave = covered.min(p - covered);
        for i in 0..wave {
            let from = (i + root) % p;
            let to = (i + covered + root) % p;
            edges.push((from, to));
        }
        covered += wave;
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_tournament_valid(p: usize) {
        let rounds = tournament_rounds(p);
        let mut seen = std::collections::HashSet::new();
        for round in &rounds {
            let mut used = std::collections::HashSet::new();
            for &(a, b) in round {
                assert!(a < b && b < p, "pair ({a},{b}) invalid for p={p}");
                assert!(used.insert(a), "rank {a} twice in a round");
                assert!(used.insert(b), "rank {b} twice in a round");
                assert!(seen.insert((a, b)), "pair ({a},{b}) repeated");
            }
        }
        assert_eq!(seen.len(), p * (p - 1) / 2, "p={p}: not all pairs covered");
    }

    #[test]
    fn tournament_covers_all_pairs_even_and_odd() {
        for p in [2, 3, 4, 5, 8, 16, 17] {
            assert_tournament_valid(p);
        }
        assert!(tournament_rounds(1).is_empty());
        assert!(tournament_rounds(0).is_empty());
    }

    #[test]
    fn sequential_cost_sums_messages() {
        let m = LogPModel { latency_us: 10.0, overhead_us: 0.0, gap_us: 0.0, per_byte_us: 0.0 };
        // 3 ranks, two messages.
        let bytes = vec![vec![0, 5, 0], vec![0, 0, 7], vec![0, 0, 0]];
        let c = all_to_all_cost_us(ExchangeSchedule::Sequential, &m, &bytes);
        assert!((c - 20.0).abs() < 1e-9);
    }

    #[test]
    fn pairwise_cost_is_max_per_round() {
        let m = LogPModel { latency_us: 10.0, overhead_us: 0.0, gap_us: 0.0, per_byte_us: 0.0 };
        // 2 ranks: both directions in one round -> one 10 µs round.
        let bytes = vec![vec![0, 5], vec![7, 0]];
        let c = all_to_all_cost_us(ExchangeSchedule::Pairwise, &m, &bytes);
        assert!((c - 10.0).abs() < 1e-9);
        // Sequential pays twice.
        let c = all_to_all_cost_us(ExchangeSchedule::Sequential, &m, &bytes);
        assert!((c - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_traffic_is_free() {
        let m = LogPModel::ethernet_1g();
        let bytes = vec![vec![0; 4]; 4];
        for s in [ExchangeSchedule::Sequential, ExchangeSchedule::Pairwise] {
            assert_eq!(all_to_all_cost_us(s, &m, &bytes), 0.0);
        }
    }

    #[test]
    fn broadcast_tree_reaches_everyone_once() {
        for p in [1usize, 2, 3, 7, 8, 16] {
            for root in [0, p.saturating_sub(1)] {
                let edges = broadcast_tree(p, root);
                assert_eq!(edges.len(), p.saturating_sub(1), "p={p}");
                let mut reached = std::collections::HashSet::from([root]);
                for (from, to) in edges {
                    assert!(reached.contains(&from), "p={p}: {from} sends before receiving");
                    assert!(reached.insert(to), "p={p}: {to} reached twice");
                }
                assert_eq!(reached.len(), p.max(1));
            }
        }
    }
}
