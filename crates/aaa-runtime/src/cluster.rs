//! The BSP cluster: P ranks with private state, superstep execution,
//! message routing and cost accounting.

use crate::logp::LogPModel;
use crate::schedule::{all_to_all_cost_us, ExchangeSchedule};
use crate::stats::RunStats;
use crate::Rank;
use rayon::prelude::*;
use std::time::Instant;

/// How rank computation is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Ranks run one after another — bit-deterministic, used by tests.
    Sequential,
    /// Ranks run concurrently on the rayon pool (the production mode; this
    /// is where the real parallel speedup comes from).
    #[default]
    Parallel,
}

/// Cluster construction parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterConfig {
    pub model: LogPModel,
    pub schedule: ExchangeSchedule,
    pub mode: ExecutionMode,
}

/// A planned rank failure for fault-injection experiments: rank `rank`
/// dies when the cluster reaches superstep `superstep` (counted by
/// [`RunStats::supersteps`]). In BSP semantics the barrier aborts, so the
/// failure surfaces *before* the doomed superstep applies any state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The rank that dies.
    pub rank: Rank,
    /// The superstep at whose barrier the failure fires.
    pub superstep: u64,
}

impl FaultPlan {
    /// A fault at an explicit (rank, superstep) coordinate.
    pub fn at(rank: Rank, superstep: u64) -> Self {
        Self { rank, superstep }
    }

    /// A seeded fault: rank and superstep drawn deterministically from
    /// `seed`, with the rank in `0..p` and the superstep in
    /// `1..=max_superstep`. The same seed always kills the same rank at
    /// the same barrier, so failure experiments are reproducible.
    pub fn seeded(seed: u64, p: usize, max_superstep: u64) -> Self {
        // SplitMix64: two independent draws from one seed.
        let mut x = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut next = move || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let rank = (next() % p.max(1) as u64) as Rank;
        let superstep = 1 + next() % max_superstep.max(1);
        Self { rank, superstep }
    }
}

/// Typed cluster failures surfaced to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// A rank died at a superstep barrier; its private state is lost.
    RankFailed { rank: Rank, superstep: u64 },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::RankFailed { rank, superstep } => {
                write!(f, "rank {rank} failed at superstep {superstep}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// A fixed set of `P` ranks advanced in BSP supersteps.
///
/// All mutation of rank state flows through [`Cluster::step`],
/// [`Cluster::exchange`], [`Cluster::broadcast`] or [`Cluster::allreduce_or`],
/// which measure compute time and price traffic with the LogP model.
#[derive(Debug)]
pub struct Cluster<S> {
    states: Vec<S>,
    config: ClusterConfig,
    stats: RunStats,
    fault: Option<FaultPlan>,
}

impl<S: Send> Cluster<S> {
    /// Creates a cluster owning one state per rank.
    pub fn new(states: Vec<S>, config: ClusterConfig) -> Self {
        assert!(!states.is_empty(), "cluster needs at least one rank");
        Self { states, config, stats: RunStats::default(), fault: None }
    }

    /// Number of ranks.
    #[inline]
    pub fn p(&self) -> usize {
        self.states.len()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Read-only access to rank states.
    pub fn ranks(&self) -> &[S] {
        &self.states
    }

    /// Accumulated statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Consumes the cluster, returning states and statistics.
    pub fn into_parts(self) -> (Vec<S>, RunStats) {
        (self.states, self.stats)
    }

    /// Mutable access to rank states, for checkpoint recovery only: the
    /// driver swaps a failed rank's rebuilt state in directly. Work done
    /// through this handle bypasses superstep timing and traffic pricing —
    /// use [`Cluster::step`] for anything that models cluster computation.
    pub fn ranks_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// Arms a fault plan; the failure fires at the plan's superstep
    /// barrier via [`Cluster::poll_fault`]. Replaces any armed plan.
    pub fn inject_fault(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// The currently armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault
    }

    /// Checks the armed fault plan against the superstep counter. Once the
    /// cluster has reached the planned barrier, the plan is consumed and
    /// [`ClusterError::RankFailed`] is returned; the caller must treat the
    /// failed rank's state as lost *before* running the next superstep.
    /// Called by the engine at every RC-step barrier.
    pub fn poll_fault(&mut self) -> Result<(), ClusterError> {
        if let Some(plan) = self.fault {
            if self.stats.supersteps >= plan.superstep {
                self.fault = None;
                return Err(ClusterError::RankFailed {
                    rank: plan.rank,
                    superstep: plan.superstep,
                });
            }
        }
        Ok(())
    }

    /// Counts a checkpoint in the run statistics.
    pub fn record_checkpoint(&mut self) {
        self.stats.checkpoints += 1;
    }

    /// Counts a restore in the run statistics.
    pub fn record_restore(&mut self) {
        self.stats.restores += 1;
    }

    /// Replaces the statistics wholesale — used when a cluster is rebuilt
    /// from a checkpoint, so accounting resumes from the snapshot's
    /// counters instead of zero (and the discarded post-checkpoint work is
    /// *not* double-counted when the phase is retried).
    pub fn restore_stats(&mut self, stats: RunStats) {
        self.stats = stats;
    }

    /// Charges driver-side compute to the simulated clock. Used for work
    /// that conceptually runs on the cluster but is executed once at the
    /// orchestrator (e.g. the repartitioning algorithm, which in the
    /// paper's setup runs as parallel ParMETIS on the same machines).
    pub fn charge_compute_us(&mut self, us: f64) {
        self.stats.sim_compute_us += us;
    }

    fn record_compute(&mut self, per_rank_us: &[f64], wall: std::time::Duration) {
        let max = per_rank_us.iter().copied().fold(0.0f64, f64::max);
        self.stats.sim_compute_us += max;
        self.stats.supersteps += 1;
        self.stats.wall += wall;
    }

    /// Runs `f` on every rank (a compute-only superstep); returns the
    /// per-rank results in rank order.
    pub fn step<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Rank, &mut S) -> R + Sync,
    {
        let started = Instant::now();
        let timed = |(rank, state): (usize, &mut S)| {
            let t = Instant::now();
            let out = f(rank, state);
            (t.elapsed().as_secs_f64() * 1e6, out)
        };
        let results: Vec<(f64, R)> = match self.config.mode {
            ExecutionMode::Sequential => self.states.iter_mut().enumerate().map(timed).collect(),
            ExecutionMode::Parallel => self.states.par_iter_mut().enumerate().map(timed).collect(),
        };
        let wall = started.elapsed();
        let (times, outs): (Vec<f64>, Vec<R>) = results.into_iter().unzip();
        self.record_compute(&times, wall);
        outs
    }

    /// A full exchange superstep:
    ///
    /// 1. every rank *produces* addressed messages,
    /// 2. traffic is priced under the configured all-to-all schedule,
    /// 3. messages are delivered (in sender order — deterministic),
    /// 4. every rank *consumes* its inbox.
    ///
    /// Self-addressed messages are delivered locally and cost nothing.
    ///
    /// # Panics
    /// If a message is addressed to a rank `>= P`.
    pub fn exchange<M, FP, FS, FC>(&mut self, produce: FP, size_of: FS, consume: FC)
    where
        M: Send,
        FP: Fn(Rank, &mut S) -> Vec<(Rank, M)> + Sync,
        FS: Fn(&M) -> usize + Sync,
        FC: Fn(Rank, &mut S, Vec<(Rank, M)>) + Sync,
    {
        let p = self.p();
        // Phase 1: produce (compute superstep).
        let outboxes: Vec<Vec<(Rank, M)>> = self.step(produce);

        // Phase 2: price and route.
        let mut bytes = vec![vec![0usize; p]; p];
        let mut inboxes: Vec<Vec<(Rank, M)>> = (0..p).map(|_| Vec::new()).collect();
        for (src, outbox) in outboxes.into_iter().enumerate() {
            for (dst, msg) in outbox {
                assert!(dst < p, "rank {src} addressed message to nonexistent rank {dst}");
                if dst != src {
                    let sz = size_of(&msg);
                    bytes[src][dst] += sz;
                    self.stats.messages += 1;
                    self.stats.bytes += sz as u64;
                }
                inboxes[dst].push((src, msg));
            }
        }
        self.stats.sim_comm_us +=
            all_to_all_cost_us(self.config.schedule, &self.config.model, &bytes);

        // Phase 3: consume (compute superstep).
        let started = Instant::now();
        let timed = |((rank, state), inbox): ((usize, &mut S), Vec<(Rank, M)>)| {
            let t = Instant::now();
            consume(rank, state, inbox);
            t.elapsed().as_secs_f64() * 1e6
        };
        let times: Vec<f64> = match self.config.mode {
            ExecutionMode::Sequential => {
                self.states.iter_mut().enumerate().zip(inboxes).map(timed).collect()
            }
            ExecutionMode::Parallel => {
                self.states.par_iter_mut().enumerate().zip(inboxes).map(timed).collect()
            }
        };
        let wall = started.elapsed();
        self.record_compute(&times, wall);
    }

    /// Broadcast from `root`: `produce` builds the payload on the root rank,
    /// then every rank (including the root) consumes a reference to it.
    /// Priced as a binomial tree of `size` bytes.
    pub fn broadcast<M, FP, FC>(
        &mut self,
        root: Rank,
        produce: FP,
        size_of: impl Fn(&M) -> usize,
        consume: FC,
    ) where
        M: Sync + Send,
        FP: FnOnce(&mut S) -> M,
        FC: Fn(Rank, &mut S, &M) + Sync,
    {
        assert!(root < self.p(), "broadcast root {root} out of range");
        let payload = produce(&mut self.states[root]);
        let sz = size_of(&payload);
        let p = self.p();
        self.stats.sim_comm_us += self.config.model.broadcast_cost_us(p, sz);
        self.stats.messages += (p - 1) as u64;
        self.stats.bytes += (sz * (p - 1)) as u64;
        self.stats.collectives += 1;
        let payload_ref = &payload;
        self.step(move |rank, state| consume(rank, state, payload_ref));
    }

    /// OR-reduction over a per-rank predicate, priced as an all-reduce tree
    /// (up + down: `2·ceil(log2 P)` one-byte messages).
    pub fn allreduce_or<F>(&mut self, f: F) -> bool
    where
        F: Fn(Rank, &S) -> bool + Sync,
    {
        let p = self.p();
        let result = self.states.iter().enumerate().any(|(r, s)| f(r, s));
        self.stats.sim_comm_us += 2.0 * self.config.model.broadcast_cost_us(p, 1);
        self.stats.collectives += 1;
        result
    }

    /// MAX-reduction over per-rank `u64` values, same pricing as
    /// [`Cluster::allreduce_or`].
    pub fn allreduce_max<F>(&mut self, f: F) -> u64
    where
        F: Fn(Rank, &S) -> u64 + Sync,
    {
        let p = self.p();
        let result = self.states.iter().enumerate().map(|(r, s)| f(r, s)).max().unwrap_or(0);
        self.stats.sim_comm_us += 2.0 * self.config.model.broadcast_cost_us(p, 8);
        self.stats.collectives += 1;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(mode: ExecutionMode) -> ClusterConfig {
        ClusterConfig {
            model: LogPModel::ethernet_1g(),
            schedule: ExchangeSchedule::Sequential,
            mode,
        }
    }

    #[test]
    fn step_runs_on_every_rank() {
        let mut c = Cluster::new(vec![0u64; 4], config(ExecutionMode::Sequential));
        let out = c.step(|rank, s| {
            *s = rank as u64 * 10;
            rank
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(c.ranks(), &[0, 10, 20, 30]);
        assert_eq!(c.stats().supersteps, 1);
    }

    #[test]
    fn exchange_routes_messages_in_sender_order() {
        for mode in [ExecutionMode::Sequential, ExecutionMode::Parallel] {
            let mut c = Cluster::new(vec![Vec::<(usize, u32)>::new(); 3], config(mode));
            // Every rank sends its id×100 to every other rank.
            c.exchange(
                |rank, _| (0..3).filter(|&d| d != rank).map(|d| (d, (rank * 100) as u32)).collect(),
                |_| 4,
                |_, inbox_store, inbox| {
                    *inbox_store = inbox;
                },
            );
            // Each inbox has two messages, ordered by sender.
            for (rank, inbox) in c.ranks().iter().enumerate() {
                let expected: Vec<(usize, u32)> =
                    (0..3).filter(|&s| s != rank).map(|s| (s, (s * 100) as u32)).collect();
                assert_eq!(inbox, &expected, "mode {mode:?} rank {rank}");
            }
            assert_eq!(c.stats().messages, 6);
            assert_eq!(c.stats().bytes, 24);
            assert!(c.stats().sim_comm_us > 0.0);
        }
    }

    #[test]
    fn self_messages_are_free() {
        let mut c = Cluster::new(vec![0u32; 2], config(ExecutionMode::Sequential));
        c.exchange(|rank, _| vec![(rank, 7u32)], |_| 1000, |_, s, inbox| *s = inbox[0].1);
        assert_eq!(c.ranks(), &[7, 7]);
        assert_eq!(c.stats().messages, 0);
        assert_eq!(c.stats().sim_comm_us, 0.0);
    }

    #[test]
    #[should_panic(expected = "nonexistent rank")]
    fn exchange_panics_on_bad_destination() {
        let mut c = Cluster::new(vec![(); 2], config(ExecutionMode::Sequential));
        c.exchange(|_, _| vec![(9usize, 0u8)], |_| 1, |_, _, _| {});
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let mut c = Cluster::new(vec![0u32; 5], config(ExecutionMode::Parallel));
        c.broadcast(2, |_| 42u32, |_| 4, |_, s, &m| *s = m);
        assert_eq!(c.ranks(), &[42; 5]);
        assert_eq!(c.stats().messages, 4);
        assert_eq!(c.stats().collectives, 1);
        assert!(c.stats().sim_comm_us > 0.0);
    }

    #[test]
    fn allreduce_or_and_max() {
        let mut c = Cluster::new(vec![0u64, 5, 3], config(ExecutionMode::Sequential));
        assert!(!c.allreduce_or(|_, &s| s > 10));
        assert!(c.allreduce_or(|_, &s| s > 4));
        assert_eq!(c.allreduce_max(|_, &s| s), 5);
        assert_eq!(c.stats().collectives, 3);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let run = |mode| {
            let mut c = Cluster::new(vec![0u64; 8], config(mode));
            for round in 0..3u64 {
                c.exchange(
                    |rank, s| vec![((rank + 1) % 8, *s + rank as u64 + round)],
                    |_| 8,
                    |_, s, inbox| *s += inbox.iter().map(|&(_, m)| m).sum::<u64>(),
                );
            }
            let (states, stats) = c.into_parts();
            (states, stats.messages, stats.bytes)
        };
        assert_eq!(run(ExecutionMode::Sequential), run(ExecutionMode::Parallel));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_cluster_rejected() {
        let _ = Cluster::<u8>::new(vec![], config(ExecutionMode::Sequential));
    }

    #[test]
    fn fault_fires_once_at_planned_barrier() {
        let mut c = Cluster::new(vec![0u8; 3], config(ExecutionMode::Sequential));
        c.inject_fault(FaultPlan::at(1, 2));
        assert!(c.poll_fault().is_ok()); // superstep 0: not yet
        c.step(|_, _| ());
        assert!(c.poll_fault().is_ok()); // superstep 1: not yet
        c.step(|_, _| ());
        assert_eq!(c.poll_fault(), Err(ClusterError::RankFailed { rank: 1, superstep: 2 }));
        // Consumed: polling again is clean.
        assert!(c.poll_fault().is_ok());
        assert_eq!(c.fault_plan(), None);
    }

    #[test]
    fn seeded_fault_is_deterministic_and_in_range() {
        let a = FaultPlan::seeded(7, 4, 10);
        let b = FaultPlan::seeded(7, 4, 10);
        assert_eq!(a, b);
        assert!(a.rank < 4);
        assert!(a.superstep >= 1 && a.superstep <= 10);
        // Different seeds explore different coordinates eventually.
        assert!((0..64).any(|s| FaultPlan::seeded(s, 4, 10) != a));
    }

    #[test]
    fn checkpoint_restore_counters_and_stats_restore() {
        let mut c = Cluster::new(vec![(); 2], config(ExecutionMode::Sequential));
        c.step(|_, _| ());
        c.record_checkpoint();
        let snap = *c.stats();
        c.step(|_, _| ());
        c.restore_stats(snap);
        c.record_restore();
        assert_eq!(c.stats().supersteps, 1); // post-checkpoint step discarded
        assert_eq!(c.stats().checkpoints, 1);
        assert_eq!(c.stats().restores, 1);
    }
}
