//! The BSP cluster: P ranks with private state, superstep execution,
//! message routing and cost accounting.

use crate::chaos::{ChannelFault, ChaosPlan};
use crate::logp::LogPModel;
use crate::schedule::{all_to_all_cost_us, ExchangeSchedule};
use crate::stats::RunStats;
use crate::Rank;
use aaa_observe::{EventSink, NoopSink, SpanEvent, SpanKind, DRIVER_LANE};
use rayon::prelude::*;
use std::any::Any;
use std::sync::Arc;
use std::time::Instant;

/// How rank computation is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Ranks run one after another — bit-deterministic, used by tests.
    Sequential,
    /// Ranks run concurrently on the rayon pool (the production mode; this
    /// is where the real parallel speedup comes from).
    #[default]
    Parallel,
}

/// Cluster construction parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterConfig {
    pub model: LogPModel,
    pub schedule: ExchangeSchedule,
    pub mode: ExecutionMode,
}

/// A planned rank failure for fault-injection experiments: rank `rank`
/// dies when the cluster reaches superstep `superstep` (counted by
/// [`RunStats::supersteps`]). In BSP semantics the barrier aborts, so the
/// failure surfaces *before* the doomed superstep applies any state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The rank that dies.
    pub rank: Rank,
    /// The superstep at whose barrier the failure fires.
    pub superstep: u64,
}

impl FaultPlan {
    /// A fault at an explicit (rank, superstep) coordinate.
    pub fn at(rank: Rank, superstep: u64) -> Self {
        Self { rank, superstep }
    }

    /// A seeded fault: rank and superstep drawn deterministically from
    /// `seed`, with the rank in `0..p` and the superstep in
    /// `1..=max_superstep`. The same seed always kills the same rank at
    /// the same barrier, so failure experiments are reproducible.
    ///
    /// Degenerate inputs (`p == 0` or `max_superstep == 0`) leave no valid
    /// coordinate to sample; they yield [`FaultPlan::inert`] rather than a
    /// plan that fires at a made-up coordinate (or a panic on the empty
    /// sampling range).
    pub fn seeded(seed: u64, p: usize, max_superstep: u64) -> Self {
        if p == 0 || max_superstep == 0 {
            return Self::inert();
        }
        // SplitMix64: two independent draws from one seed.
        let mut x = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut next = move || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let rank = (next() % p as u64) as Rank;
        let superstep = 1 + next() % max_superstep;
        Self { rank, superstep }
    }

    /// A plan that never fires (its barrier is unreachable).
    pub const fn inert() -> Self {
        Self { rank: 0, superstep: u64::MAX }
    }

    /// True if this plan can never fire.
    pub fn is_inert(&self) -> bool {
        self.superstep == u64::MAX
    }
}

/// Typed cluster failures surfaced to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// A rank died at a superstep barrier; its private state is lost.
    RankFailed { rank: Rank, superstep: u64 },
    /// A message failed the receiver's checksum and was discarded; the
    /// payload from `src` never reached `dst`.
    MessageCorrupted { src: Rank, dst: Rank, superstep: u64 },
    /// A rank missed its superstep deadline without dying: its outbox is
    /// held at the sender and flushed one superstep late.
    RankStalled { rank: Rank, superstep: u64 },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::RankFailed { rank, superstep } => {
                write!(f, "rank {rank} failed at superstep {superstep}")
            }
            ClusterError::MessageCorrupted { src, dst, superstep } => {
                write!(f, "message {src}→{dst} corrupted at superstep {superstep}")
            }
            ClusterError::RankStalled { rank, superstep } => {
                write!(f, "rank {rank} stalled at superstep {superstep}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// A message parked in the delay queue: either a [`ChannelFault::Delay`]
/// victim or a stalled rank's outbox, delivered at the first exchange of
/// the matching payload type at or after superstep `due`. The payload is
/// type-erased because `exchange` is generic per call.
struct DelayedMsg {
    due: u64,
    src: Rank,
    dst: Rank,
    payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for DelayedMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayedMsg")
            .field("due", &self.due)
            .field("src", &self.src)
            .field("dst", &self.dst)
            .finish_non_exhaustive()
    }
}

/// A fixed set of `P` ranks advanced in BSP supersteps.
///
/// All mutation of rank state flows through [`Cluster::step`],
/// [`Cluster::exchange`], [`Cluster::broadcast`] or [`Cluster::allreduce_or`],
/// which measure compute time and price traffic with the LogP model.
#[derive(Debug)]
pub struct Cluster<S> {
    states: Vec<S>,
    config: ClusterConfig,
    stats: RunStats,
    fault: Option<FaultPlan>,
    chaos: Option<ChaosPlan>,
    delayed: Vec<DelayedMsg>,
    pending_chaos: Vec<ClusterError>,
    /// Span destination. Defaults to [`NoopSink`]; `sink_armed` caches
    /// `sink.enabled()` so the disarmed hot path pays exactly one
    /// predictable branch per instrumentation site and never builds an
    /// event.
    sink: Arc<dyn EventSink>,
    sink_armed: bool,
    /// Wall epoch for `wall_start_us` stamps on recorded spans.
    epoch: Instant,
    /// Cumulative measured busy time per rank (µs) across compute
    /// supersteps — the load-skew signal the adaptive rebalancer can opt
    /// into. Measured wall time: informational, never gate-priced.
    rank_busy_us: Vec<f64>,
}

impl<S: Send> Cluster<S> {
    /// Creates a cluster owning one state per rank.
    pub fn new(states: Vec<S>, config: ClusterConfig) -> Self {
        assert!(!states.is_empty(), "cluster needs at least one rank");
        let p = states.len();
        Self {
            states,
            rank_busy_us: vec![0.0; p],
            config,
            stats: RunStats::default(),
            fault: None,
            chaos: None,
            delayed: Vec::new(),
            pending_chaos: Vec::new(),
            sink: Arc::new(NoopSink),
            sink_armed: false,
            epoch: Instant::now(),
        }
    }

    /// Number of ranks.
    #[inline]
    pub fn p(&self) -> usize {
        self.states.len()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Read-only access to rank states.
    pub fn ranks(&self) -> &[S] {
        &self.states
    }

    /// Runs a read-only closure over every rank state at a barrier and
    /// collects the results in rank order. This is *driver-side* work: it
    /// models the orchestrator inspecting rank memory it already co-hosts
    /// (the same access [`Cluster::ranks`] gives), so — like snapshotting —
    /// it charges **no** supersteps, messages, or simulated time. Use
    /// [`Cluster::step`] instead for anything that represents real cluster
    /// computation or traffic; this hook exists for the publish layer,
    /// which must never perturb the priced metrics the perf gate pins.
    pub fn barrier_read<T>(&self, mut f: impl FnMut(usize, &S) -> T) -> Vec<T> {
        self.states.iter().enumerate().map(|(r, s)| f(r, s)).collect()
    }

    /// Mutable sibling of [`Cluster::barrier_read`], for driver-side
    /// bookkeeping that must drain per-rank tracking state (the publisher
    /// consuming each rank's epoch-dirty set). Identical pricing rules:
    /// **no** supersteps, messages, or simulated time are charged — never
    /// use this for anything that models real cluster computation.
    pub fn barrier_read_mut<T>(&mut self, mut f: impl FnMut(usize, &mut S) -> T) -> Vec<T> {
        self.states.iter_mut().enumerate().map(|(r, s)| f(r, s)).collect()
    }

    /// Accumulated statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Consumes the cluster, returning states and statistics.
    pub fn into_parts(self) -> (Vec<S>, RunStats) {
        (self.states, self.stats)
    }

    /// Mutable access to rank states, for checkpoint recovery only: the
    /// driver swaps a failed rank's rebuilt state in directly. Work done
    /// through this handle bypasses superstep timing and traffic pricing —
    /// use [`Cluster::step`] for anything that models cluster computation.
    pub fn ranks_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// Arms a fault plan; the failure fires at the plan's superstep
    /// barrier via [`Cluster::poll_fault`]. Replaces any armed plan.
    pub fn inject_fault(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// The currently armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault
    }

    /// Checks the armed fault plan against the superstep counter. Once the
    /// cluster has reached the planned barrier, the plan is consumed and
    /// [`ClusterError::RankFailed`] is returned; the caller must treat the
    /// failed rank's state as lost *before* running the next superstep.
    /// Called by the engine at every RC-step barrier.
    pub fn poll_fault(&mut self) -> Result<(), ClusterError> {
        if let Some(plan) = self.fault {
            if !plan.is_inert() && self.stats.supersteps >= plan.superstep {
                self.fault = None;
                return Err(ClusterError::RankFailed {
                    rank: plan.rank,
                    superstep: plan.superstep,
                });
            }
        }
        Ok(())
    }

    /// Installs a chaos plan for all subsequent exchanges and broadcasts.
    /// An inert plan ([`ChaosPlan::none`] or equivalent) uninstalls chaos
    /// entirely, so the disabled path stays zero-cost.
    pub fn set_chaos(&mut self, plan: ChaosPlan) {
        self.chaos = if plan.is_none() { None } else { Some(plan) };
    }

    /// The installed chaos plan, if any.
    pub fn chaos_plan(&self) -> Option<ChaosPlan> {
        self.chaos
    }

    /// Whether faults may still fire at the *current* superstep (a plan is
    /// installed and the chaos horizon has not passed).
    pub fn chaos_active(&self) -> bool {
        self.chaos.is_some_and(|c| c.active_at(self.stats.supersteps))
    }

    /// True while the delay queue holds messages that have not been
    /// delivered yet. A quiescent-looking cluster with undelivered traffic
    /// is *not* done — the supervised loop keeps stepping until this
    /// drains.
    pub fn has_undelivered(&self) -> bool {
        !self.delayed.is_empty()
    }

    /// Surfaces chaos incidents detected at the last barrier (corruptions,
    /// stalls). At most one incident is returned per poll and the rest of
    /// the batch is cleared — the supervised loop reacts once per barrier;
    /// [`RunStats::faults`] keeps the exact totals.
    pub fn poll_chaos(&mut self) -> Result<(), ClusterError> {
        match self.pending_chaos.first().copied() {
            None => Ok(()),
            Some(incident) => {
                self.pending_chaos.clear();
                Err(incident)
            }
        }
    }

    /// Counts rows re-announced by a supervised retry / verification pass.
    pub fn record_retransmits(&mut self, rows: u64) {
        self.stats.faults.retransmits += rows;
    }

    /// Counts one row-migration event (a budgeted rebalance move set or a
    /// full repartition): `rows` DV rows changed owner, `bytes` of
    /// migration traffic (assignment broadcast + row payloads) rode the
    /// priced exchange path. The bytes are already in
    /// [`RunStats::bytes`]; this records the migration-only split so the
    /// perf gate sees migration traffic explicitly.
    pub fn record_migration(&mut self, rows: u64, bytes: u64) {
        self.stats.migrations += 1;
        self.stats.migrated_rows += rows;
        self.stats.migration_bytes += bytes;
    }

    /// Cumulative measured busy time per rank (µs) across compute
    /// supersteps. Wall-derived and therefore nondeterministic — use only
    /// for skew *observation*, never for anything perf-gated by default.
    pub fn rank_busy_us(&self) -> &[f64] {
        &self.rank_busy_us
    }

    /// Charges simulated communication time directly — the supervised loop
    /// uses this for retry backoff and stall-detection deadlines, which are
    /// real elapsed network time in the modelled cluster.
    pub fn charge_comm_us(&mut self, us: f64) {
        self.stats.sim_comm_us += us;
    }

    /// Counts a checkpoint in the run statistics.
    pub fn record_checkpoint(&mut self) {
        self.stats.checkpoints += 1;
    }

    /// Counts a restore in the run statistics.
    pub fn record_restore(&mut self) {
        self.stats.restores += 1;
    }

    /// Replaces the statistics wholesale — used when a cluster is rebuilt
    /// from a checkpoint, so accounting resumes from the snapshot's
    /// counters instead of zero (and the discarded post-checkpoint work is
    /// *not* double-counted when the phase is retried).
    pub fn restore_stats(&mut self, stats: RunStats) {
        self.stats = stats;
    }

    /// Charges driver-side compute to the simulated clock. Used for work
    /// that conceptually runs on the cluster but is executed once at the
    /// orchestrator (e.g. the repartitioning algorithm, which in the
    /// paper's setup runs as parallel ParMETIS on the same machines).
    pub fn charge_compute_us(&mut self, us: f64) {
        self.stats.sim_compute_us += us;
    }

    /// Installs an event sink. The sink's [`EventSink::enabled`] is probed
    /// once here and cached; installing a disabled sink (e.g. [`NoopSink`])
    /// disarms recording entirely.
    pub fn set_sink(&mut self, sink: Arc<dyn EventSink>) {
        self.sink_armed = sink.enabled();
        self.sink = sink;
    }

    /// A handle to the installed sink (for re-arming a rebuilt cluster
    /// after a checkpoint restore).
    pub fn sink(&self) -> Arc<dyn EventSink> {
        Arc::clone(&self.sink)
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn observing(&self) -> bool {
        self.sink_armed
    }

    /// Position on the simulated clock (µs): where the next span starts.
    #[inline]
    pub fn sim_now_us(&self) -> f64 {
        self.stats.sim_total_us()
    }

    /// Position on the wall clock (µs since this cluster's epoch).
    #[inline]
    pub fn wall_now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Records a span if a live sink is installed. Callers at higher
    /// layers (the engine) use this together with [`Cluster::sim_now_us`] /
    /// [`Cluster::wall_now_us`] to place their own spans; guard event
    /// construction behind [`Cluster::observing`] to keep disarmed runs
    /// free.
    #[inline]
    pub fn emit(&self, event: SpanEvent) {
        if self.sink_armed {
            self.sink.record(event);
        }
    }

    fn record_compute(&mut self, per_rank_us: &[f64], started: Instant, wall: std::time::Duration) {
        if self.sink_armed {
            // One Superstep span per rank, all opening at the barrier: the
            // simulated superstep starts every rank together, and each
            // rank's slice lasts its measured time (the laggard's span is
            // the one that advances the simulated clock below).
            let sim_start = self.stats.sim_total_us();
            let wall_start = started.duration_since(self.epoch).as_secs_f64() * 1e6;
            let superstep = self.stats.supersteps;
            for (rank, &us) in per_rank_us.iter().enumerate() {
                self.sink.record(SpanEvent {
                    kind: SpanKind::Superstep,
                    rank: rank as i64,
                    superstep,
                    sim_start_us: sim_start,
                    sim_dur_us: us,
                    wall_start_us: wall_start,
                    wall_dur_us: us,
                    messages: 0,
                    bytes: 0,
                });
            }
        }
        let max = per_rank_us.iter().copied().fold(0.0f64, f64::max);
        for (acc, &us) in self.rank_busy_us.iter_mut().zip(per_rank_us) {
            *acc += us;
        }
        self.stats.sim_compute_us += max;
        self.stats.supersteps += 1;
        self.stats.wall += wall;
    }

    /// Runs `f` on every rank (a compute-only superstep); returns the
    /// per-rank results in rank order.
    pub fn step<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Rank, &mut S) -> R + Sync,
    {
        let started = Instant::now();
        let timed = |(rank, state): (usize, &mut S)| {
            let t = Instant::now();
            let out = f(rank, state);
            (t.elapsed().as_secs_f64() * 1e6, out)
        };
        let results: Vec<(f64, R)> = match self.config.mode {
            ExecutionMode::Sequential => self.states.iter_mut().enumerate().map(timed).collect(),
            ExecutionMode::Parallel => self.states.par_iter_mut().enumerate().map(timed).collect(),
        };
        let wall = started.elapsed();
        let (times, outs): (Vec<f64>, Vec<R>) = results.into_iter().unzip();
        self.record_compute(&times, started, wall);
        outs
    }

    /// A full exchange superstep:
    ///
    /// 1. every rank *produces* addressed messages,
    /// 2. traffic is priced under the configured all-to-all schedule,
    /// 3. messages are delivered (in sender order — deterministic),
    /// 4. every rank *consumes* its inbox.
    ///
    /// Self-addressed messages are delivered locally and cost nothing.
    ///
    /// With a [`ChaosPlan`] installed, every cross-rank message is routed
    /// through its [`ChannelFault`] fate (drop / duplicate / delay /
    /// corrupt), whole outboxes are held when their rank stalls, and due
    /// delayed messages from earlier supersteps are appended to the
    /// inboxes. Fates are drawn in this driver-side routing phase — which
    /// is sequential under both execution modes — so a seeded plan is
    /// exactly reproducible. Without a plan (and with an empty delay
    /// queue) routing takes the original fast path: no per-message chaos
    /// branch exists on it.
    ///
    /// # Panics
    /// If a message is addressed to a rank `>= P`.
    pub fn exchange<M, FP, FS, FC>(&mut self, produce: FP, size_of: FS, consume: FC)
    where
        M: Clone + Send + 'static,
        FP: Fn(Rank, &mut S) -> Vec<(Rank, M)> + Sync,
        FS: Fn(&M) -> usize + Sync,
        FC: Fn(Rank, &mut S, Vec<(Rank, M)>) + Sync,
    {
        let p = self.p();
        // The chaos coordinate of this exchange: the superstep count as
        // its barrier opens (captured before the produce step bumps it).
        let superstep = self.stats.supersteps;
        // Phase 1: produce (compute superstep).
        let outboxes: Vec<Vec<(Rank, M)>> = self.step(produce);

        // Phase 2: price and route.
        let (msg0, bytes0, comm0, sim_route_start, wall_route_start) = if self.sink_armed {
            (
                self.stats.messages,
                self.stats.bytes,
                self.stats.sim_comm_us,
                self.stats.sim_total_us(),
                self.wall_now_us(),
            )
        } else {
            (0, 0, 0.0, 0.0, 0.0)
        };
        let mut bytes = vec![vec![0usize; p]; p];
        let mut inboxes: Vec<Vec<(Rank, M)>> = if self.chaos.is_none() && self.delayed.is_empty() {
            // Pre-size each inbox from a counting pass so the routing loop
            // below never reallocates mid-delivery.
            let mut counts = vec![0usize; p];
            for outbox in &outboxes {
                for &(dst, _) in outbox {
                    if let Some(c) = counts.get_mut(dst) {
                        *c += 1;
                    }
                }
            }
            counts.into_iter().map(Vec::with_capacity).collect()
        } else {
            (0..p).map(|_| Vec::new()).collect()
        };
        if self.chaos.is_none() && self.delayed.is_empty() {
            // Fast path — byte-for-byte the pre-chaos routing loop.
            for (src, outbox) in outboxes.into_iter().enumerate() {
                for (dst, msg) in outbox {
                    assert!(dst < p, "rank {src} addressed message to nonexistent rank {dst}");
                    if dst != src {
                        let sz = size_of(&msg);
                        bytes[src][dst] += sz;
                        self.stats.messages += 1;
                        self.stats.bytes += sz as u64;
                    }
                    inboxes[dst].push((src, msg));
                }
            }
        } else {
            self.route_with_chaos(superstep, outboxes, &size_of, &mut bytes, &mut inboxes);
        }
        self.stats.sim_comm_us +=
            all_to_all_cost_us(self.config.schedule, &self.config.model, &bytes);
        if self.sink_armed {
            // The priced routing phase, on the driver lane. Durations are
            // deltas, so chaos extras (NACKs, retransmissions) are included.
            self.sink.record(SpanEvent {
                kind: SpanKind::Exchange,
                rank: DRIVER_LANE,
                superstep,
                sim_start_us: sim_route_start,
                sim_dur_us: self.stats.sim_comm_us - comm0,
                wall_start_us: wall_route_start,
                wall_dur_us: self.wall_now_us() - wall_route_start,
                messages: self.stats.messages - msg0,
                bytes: self.stats.bytes - bytes0,
            });
        }

        // Phase 3: consume (compute superstep).
        let started = Instant::now();
        let timed = |((rank, state), inbox): ((usize, &mut S), Vec<(Rank, M)>)| {
            let t = Instant::now();
            consume(rank, state, inbox);
            t.elapsed().as_secs_f64() * 1e6
        };
        let times: Vec<f64> = match self.config.mode {
            ExecutionMode::Sequential => {
                self.states.iter_mut().enumerate().zip(inboxes).map(timed).collect()
            }
            ExecutionMode::Parallel => {
                self.states.par_iter_mut().enumerate().zip(inboxes).map(timed).collect()
            }
        };
        let wall = started.elapsed();
        self.record_compute(&times, started, wall);
    }

    /// The chaos/delay-queue routing path of [`Cluster::exchange`]. Runs
    /// sequentially at the driver regardless of execution mode, so fault
    /// fates — keyed on `(seed, superstep, src, dst, ordinal)` — are
    /// identical under `Sequential` and `Parallel`.
    ///
    /// Pricing rules: delivered, dropped and corrupted copies traversed
    /// the wire and are priced at this barrier (a corruption additionally
    /// pays a 1-byte NACK); duplicates are priced twice; delayed and
    /// stall-held messages are priced when they finally traverse. Self
    /// messages are local and exempt from chaos entirely.
    fn route_with_chaos<M, FS>(
        &mut self,
        superstep: u64,
        outboxes: Vec<Vec<(Rank, M)>>,
        size_of: &FS,
        bytes: &mut [Vec<usize>],
        inboxes: &mut [Vec<(Rank, M)>],
    ) where
        M: Clone + Send + 'static,
        FS: Fn(&M) -> usize,
    {
        let p = self.p();
        let chaos = self.chaos.filter(|c| c.active_at(superstep));
        let mut ordinal = 0u64;
        for (src, outbox) in outboxes.into_iter().enumerate() {
            if chaos.is_some_and(|c| c.stalls(superstep, src)) && !outbox.is_empty() {
                // The whole outbox misses the barrier and flushes next
                // superstep; local deliveries are unaffected.
                self.stats.faults.stalls += 1;
                self.pending_chaos.push(ClusterError::RankStalled { rank: src, superstep });
                for (dst, msg) in outbox {
                    assert!(dst < p, "rank {src} addressed message to nonexistent rank {dst}");
                    if dst == src {
                        inboxes[dst].push((src, msg));
                    } else {
                        self.delayed.push(DelayedMsg {
                            due: superstep + 1,
                            src,
                            dst,
                            payload: Box::new(msg),
                        });
                    }
                }
                continue;
            }
            for (dst, msg) in outbox {
                assert!(dst < p, "rank {src} addressed message to nonexistent rank {dst}");
                if dst == src {
                    inboxes[dst].push((src, msg));
                    continue;
                }
                ordinal += 1;
                let fate =
                    chaos.map_or(ChannelFault::Deliver, |c| c.fate(superstep, src, dst, ordinal));
                let sz = size_of(&msg);
                match fate {
                    ChannelFault::Deliver => {
                        bytes[src][dst] += sz;
                        self.stats.messages += 1;
                        self.stats.bytes += sz as u64;
                        inboxes[dst].push((src, msg));
                    }
                    ChannelFault::Drop => {
                        // Transmitted and lost: costs bandwidth, delivers
                        // nothing. Safe because DV rows are upper bounds —
                        // a drop loses progress, never correctness.
                        bytes[src][dst] += sz;
                        self.stats.messages += 1;
                        self.stats.bytes += sz as u64;
                        self.stats.faults.dropped += 1;
                    }
                    ChannelFault::Duplicate => {
                        bytes[src][dst] += 2 * sz;
                        self.stats.messages += 2;
                        self.stats.bytes += 2 * sz as u64;
                        self.stats.faults.duplicated += 1;
                        inboxes[dst].push((src, msg.clone()));
                        inboxes[dst].push((src, msg));
                    }
                    ChannelFault::Delay(k) => {
                        self.stats.faults.delayed += 1;
                        self.delayed.push(DelayedMsg {
                            due: superstep + k,
                            src,
                            dst,
                            payload: Box::new(msg),
                        });
                    }
                    ChannelFault::Corrupt => {
                        // Paid for the garbled copy plus a 1-byte NACK;
                        // the receiver's checksum rejects the payload.
                        bytes[src][dst] += sz;
                        self.stats.messages += 1;
                        self.stats.bytes += sz as u64;
                        self.stats.sim_comm_us += self.config.model.message_cost_us(1);
                        self.stats.faults.corrupted += 1;
                        self.pending_chaos.push(ClusterError::MessageCorrupted {
                            src,
                            dst,
                            superstep,
                        });
                    }
                }
            }
        }
        // Deliver due queue entries of this payload type, in queue order
        // (deterministic; consumers min-merge, so order is also
        // semantically irrelevant). They traverse the wire now, so they
        // are priced now.
        let mut kept = Vec::with_capacity(self.delayed.len());
        for d in std::mem::take(&mut self.delayed) {
            if d.due <= superstep && d.payload.is::<M>() {
                let msg = *d.payload.downcast::<M>().expect("type just checked");
                let sz = size_of(&msg);
                bytes[d.src][d.dst] += sz;
                self.stats.messages += 1;
                self.stats.bytes += sz as u64;
                inboxes[d.dst].push((d.src, msg));
            } else {
                kept.push(d);
            }
        }
        self.delayed = kept;
    }

    /// Broadcast from `root`: `produce` builds the payload on the root rank,
    /// then every rank (including the root) consumes a reference to it.
    /// Priced as a binomial tree of `size` bytes.
    ///
    /// Collectives are *reliable*: the tree links are acknowledged, so a
    /// chaos plan never loses a broadcast payload — structural updates
    /// (new vertices, partition maps) must reach every rank or the cluster
    /// would diverge unrecoverably. Chaos instead prices the reliability:
    /// dropped or corrupted tree links cost a retransmission, duplicates
    /// cost a redundant copy, delayed links add latency. All are counted
    /// in [`RunStats::faults`].
    pub fn broadcast<M, FP, FC>(
        &mut self,
        root: Rank,
        produce: FP,
        size_of: impl Fn(&M) -> usize,
        consume: FC,
    ) where
        M: Sync + Send,
        FP: FnOnce(&mut S) -> M,
        FC: Fn(Rank, &mut S, &M) + Sync,
    {
        assert!(root < self.p(), "broadcast root {root} out of range");
        let payload = produce(&mut self.states[root]);
        let sz = size_of(&payload);
        let p = self.p();
        let (msg0, bytes0, comm0, sim_start, wall_start) = if self.sink_armed {
            (
                self.stats.messages,
                self.stats.bytes,
                self.stats.sim_comm_us,
                self.stats.sim_total_us(),
                self.wall_now_us(),
            )
        } else {
            (0, 0, 0.0, 0.0, 0.0)
        };
        self.stats.sim_comm_us += self.config.model.broadcast_cost_us(p, sz);
        self.stats.messages += (p - 1) as u64;
        self.stats.bytes += (sz * (p - 1)) as u64;
        self.stats.collectives += 1;
        let superstep = self.stats.supersteps;
        if self.chaos.is_some_and(|c| c.active_at(superstep)) {
            let plan = self.chaos.expect("checked above");
            let link_cost = self.config.model.message_cost_us(sz);
            for (ordinal, (from, to)) in
                crate::schedule::broadcast_tree(p, root).into_iter().enumerate()
            {
                match plan.fate(superstep, from, to, ordinal as u64) {
                    ChannelFault::Deliver => {}
                    ChannelFault::Drop => {
                        // Lost link: one retransmission after a timeout.
                        self.stats.faults.dropped += 1;
                        self.stats.faults.retransmits += 1;
                        self.stats.messages += 1;
                        self.stats.bytes += sz as u64;
                        self.stats.sim_comm_us += link_cost;
                    }
                    ChannelFault::Duplicate => {
                        self.stats.faults.duplicated += 1;
                        self.stats.messages += 1;
                        self.stats.bytes += sz as u64;
                        self.stats.sim_comm_us += link_cost;
                    }
                    ChannelFault::Delay(k) => {
                        // The subtree waits k extra link latencies.
                        self.stats.faults.delayed += 1;
                        self.stats.sim_comm_us += k as f64 * link_cost;
                    }
                    ChannelFault::Corrupt => {
                        // Checksum failure on a tree link: NACK + resend.
                        self.stats.faults.corrupted += 1;
                        self.stats.faults.retransmits += 1;
                        self.stats.messages += 1;
                        self.stats.bytes += sz as u64;
                        self.stats.sim_comm_us += link_cost + self.config.model.message_cost_us(1);
                    }
                }
            }
        }
        if self.sink_armed {
            self.sink.record(SpanEvent {
                kind: SpanKind::Collective,
                rank: DRIVER_LANE,
                superstep: self.stats.supersteps,
                sim_start_us: sim_start,
                sim_dur_us: self.stats.sim_comm_us - comm0,
                wall_start_us: wall_start,
                wall_dur_us: self.wall_now_us() - wall_start,
                messages: self.stats.messages - msg0,
                bytes: self.stats.bytes - bytes0,
            });
        }
        let payload_ref = &payload;
        self.step(move |rank, state| consume(rank, state, payload_ref));
    }

    /// OR-reduction over a per-rank predicate, priced as an all-reduce tree
    /// (up + down: `2·ceil(log2 P)` one-byte messages).
    pub fn allreduce_or<F>(&mut self, f: F) -> bool
    where
        F: Fn(Rank, &S) -> bool + Sync,
    {
        let p = self.p();
        let result = self.states.iter().enumerate().any(|(r, s)| f(r, s));
        let cost = 2.0 * self.config.model.broadcast_cost_us(p, 1);
        self.record_collective(cost);
        result
    }

    /// MAX-reduction over per-rank `u64` values, same pricing as
    /// [`Cluster::allreduce_or`].
    pub fn allreduce_max<F>(&mut self, f: F) -> u64
    where
        F: Fn(Rank, &S) -> u64 + Sync,
    {
        let p = self.p();
        let result = self.states.iter().enumerate().map(|(r, s)| f(r, s)).max().unwrap_or(0);
        let cost = 2.0 * self.config.model.broadcast_cost_us(p, 8);
        self.record_collective(cost);
        result
    }

    /// Prices an all-reduction and records its Collective span.
    fn record_collective(&mut self, cost_us: f64) {
        if self.sink_armed {
            self.sink.record(SpanEvent {
                kind: SpanKind::Collective,
                rank: DRIVER_LANE,
                superstep: self.stats.supersteps,
                sim_start_us: self.stats.sim_total_us(),
                sim_dur_us: cost_us,
                wall_start_us: self.wall_now_us(),
                wall_dur_us: 0.0,
                messages: 0,
                bytes: 0,
            });
        }
        self.stats.sim_comm_us += cost_us;
        self.stats.collectives += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(mode: ExecutionMode) -> ClusterConfig {
        ClusterConfig {
            model: LogPModel::ethernet_1g(),
            schedule: ExchangeSchedule::Sequential,
            mode,
        }
    }

    #[test]
    fn step_runs_on_every_rank() {
        let mut c = Cluster::new(vec![0u64; 4], config(ExecutionMode::Sequential));
        let out = c.step(|rank, s| {
            *s = rank as u64 * 10;
            rank
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(c.ranks(), &[0, 10, 20, 30]);
        assert_eq!(c.stats().supersteps, 1);
    }

    #[test]
    fn exchange_routes_messages_in_sender_order() {
        for mode in [ExecutionMode::Sequential, ExecutionMode::Parallel] {
            let mut c = Cluster::new(vec![Vec::<(usize, u32)>::new(); 3], config(mode));
            // Every rank sends its id×100 to every other rank.
            c.exchange(
                |rank, _| (0..3).filter(|&d| d != rank).map(|d| (d, (rank * 100) as u32)).collect(),
                |_| 4,
                |_, inbox_store, inbox| {
                    *inbox_store = inbox;
                },
            );
            // Each inbox has two messages, ordered by sender.
            for (rank, inbox) in c.ranks().iter().enumerate() {
                let expected: Vec<(usize, u32)> =
                    (0..3).filter(|&s| s != rank).map(|s| (s, (s * 100) as u32)).collect();
                assert_eq!(inbox, &expected, "mode {mode:?} rank {rank}");
            }
            assert_eq!(c.stats().messages, 6);
            assert_eq!(c.stats().bytes, 24);
            assert!(c.stats().sim_comm_us > 0.0);
        }
    }

    #[test]
    fn self_messages_are_free() {
        let mut c = Cluster::new(vec![0u32; 2], config(ExecutionMode::Sequential));
        c.exchange(|rank, _| vec![(rank, 7u32)], |_| 1000, |_, s, inbox| *s = inbox[0].1);
        assert_eq!(c.ranks(), &[7, 7]);
        assert_eq!(c.stats().messages, 0);
        assert_eq!(c.stats().sim_comm_us, 0.0);
    }

    #[test]
    #[should_panic(expected = "nonexistent rank")]
    fn exchange_panics_on_bad_destination() {
        let mut c = Cluster::new(vec![(); 2], config(ExecutionMode::Sequential));
        c.exchange(|_, _| vec![(9usize, 0u8)], |_| 1, |_, _, _| {});
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let mut c = Cluster::new(vec![0u32; 5], config(ExecutionMode::Parallel));
        c.broadcast(2, |_| 42u32, |_| 4, |_, s, &m| *s = m);
        assert_eq!(c.ranks(), &[42; 5]);
        assert_eq!(c.stats().messages, 4);
        assert_eq!(c.stats().collectives, 1);
        assert!(c.stats().sim_comm_us > 0.0);
    }

    #[test]
    fn allreduce_or_and_max() {
        let mut c = Cluster::new(vec![0u64, 5, 3], config(ExecutionMode::Sequential));
        assert!(!c.allreduce_or(|_, &s| s > 10));
        assert!(c.allreduce_or(|_, &s| s > 4));
        assert_eq!(c.allreduce_max(|_, &s| s), 5);
        assert_eq!(c.stats().collectives, 3);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let run = |mode| {
            let mut c = Cluster::new(vec![0u64; 8], config(mode));
            for round in 0..3u64 {
                c.exchange(
                    |rank, s| vec![((rank + 1) % 8, *s + rank as u64 + round)],
                    |_| 8,
                    |_, s, inbox| *s += inbox.iter().map(|&(_, m)| m).sum::<u64>(),
                );
            }
            let (states, stats) = c.into_parts();
            (states, stats.messages, stats.bytes)
        };
        assert_eq!(run(ExecutionMode::Sequential), run(ExecutionMode::Parallel));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_cluster_rejected() {
        let _ = Cluster::<u8>::new(vec![], config(ExecutionMode::Sequential));
    }

    #[test]
    fn fault_fires_once_at_planned_barrier() {
        let mut c = Cluster::new(vec![0u8; 3], config(ExecutionMode::Sequential));
        c.inject_fault(FaultPlan::at(1, 2));
        assert!(c.poll_fault().is_ok()); // superstep 0: not yet
        c.step(|_, _| ());
        assert!(c.poll_fault().is_ok()); // superstep 1: not yet
        c.step(|_, _| ());
        assert_eq!(c.poll_fault(), Err(ClusterError::RankFailed { rank: 1, superstep: 2 }));
        // Consumed: polling again is clean.
        assert!(c.poll_fault().is_ok());
        assert_eq!(c.fault_plan(), None);
    }

    #[test]
    fn seeded_fault_is_deterministic_and_in_range() {
        let a = FaultPlan::seeded(7, 4, 10);
        let b = FaultPlan::seeded(7, 4, 10);
        assert_eq!(a, b);
        assert!(a.rank < 4);
        assert!(a.superstep >= 1 && a.superstep <= 10);
        // Different seeds explore different coordinates eventually.
        assert!((0..64).any(|s| FaultPlan::seeded(s, 4, 10) != a));
    }

    #[test]
    fn seeded_fault_degenerate_inputs_are_inert() {
        // p == 0 and max_superstep == 0 leave no coordinate to sample.
        for plan in [FaultPlan::seeded(5, 0, 10), FaultPlan::seeded(5, 4, 0)] {
            assert!(plan.is_inert());
            let mut c = Cluster::new(vec![0u8; 2], config(ExecutionMode::Sequential));
            c.inject_fault(plan);
            for _ in 0..5 {
                c.step(|_, _| ());
                assert!(c.poll_fault().is_ok(), "inert plan must never fire");
            }
        }
        assert!(!FaultPlan::seeded(5, 4, 10).is_inert());
    }

    #[test]
    fn chaos_none_keeps_fast_path_and_zero_counters() {
        let clean = |plan: Option<ChaosPlan>| {
            let mut c = Cluster::new(vec![0u64; 4], config(ExecutionMode::Sequential));
            if let Some(p) = plan {
                c.set_chaos(p);
            }
            for _ in 0..4 {
                c.exchange(
                    |rank, s| vec![((rank + 1) % 4, *s + rank as u64)],
                    |_| 16,
                    |_, s, inbox| *s += inbox.iter().map(|&(_, m)| m).sum::<u64>(),
                );
            }
            (c.ranks().to_vec(), *c.stats())
        };
        let (base_states, base_stats) = clean(None);
        let (none_states, none_stats) = clean(Some(ChaosPlan::none()));
        assert_eq!(base_states, none_states);
        // All deterministic accounting must be indistinguishable (compute
        // time and wall are measured clocks and jitter run-to-run).
        assert_eq!(base_stats.messages, none_stats.messages);
        assert_eq!(base_stats.bytes, none_stats.bytes);
        assert_eq!(base_stats.sim_comm_us, none_stats.sim_comm_us);
        assert_eq!(base_stats.supersteps, none_stats.supersteps);
        assert_eq!(none_stats.faults, crate::stats::FaultCounters::default());
    }

    #[test]
    fn chaos_drop_loses_payload_but_prices_it() {
        // A plan that always drops: drop_p = 1.
        let plan = ChaosPlan { drop_p: 1.0, horizon: u64::MAX, ..ChaosPlan::none() };
        let mut c = Cluster::new(vec![0u32; 2], config(ExecutionMode::Sequential));
        c.set_chaos(plan);
        c.exchange(
            |rank, _| vec![(1 - rank, 7u32)],
            |_| 10,
            |_, s, inbox| {
                *s = inbox.len() as u32;
            },
        );
        assert_eq!(c.ranks(), &[0, 0], "both messages dropped");
        assert_eq!(c.stats().faults.dropped, 2);
        assert_eq!(c.stats().messages, 2, "dropped traffic still transmitted");
        assert_eq!(c.stats().bytes, 20);
        assert!(c.poll_chaos().is_ok(), "drops are silent (no incident)");
    }

    #[test]
    fn chaos_duplicate_delivers_twice() {
        let plan = ChaosPlan { dup_p: 1.0, horizon: u64::MAX, ..ChaosPlan::none() };
        let mut c = Cluster::new(vec![0u32; 2], config(ExecutionMode::Sequential));
        c.set_chaos(plan);
        c.exchange(
            |rank, _| vec![(1 - rank, 7u32)],
            |_| 10,
            |_, s, inbox| {
                *s = inbox.len() as u32;
            },
        );
        assert_eq!(c.ranks(), &[2, 2], "each inbox holds the duplicate");
        assert_eq!(c.stats().faults.duplicated, 2);
        assert_eq!(c.stats().messages, 4);
        assert_eq!(c.stats().bytes, 40);
    }

    #[test]
    fn chaos_delay_defers_across_exchanges() {
        let plan = ChaosPlan { delay_p: 1.0, max_delay: 1, horizon: 1, ..ChaosPlan::none() };
        let mut c = Cluster::new(vec![Vec::<u32>::new(); 2], config(ExecutionMode::Sequential));
        c.set_chaos(plan);
        let send_round = |c: &mut Cluster<Vec<u32>>, val: u32| {
            c.exchange(
                move |rank, _| if rank == 0 && val != 0 { vec![(1usize, val)] } else { vec![] },
                |_| 4,
                |_, s, inbox| s.extend(inbox.into_iter().map(|(_, m)| m)),
            );
        };
        // Superstep 0 (in-horizon): message delayed by 1.
        send_round(&mut c, 42);
        assert!(c.ranks()[1].is_empty(), "delayed past its barrier");
        assert!(c.has_undelivered());
        assert_eq!(c.stats().faults.delayed, 1);
        // Next exchange (superstep ≥ due, past horizon): it arrives.
        send_round(&mut c, 0);
        assert_eq!(c.ranks()[1], vec![42]);
        assert!(!c.has_undelivered());
        assert_eq!(c.stats().messages, 1, "priced once, when it traverses");
    }

    #[test]
    fn chaos_corrupt_discards_and_surfaces_incident() {
        let plan = ChaosPlan { corrupt_p: 1.0, horizon: u64::MAX, ..ChaosPlan::none() };
        let mut c = Cluster::new(vec![0u32; 2], config(ExecutionMode::Sequential));
        c.set_chaos(plan);
        c.exchange(
            |rank, _| if rank == 0 { vec![(1usize, 9u32)] } else { vec![] },
            |_| 6,
            |_, s, inbox| {
                *s = inbox.len() as u32;
            },
        );
        assert_eq!(c.ranks()[1], 0, "checksum rejected the payload");
        assert_eq!(c.stats().faults.corrupted, 1);
        let err = c.poll_chaos().unwrap_err();
        assert!(matches!(err, ClusterError::MessageCorrupted { src: 0, dst: 1, .. }));
        assert!(c.poll_chaos().is_ok(), "incident batch cleared after poll");
    }

    #[test]
    fn chaos_stall_holds_whole_outbox_one_superstep() {
        let plan = ChaosPlan { stall_p: 1.0, horizon: 1, ..ChaosPlan::none() };
        let mut c = Cluster::new(vec![Vec::<u32>::new(); 3], config(ExecutionMode::Sequential));
        c.set_chaos(plan);
        c.exchange(
            |rank, _| if rank == 0 { vec![(1usize, 1u32), (2usize, 2u32)] } else { vec![] },
            |_| 4,
            |_, s, inbox| s.extend(inbox.into_iter().map(|(_, m)| m)),
        );
        assert!(c.ranks()[1].is_empty() && c.ranks()[2].is_empty());
        assert_eq!(c.stats().faults.stalls, 1, "one stall event, not per message");
        assert!(matches!(c.poll_chaos().unwrap_err(), ClusterError::RankStalled { rank: 0, .. }));
        // The held outbox flushes at the next exchange (past the horizon).
        c.exchange(
            |_, _| vec![],
            |_: &u32| 4,
            |_, s: &mut Vec<u32>, inbox| s.extend(inbox.into_iter().map(|(_, m)| m)),
        );
        assert_eq!(c.ranks()[1], vec![1]);
        assert_eq!(c.ranks()[2], vec![2]);
    }

    #[test]
    fn chaos_is_deterministic_across_modes() {
        let run = |mode| {
            let mut c = Cluster::new(vec![0u64; 8], config(mode));
            c.set_chaos(ChaosPlan::seeded(99, 0.6, 12));
            for round in 0..8u64 {
                c.exchange(
                    |rank, s| {
                        (0..8)
                            .filter(|&d| d != rank)
                            .map(|d| (d, *s + rank as u64 + round))
                            .collect()
                    },
                    |_| 8,
                    |_, s, inbox| *s += inbox.iter().map(|&(_, m)| m).sum::<u64>(),
                );
                let _ = c.poll_chaos(); // drain incidents identically
            }
            let faults = c.stats().faults;
            let (states, stats) = c.into_parts();
            (states, stats.messages, stats.bytes, faults)
        };
        let seq = run(ExecutionMode::Sequential);
        let par = run(ExecutionMode::Parallel);
        assert_eq!(seq, par);
        assert!(seq.3.injected() > 0, "a 60% plan over 8 rounds must inject something");
    }

    #[test]
    fn chaotic_broadcast_still_reaches_everyone() {
        let mut c = Cluster::new(vec![0u32; 8], config(ExecutionMode::Sequential));
        c.set_chaos(ChaosPlan::seeded(3, 0.9, u64::MAX));
        let clean_cost = {
            let mut r = Cluster::new(vec![0u32; 8], config(ExecutionMode::Sequential));
            r.broadcast(0, |_| 42u32, |_| 1000, |_, s, &m| *s = m);
            r.stats().sim_comm_us
        };
        c.broadcast(0, |_| 42u32, |_| 1000, |_, s, &m| *s = m);
        assert_eq!(c.ranks(), &[42; 8], "collectives are reliable under chaos");
        if c.stats().faults.injected() > 0 {
            assert!(c.stats().sim_comm_us > clean_cost, "faults must price retransmissions");
        }
        assert!(c.poll_chaos().is_ok(), "collectives absorb their faults internally");
    }

    #[test]
    fn armed_sink_records_spans_without_perturbing_stats() {
        use aaa_observe::{MemorySink, SpanKind};
        let run = |armed: bool| {
            let mut c = Cluster::new(vec![0u64; 4], config(ExecutionMode::Sequential));
            let sink = std::sync::Arc::new(MemorySink::new());
            if armed {
                c.set_sink(sink.clone());
                assert!(c.observing());
            } else {
                assert!(!c.observing(), "NoopSink default is disarmed");
            }
            for _ in 0..3 {
                c.exchange(
                    |rank, s| vec![((rank + 1) % 4, *s + rank as u64)],
                    |_| 16,
                    |_, s, inbox| *s += inbox.iter().map(|&(_, m)| m).sum::<u64>(),
                );
            }
            c.broadcast(0, |_| 1u8, |_| 1, |_, _, _| {});
            c.allreduce_or(|_, &s| s > 0);
            (*c.stats(), sink.drain())
        };
        let (armed_stats, events) = run(true);
        let (disarmed_stats, no_events) = run(false);

        assert!(no_events.is_empty(), "disarmed cluster records nothing");
        // Deterministic accounting must be identical armed vs disarmed.
        assert_eq!(armed_stats.messages, disarmed_stats.messages);
        assert_eq!(armed_stats.bytes, disarmed_stats.bytes);
        assert_eq!(armed_stats.sim_comm_us, disarmed_stats.sim_comm_us);
        assert_eq!(armed_stats.supersteps, disarmed_stats.supersteps);

        let count = |k| events.iter().filter(|e| e.kind == k).count();
        // 3 exchanges × 2 compute phases × 4 ranks + 1 broadcast-consume × 4.
        assert_eq!(count(SpanKind::Superstep), 28);
        assert_eq!(count(SpanKind::Exchange), 3);
        assert_eq!(count(SpanKind::Collective), 2);
        let exch = events.iter().find(|e| e.kind == SpanKind::Exchange).unwrap();
        assert_eq!(exch.rank, DRIVER_LANE);
        assert_eq!(exch.messages, 4);
        assert_eq!(exch.bytes, 64);
        assert!(exch.sim_dur_us > 0.0);
        // Spans cover the whole simulated comm time.
        let comm: f64 = events
            .iter()
            .filter(|e| matches!(e.kind, SpanKind::Exchange | SpanKind::Collective))
            .map(|e| e.sim_dur_us)
            .sum();
        assert!((comm - armed_stats.sim_comm_us).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_restore_counters_and_stats_restore() {
        let mut c = Cluster::new(vec![(); 2], config(ExecutionMode::Sequential));
        c.step(|_, _| ());
        c.record_checkpoint();
        let snap = *c.stats();
        c.step(|_, _| ());
        c.restore_stats(snap);
        c.record_restore();
        assert_eq!(c.stats().supersteps, 1); // post-checkpoint step discarded
        assert_eq!(c.stats().checkpoints, 1);
        assert_eq!(c.stats().restores, 1);
    }
}
