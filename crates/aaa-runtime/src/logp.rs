//! The LogP / LogGP communication cost model.
//!
//! The paper analyzes its recombination phase in LogP (§IV.C): `L` is the
//! network latency, `o` the per-message processor overhead, `g` the minimum
//! gap between consecutive sends, and `P` the processor count. We extend
//! with the LogGP per-byte gap `G` so large distance-vector payloads cost
//! proportionally to their size — the paper caps message size at `M` bytes
//! for exactly this reason.

/// Cost parameters, in microseconds (and microseconds per byte for `G`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogPModel {
    /// Network latency `L` (µs).
    pub latency_us: f64,
    /// Send/receive processor overhead `o` (µs), paid on both ends.
    pub overhead_us: f64,
    /// Gap between consecutive message injections `g` (µs).
    pub gap_us: f64,
    /// Per-byte gap `G` (µs/byte) — the LogGP bandwidth term.
    pub per_byte_us: f64,
}

impl LogPModel {
    /// Parameters resembling the paper's testbed: 1 Gb/s Ethernet
    /// (~125 MB/s ⇒ 0.008 µs/byte) with ~50 µs latency and ~5 µs overhead.
    pub fn ethernet_1g() -> Self {
        Self { latency_us: 50.0, overhead_us: 5.0, gap_us: 10.0, per_byte_us: 0.008 }
    }

    /// A fast interconnect (for ablations): ~1.5 µs latency, 100 Gb/s.
    pub fn fast_interconnect() -> Self {
        Self { latency_us: 1.5, overhead_us: 0.5, gap_us: 0.5, per_byte_us: 0.00008 }
    }

    /// A zero-cost model (correctness-only runs).
    pub fn free() -> Self {
        Self { latency_us: 0.0, overhead_us: 0.0, gap_us: 0.0, per_byte_us: 0.0 }
    }

    /// End-to-end cost of one point-to-point message of `bytes` bytes:
    /// `o + (bytes − 1)·G + L + o`.
    pub fn message_cost_us(&self, bytes: usize) -> f64 {
        let byte_term = if bytes > 0 { (bytes as f64 - 1.0) * self.per_byte_us } else { 0.0 };
        2.0 * self.overhead_us + self.latency_us + byte_term
    }

    /// Cost for one sender to inject `count` back-to-back messages: each
    /// injection after the first is separated by at least `g`.
    pub fn injection_cost_us(&self, count: usize, bytes_each: usize) -> f64 {
        if count == 0 {
            return 0.0;
        }
        self.message_cost_us(bytes_each)
            + (count as f64 - 1.0) * self.gap_us.max(self.message_cost_us(bytes_each))
    }

    /// Cost of a binomial-tree broadcast of `bytes` to `p` ranks:
    /// `ceil(log2 p)` sequential message rounds.
    pub fn broadcast_cost_us(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (p as f64).log2().ceil();
        rounds * self.message_cost_us(bytes)
    }
}

impl Default for LogPModel {
    fn default() -> Self {
        Self::ethernet_1g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_scales_with_size() {
        let m = LogPModel::ethernet_1g();
        let small = m.message_cost_us(100);
        let large = m.message_cost_us(1_000_000);
        assert!(large > small);
        // A 1 MB message on 1 Gb/s is ~8 ms.
        assert!((7_000.0..10_000.0).contains(&large), "{large}");
    }

    #[test]
    fn zero_byte_message_still_pays_latency() {
        let m = LogPModel::ethernet_1g();
        assert!((m.message_cost_us(0) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn free_model_is_zero() {
        let m = LogPModel::free();
        assert_eq!(m.message_cost_us(12345), 0.0);
        assert_eq!(m.broadcast_cost_us(16, 1000), 0.0);
    }

    #[test]
    fn broadcast_is_logarithmic() {
        let m = LogPModel::ethernet_1g();
        let c16 = m.broadcast_cost_us(16, 1000);
        let c2 = m.broadcast_cost_us(2, 1000);
        assert!((c16 / c2 - 4.0).abs() < 1e-9); // log2(16) / log2(2)
        assert_eq!(m.broadcast_cost_us(1, 1000), 0.0);
    }

    #[test]
    fn injection_cost_monotone_in_count() {
        let m = LogPModel::ethernet_1g();
        assert_eq!(m.injection_cost_us(0, 100), 0.0);
        let one = m.injection_cost_us(1, 100);
        let five = m.injection_cost_us(5, 100);
        assert!(five > 4.0 * one * 0.9);
    }
}
