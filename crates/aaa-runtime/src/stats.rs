//! Run statistics: traffic counters and the two clocks (wall, simulated).

use std::time::Duration;

/// Accumulated statistics for a cluster run.
///
/// * `wall` is real elapsed time of the in-process execution.
/// * `sim_comm_us` is what the same traffic would cost on the modelled
///   network (LogP-priced); `sim_compute_us` is the per-superstep maximum
///   rank compute time, summed — together they approximate the runtime the
///   paper measures on its cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Point-to-point messages routed.
    pub messages: u64,
    /// Total payload bytes routed.
    pub bytes: u64,
    /// Simulated communication time (µs).
    pub sim_comm_us: f64,
    /// Simulated compute time: Σ over supersteps of max rank time (µs).
    pub sim_compute_us: f64,
    /// Supersteps executed.
    pub supersteps: u64,
    /// Collective operations (broadcasts, reductions) executed.
    pub collectives: u64,
    /// Real elapsed time of rank computation.
    pub wall: Duration,
}

impl RunStats {
    /// Total simulated time (µs): compute + communication.
    pub fn sim_total_us(&self) -> f64 {
        self.sim_comm_us + self.sim_compute_us
    }

    /// Total simulated time in seconds.
    pub fn sim_total_secs(&self) -> f64 {
        self.sim_total_us() / 1e6
    }

    /// Merges another stats block into this one (used when a run is
    /// composed of phases measured separately).
    pub fn merge(&mut self, other: &RunStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.sim_comm_us += other.sim_comm_us;
        self.sim_compute_us += other.sim_compute_us;
        self.supersteps += other.supersteps;
        self.collectives += other.collectives;
        self.wall += other.wall;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = RunStats { sim_comm_us: 10.0, sim_compute_us: 5.0, messages: 2, bytes: 100, supersteps: 1, collectives: 0, wall: Duration::from_millis(3) };
        let b = RunStats { sim_comm_us: 1.0, sim_compute_us: 2.0, messages: 1, bytes: 50, supersteps: 2, collectives: 1, wall: Duration::from_millis(4) };
        a.merge(&b);
        assert_eq!(a.messages, 3);
        assert_eq!(a.bytes, 150);
        assert_eq!(a.supersteps, 3);
        assert_eq!(a.collectives, 1);
        assert!((a.sim_total_us() - 18.0).abs() < 1e-12);
        assert!((a.sim_total_secs() - 18.0e-6).abs() < 1e-15);
        assert_eq!(a.wall, Duration::from_millis(7));
    }

    #[test]
    fn default_is_zero() {
        let s = RunStats::default();
        assert_eq!(s.sim_total_us(), 0.0);
        assert_eq!(s.messages, 0);
    }
}
