//! Run statistics: traffic counters and the two clocks (wall, simulated).

use std::time::Duration;

/// Per-fault-kind counters for the chaos layer (see `crate::chaos`).
///
/// The first five fields count *injected* faults; `retransmits` counts the
/// rows the supervised recovery loop re-announced in response — it is
/// repair work, not a fault, so [`FaultCounters::injected`] excludes it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages transmitted but lost in flight.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages held past their superstep barrier.
    pub delayed: u64,
    /// Messages rejected by the receiver's checksum.
    pub corrupted: u64,
    /// Rank-stall events (a rank's whole outbox held for a superstep).
    pub stalls: u64,
    /// DV rows re-announced by supervised retry / verification passes.
    pub retransmits: u64,
}

impl FaultCounters {
    /// Total injected faults (everything except `retransmits`).
    pub fn injected(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.corrupted + self.stalls
    }

    fn merge(&mut self, other: &FaultCounters) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.corrupted += other.corrupted;
        self.stalls += other.stalls;
        self.retransmits += other.retransmits;
    }

    fn delta_since(&self, baseline: &FaultCounters) -> FaultCounters {
        FaultCounters {
            dropped: self.dropped.saturating_sub(baseline.dropped),
            duplicated: self.duplicated.saturating_sub(baseline.duplicated),
            delayed: self.delayed.saturating_sub(baseline.delayed),
            corrupted: self.corrupted.saturating_sub(baseline.corrupted),
            stalls: self.stalls.saturating_sub(baseline.stalls),
            retransmits: self.retransmits.saturating_sub(baseline.retransmits),
        }
    }
}

/// Accumulated statistics for a cluster run.
///
/// * `wall` is real elapsed time of the in-process execution.
/// * `sim_comm_us` is what the same traffic would cost on the modelled
///   network (LogP-priced); `sim_compute_us` is the per-superstep maximum
///   rank compute time, summed — together they approximate the runtime the
///   paper measures on its cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Point-to-point messages routed.
    pub messages: u64,
    /// Total payload bytes routed.
    pub bytes: u64,
    /// Simulated communication time (µs).
    pub sim_comm_us: f64,
    /// Simulated compute time: Σ over supersteps of max rank time (µs).
    pub sim_compute_us: f64,
    /// Supersteps executed.
    pub supersteps: u64,
    /// Collective operations (broadcasts, reductions) executed.
    pub collectives: u64,
    /// Checkpoints taken (snapshots of full engine state).
    pub checkpoints: u64,
    /// Restores performed (engine rebuilt or a rank recovered from a
    /// checkpoint).
    pub restores: u64,
    /// Row-migration events (budgeted rebalance moves or full
    /// repartitions); every one rides the LogP-priced exchange path.
    pub migrations: u64,
    /// DV rows shipped to a new owner across all migration events.
    pub migrated_rows: u64,
    /// Bytes of migration traffic (assignment broadcasts + row payloads),
    /// already included in `bytes` — this is the migration-only split.
    pub migration_bytes: u64,
    /// Chaos-layer fault counters; all zero unless a `ChaosPlan` is armed.
    pub faults: FaultCounters,
    /// Real elapsed time of rank computation.
    pub wall: Duration,
}

impl RunStats {
    /// Total simulated time (µs): compute + communication.
    pub fn sim_total_us(&self) -> f64 {
        self.sim_comm_us + self.sim_compute_us
    }

    /// Total simulated time in seconds.
    pub fn sim_total_secs(&self) -> f64 {
        self.sim_total_us() / 1e6
    }

    /// Merges another stats block into this one.
    ///
    /// `other` must be a **delta** (stats of one phase measured in
    /// isolation), never a cumulative counter that shares history with
    /// `self` — merging two cumulative blocks double-counts everything, in
    /// particular `wall`. When a phase is retried after a checkpoint
    /// restore, compute the retried phase's contribution with
    /// [`RunStats::delta_since`] against the restore point before merging.
    pub fn merge(&mut self, other: &RunStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.sim_comm_us += other.sim_comm_us;
        self.sim_compute_us += other.sim_compute_us;
        self.supersteps += other.supersteps;
        self.collectives += other.collectives;
        self.checkpoints += other.checkpoints;
        self.restores += other.restores;
        self.migrations += other.migrations;
        self.migrated_rows += other.migrated_rows;
        self.migration_bytes += other.migration_bytes;
        self.faults.merge(&other.faults);
        self.wall += other.wall;
    }

    /// Seeds a [`RunReport`](aaa_observe::RunReport) with this block's
    /// counters and clocks. The caller fills in the scenario parameters
    /// and the sink-derived sections (phases, ranks, quality).
    pub fn init_report(&self, scenario: &str) -> aaa_observe::RunReport {
        aaa_observe::RunReport {
            scenario: scenario.to_string(),
            messages: self.messages,
            bytes: self.bytes,
            supersteps: self.supersteps,
            collectives: self.collectives,
            checkpoints: self.checkpoints,
            restores: self.restores,
            sim_comm_us: self.sim_comm_us,
            sim_compute_us: self.sim_compute_us,
            wall_us: self.wall.as_secs_f64() * 1e6,
            faults: aaa_observe::FaultTally {
                dropped: self.faults.dropped,
                duplicated: self.faults.duplicated,
                delayed: self.faults.delayed,
                corrupted: self.faults.corrupted,
                stalls: self.faults.stalls,
                retransmits: self.faults.retransmits,
            },
            migration: Some(aaa_observe::MigrationTally {
                migrations: self.migrations,
                migrated_rows: self.migrated_rows,
                migration_bytes: self.migration_bytes,
            }),
            ..aaa_observe::RunReport::default()
        }
    }

    /// The per-phase delta between this (cumulative) block and an earlier
    /// `baseline` of the same run: what happened strictly after the
    /// baseline was captured. Saturating, so a baseline from a discarded
    /// timeline (e.g. captured after the checkpoint this run was restored
    /// from) yields zeros rather than underflowing.
    pub fn delta_since(&self, baseline: &RunStats) -> RunStats {
        RunStats {
            messages: self.messages.saturating_sub(baseline.messages),
            bytes: self.bytes.saturating_sub(baseline.bytes),
            sim_comm_us: (self.sim_comm_us - baseline.sim_comm_us).max(0.0),
            sim_compute_us: (self.sim_compute_us - baseline.sim_compute_us).max(0.0),
            supersteps: self.supersteps.saturating_sub(baseline.supersteps),
            collectives: self.collectives.saturating_sub(baseline.collectives),
            checkpoints: self.checkpoints.saturating_sub(baseline.checkpoints),
            restores: self.restores.saturating_sub(baseline.restores),
            migrations: self.migrations.saturating_sub(baseline.migrations),
            migrated_rows: self.migrated_rows.saturating_sub(baseline.migrated_rows),
            migration_bytes: self.migration_bytes.saturating_sub(baseline.migration_bytes),
            faults: self.faults.delta_since(&baseline.faults),
            wall: self.wall.saturating_sub(baseline.wall),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = RunStats {
            sim_comm_us: 10.0,
            sim_compute_us: 5.0,
            messages: 2,
            bytes: 100,
            supersteps: 1,
            wall: Duration::from_millis(3),
            ..RunStats::default()
        };
        let b = RunStats {
            sim_comm_us: 1.0,
            sim_compute_us: 2.0,
            messages: 1,
            bytes: 50,
            supersteps: 2,
            collectives: 1,
            checkpoints: 1,
            restores: 1,
            migrations: 1,
            migrated_rows: 7,
            migration_bytes: 40,
            faults: FaultCounters { dropped: 2, retransmits: 5, ..FaultCounters::default() },
            wall: Duration::from_millis(4),
        };
        a.merge(&b);
        assert_eq!(a.messages, 3);
        assert_eq!(a.bytes, 150);
        assert_eq!(a.supersteps, 3);
        assert_eq!(a.collectives, 1);
        assert_eq!(a.checkpoints, 1);
        assert_eq!(a.restores, 1);
        assert_eq!(a.migrations, 1);
        assert_eq!(a.migrated_rows, 7);
        assert_eq!(a.migration_bytes, 40);
        assert_eq!(a.faults.dropped, 2);
        assert_eq!(a.faults.retransmits, 5);
        assert_eq!(a.faults.injected(), 2);
        assert!((a.sim_total_us() - 18.0).abs() < 1e-12);
        assert!((a.sim_total_secs() - 18.0e-6).abs() < 1e-15);
        assert_eq!(a.wall, Duration::from_millis(7));
    }

    #[test]
    fn delta_since_yields_phase_contribution() {
        let at_checkpoint = RunStats {
            messages: 10,
            bytes: 1_000,
            sim_comm_us: 5.0,
            sim_compute_us: 7.0,
            supersteps: 4,
            collectives: 2,
            checkpoints: 1,
            restores: 0,
            migrations: 1,
            migrated_rows: 4,
            migration_bytes: 100,
            faults: FaultCounters { corrupted: 1, ..FaultCounters::default() },
            wall: Duration::from_millis(10),
        };
        let mut at_end = at_checkpoint;
        at_end.merge(&RunStats {
            messages: 3,
            bytes: 300,
            sim_comm_us: 1.0,
            sim_compute_us: 2.0,
            supersteps: 2,
            collectives: 1,
            checkpoints: 0,
            restores: 1,
            migrations: 1,
            migrated_rows: 2,
            migration_bytes: 50,
            faults: FaultCounters { dropped: 4, ..FaultCounters::default() },
            wall: Duration::from_millis(5),
        });
        let delta = at_end.delta_since(&at_checkpoint);
        assert_eq!(delta.messages, 3);
        assert_eq!(delta.supersteps, 2);
        assert_eq!(delta.restores, 1);
        assert_eq!(delta.migrations, 1);
        assert_eq!(delta.migrated_rows, 2);
        assert_eq!(delta.migration_bytes, 50);
        assert_eq!(delta.faults, FaultCounters { dropped: 4, ..FaultCounters::default() });
        assert_eq!(delta.wall, Duration::from_millis(5));
        // Re-merging the delta onto the baseline reproduces the end state
        // exactly — the accounting identity that rules out double-counting.
        let mut rebuilt = at_checkpoint;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, at_end);
        // A baseline from a discarded (post-checkpoint, pre-failure)
        // timeline saturates to zero instead of underflowing.
        let stale = RunStats { wall: Duration::from_secs(100), messages: 999, ..at_checkpoint };
        let d = at_end.delta_since(&stale);
        assert_eq!(d.wall, Duration::ZERO);
        assert_eq!(d.messages, 0);
    }

    #[test]
    fn default_is_zero() {
        let s = RunStats::default();
        assert_eq!(s.sim_total_us(), 0.0);
        assert_eq!(s.messages, 0);
    }
}
