//! The real transport layer: length-prefixed CRC'd frames over sockets.
//!
//! Everything else in this crate simulates a cluster in-process; this
//! module is the escape hatch to an actual one. It provides the pieces a
//! multi-process deployment needs and nothing engine-specific:
//!
//! * [`Frame`] / [`FrameKind`] — the wire unit: a 20-byte little-endian
//!   header (magic, kind, flags, sequence number, payload length, CRC32
//!   over the whole frame) followed by an opaque payload. Every corruption
//!   of any single bit is detected and surfaces as a typed [`FrameError`];
//!   decoding never panics and never reads past the buffer.
//! * [`NetChaos`] — seeded fault injection at the socket layer: connection
//!   resets, partial writes, frame delay/duplication/corruption. Like
//!   [`ChaosPlan`](crate::ChaosPlan) it is a pure function of a seed and
//!   the frame coordinate, so a given seed reproduces the same fault
//!   schedule on every run.
//! * [`Backoff`] — capped exponential reconnect backoff with
//!   deterministic SplitMix64 jitter (no RNG state, no wall clock in the
//!   schedule itself).
//! * [`Transport`] — the rank-to-rank link abstraction, with two
//!   implementations: [`LocalTransport`] (in-process paired queues — the
//!   deterministic mode tests run on) and [`SocketTransport`] (a real
//!   `TcpStream` with per-peer sequence numbers, idempotent replay of
//!   unacknowledged frames, heartbeat auto-acknowledgement, and — on the
//!   dialing side — transparent reconnection under [`Backoff`]).
//!
//! Failure-detection contract: every receive takes a deadline. A peer
//! that neither answers its protocol message nor acknowledges a
//! [`FrameKind::Heartbeat`] probe within its deadline is declared dead
//! ([`NetError::PeerDead`]); the supervision above (`aaa-core::net`)
//! decides whether to respawn, fall back to a checkpoint, or degrade.

use crate::chaos::{mix, unit};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Env-gated diagnostic tracing (`AAA_NET_TRACE=1`): timestamped
/// transport-level events on stderr, for debugging distributed runs.
macro_rules! net_trace {
    ($($arg:tt)*) => {
        if std::env::var_os("AAA_NET_TRACE").is_some() {
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap_or_default();
            eprintln!("[{}.{:03}] {}", now.as_secs() % 1000, now.subsec_millis(), format_args!($($arg)*));
        }
    };
}

/// Re-exported SplitMix64 chain-hash (order-sensitive) — the one
/// generator behind [`crate::ChaosPlan`], [`NetChaos`] and [`Backoff`]
/// jitter, exposed so higher layers derive schedules from the same seed.
#[inline]
pub fn mix64(seed: u64, vals: &[u64]) -> u64 {
    mix(seed, vals)
}

/// Maps a hash to the unit interval (53 high bits) — companion of
/// [`mix64`].
#[inline]
pub fn unit_f64(x: u64) -> f64 {
    unit(x)
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

/// Frame magic: "AA" for anytime-anywhere, with the high bit set so text
/// protocols can never alias it.
pub const FRAME_MAGIC: u16 = 0xAA7A;

/// Header bytes: magic(2) kind(1) flags(1) seq(8) len(4) crc(4).
pub const FRAME_HEADER_LEN: usize = 20;

/// Payload cap: a frame longer than this is rejected before allocation,
/// so a corrupted or malicious length field cannot OOM the receiver.
pub const MAX_FRAME_PAYLOAD: u32 = 64 << 20;

/// How long a *partial* frame may sit without a single new byte before
/// the stream is declared desynced. Senders write frames atomically, so
/// mid-frame progress only ever stalls when framing was lost — most
/// often a corrupted length field inflating the frame beyond what the
/// sender will ever deliver.
pub const FRAME_STALL_TIMEOUT: Duration = Duration::from_secs(1);

/// Transport-level frame kinds. Payload semantics above `Data` belong to
/// the protocol layer (`aaa-core::net`); the rest are control frames owned
/// by this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// Connection (re-)establishment: carries a [`Hello`].
    Hello = 1,
    /// Handshake reply: payload is the acceptor's last received sequence
    /// number (LE u64), so the dialer knows what to replay.
    HelloAck = 2,
    /// Sequenced application payload (replayed until acknowledged).
    Data = 3,
    /// Liveness probe; payload is an opaque nonce echoed by the ack.
    Heartbeat = 4,
    /// Probe reply (echoes the probe's nonce).
    HeartbeatAck = 5,
    /// Cumulative receive acknowledgement: payload is the highest
    /// contiguous `Data` sequence number processed (LE u64).
    Ack = 6,
    /// Orderly teardown.
    Shutdown = 7,
}

impl FrameKind {
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            1 => Self::Hello,
            2 => Self::HelloAck,
            3 => Self::Data,
            4 => Self::Heartbeat,
            5 => Self::HeartbeatAck,
            6 => Self::Ack,
            7 => Self::Shutdown,
            _ => return None,
        })
    }

    /// Every kind, in wire order (property tests iterate this).
    pub const ALL: [FrameKind; 7] = [
        FrameKind::Hello,
        FrameKind::HelloAck,
        FrameKind::Data,
        FrameKind::Heartbeat,
        FrameKind::HeartbeatAck,
        FrameKind::Ack,
        FrameKind::Shutdown,
    ];
}

/// One decoded frame. `seq` is 0 for unsequenced control frames; `Data`
/// frames carry 1-based per-connection sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: FrameKind,
    pub seq: u64,
    pub payload: Vec<u8>,
}

/// Typed codec errors. Every malformed input maps to exactly one of
/// these; the decoder never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes available than the header (or header + payload) needs.
    Truncated { have: usize, need: usize },
    /// First two bytes are not [`FRAME_MAGIC`].
    BadMagic(u16),
    /// Kind byte outside the known range.
    UnknownKind(u8),
    /// Reserved flags byte is non-zero.
    BadFlags(u8),
    /// Length field exceeds [`MAX_FRAME_PAYLOAD`].
    TooLarge { len: u32, cap: u32 },
    /// CRC mismatch: the frame was damaged in flight.
    BadCrc { expect: u32, got: u32 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::BadFlags(b) => write!(f, "reserved frame flags set: {b:#04x}"),
            FrameError::TooLarge { len, cap } => {
                write!(f, "frame payload of {len} bytes exceeds cap {cap}")
            }
            FrameError::BadCrc { expect, got } => {
                write!(f, "frame CRC mismatch: expected {expect:#010x}, got {got:#010x}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-32 (IEEE 802.3, reflected), nibble-table variant. `aaa-checkpoint`
/// and `aaa-store` each carry the same function; this crate sits below
/// both, so it keeps its own copy rather than inverting the dependency.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 16] = [
        0x0000_0000,
        0x1db7_1064,
        0x3b6e_20c8,
        0x26d9_30ac,
        0x76dc_4190,
        0x6b6b_51f4,
        0x4db2_6158,
        0x5005_713c,
        0xedb8_8320,
        0xf00f_9344,
        0xd6d6_a3e8,
        0xcb61_b38c,
        0x9b64_c2b0,
        0x86d3_d2d4,
        0xa00a_e278,
        0xbdbd_f21c,
    ];
    let mut crc: u32 = !0;
    for &b in data {
        crc = (crc >> 4) ^ TABLE[((crc ^ b as u32) & 0xf) as usize];
        crc = (crc >> 4) ^ TABLE[((crc ^ (b as u32 >> 4)) & 0xf) as usize];
    }
    !crc
}

/// Encodes one frame. The CRC covers the *entire* frame (header with the
/// CRC field zeroed, then payload), so any single-bit corruption anywhere
/// — including in the header — is detected.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + frame.payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.push(frame.kind as u8);
    out.push(0); // flags, reserved
    out.extend_from_slice(&frame.seq.to_le_bytes());
    out.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder
    out.extend_from_slice(&frame.payload);
    let crc = crc32(&out);
    out[16..20].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes one frame from the front of `buf`. Returns the frame and the
/// number of bytes consumed. [`FrameError::Truncated`] means "read more
/// and try again"; every other error poisons the stream (framing can no
/// longer be trusted and the connection must be torn down).
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Truncated { have: buf.len(), need: FRAME_HEADER_LEN });
    }
    let magic = u16::from_le_bytes([buf[0], buf[1]]);
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let kind = FrameKind::from_u8(buf[2]).ok_or(FrameError::UnknownKind(buf[2]))?;
    if buf[3] != 0 {
        return Err(FrameError::BadFlags(buf[3]));
    }
    let seq = u64::from_le_bytes(buf[4..12].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::TooLarge { len, cap: MAX_FRAME_PAYLOAD });
    }
    let total = FRAME_HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(FrameError::Truncated { have: buf.len(), need: total });
    }
    let got = u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes"));
    let mut check = buf[..total].to_vec();
    check[16..20].copy_from_slice(&[0; 4]);
    let expect = crc32(&check);
    if expect != got {
        return Err(FrameError::BadCrc { expect, got });
    }
    Ok((Frame { kind, seq, payload: buf[FRAME_HEADER_LEN..total].to_vec() }, total))
}

// ---------------------------------------------------------------------
// Hello (handshake payload)
// ---------------------------------------------------------------------

/// Handshake payload: who is connecting and how much it has already seen.
/// `session` distinguishes a reconnecting peer (state intact, same
/// session) from a respawned one (state lost, new session) — the
/// supervisor re-initializes the latter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The connecting rank.
    pub rank: u32,
    /// Process incarnation (e.g. the OS pid, or any per-spawn unique id).
    pub session: u64,
    /// Highest contiguous `Data` sequence number this peer has processed
    /// from us; we replay everything after it.
    pub last_recv: u64,
}

impl Hello {
    pub fn to_bytes(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20);
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&self.session.to_le_bytes());
        out.extend_from_slice(&self.last_recv.to_le_bytes());
        out
    }

    pub fn from_bytes(b: &[u8]) -> Result<Self, FrameError> {
        if b.len() < 20 {
            return Err(FrameError::Truncated { have: b.len(), need: 20 });
        }
        Ok(Self {
            rank: u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")),
            session: u64::from_le_bytes(b[4..12].try_into().expect("8 bytes")),
            last_recv: u64::from_le_bytes(b[12..20].try_into().expect("8 bytes")),
        })
    }
}

// ---------------------------------------------------------------------
// NetChaos — socket-layer fault injection
// ---------------------------------------------------------------------

/// The fate [`NetChaos`] assigns to one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Written normally.
    Deliver,
    /// One bit of the encoded frame is flipped before the write; the
    /// receiver's CRC rejects it and tears the connection down.
    Corrupt,
    /// The frame is written twice (receiver deduplicates by sequence).
    Duplicate,
    /// The write is held for this many milliseconds first.
    DelayMs(u64),
    /// The connection is shut down without writing (a peer reset).
    Reset,
    /// Only a prefix of the frame is written, then the connection is shut
    /// down — the classic torn write.
    PartialWrite,
}

/// Seeded, deterministic socket-fault schedule — [`crate::ChaosPlan`]'s
/// sibling for real connections. The fate of the `ordinal`-th frame sent
/// on a lane is a pure function of `(seed, lane, ordinal)`; after
/// `horizon` frames per lane the link is clean, modeling partial synchrony
/// exactly like the in-process plan. Process kills are not drawn here —
/// they are injected by the driver that owns the child processes (see
/// `net_cluster`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetChaos {
    pub seed: u64,
    /// P(frame corrupted).
    pub corrupt_p: f64,
    /// P(frame duplicated).
    pub dup_p: f64,
    /// P(frame delayed); delays are 1..=`max_delay_ms` real milliseconds.
    pub delay_p: f64,
    pub max_delay_ms: u64,
    /// P(connection reset instead of the write).
    pub reset_p: f64,
    /// P(torn write: prefix then shutdown).
    pub partial_p: f64,
    /// Faults fire only for per-lane ordinals strictly below this.
    pub horizon: u64,
}

impl NetChaos {
    /// The inert plan.
    pub fn none() -> Self {
        Self {
            seed: 0,
            corrupt_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            max_delay_ms: 0,
            reset_p: 0.0,
            partial_p: 0.0,
            horizon: 0,
        }
    }

    /// A balanced plan: `rate` split evenly across the five fault kinds,
    /// delays of 1–3 ms, clean after `horizon` frames per lane. Degenerate
    /// inputs yield the inert plan, mirroring [`crate::ChaosPlan::seeded`].
    pub fn seeded(seed: u64, rate: f64, horizon: u64) -> Self {
        if rate.is_nan() || rate <= 0.0 || horizon == 0 {
            return Self::none();
        }
        let q = rate.min(1.0) / 5.0;
        Self {
            seed,
            corrupt_p: q,
            dup_p: q,
            delay_p: q,
            max_delay_ms: 3,
            reset_p: q,
            partial_p: q,
            horizon,
        }
    }

    pub fn is_none(&self) -> bool {
        self.horizon == 0
            || (self.corrupt_p <= 0.0
                && self.dup_p <= 0.0
                && self.delay_p <= 0.0
                && self.reset_p <= 0.0
                && self.partial_p <= 0.0)
    }

    /// Fate of the `ordinal`-th frame sent on `lane`. Pure and
    /// reproducible: same seed, same schedule, on every run.
    pub fn fate(&self, lane: u64, ordinal: u64) -> NetFault {
        if self.is_none() || ordinal >= self.horizon {
            return NetFault::Deliver;
        }
        let u = unit(mix(self.seed, &[11, lane, ordinal]));
        let mut edge = self.corrupt_p;
        if u < edge {
            return NetFault::Corrupt;
        }
        edge += self.dup_p;
        if u < edge {
            return NetFault::Duplicate;
        }
        edge += self.delay_p;
        if u < edge {
            let ms = 1 + mix(self.seed, &[12, lane, ordinal]) % self.max_delay_ms.max(1);
            return NetFault::DelayMs(ms);
        }
        edge += self.reset_p;
        if u < edge {
            return NetFault::Reset;
        }
        edge += self.partial_p;
        if u < edge {
            return NetFault::PartialWrite;
        }
        NetFault::Deliver
    }
}

// ---------------------------------------------------------------------
// Backoff — capped exponential with deterministic jitter
// ---------------------------------------------------------------------

/// Reconnect backoff: `base · factor^(attempt−1)` capped at `cap_ms`, then
/// scaled by a deterministic jitter factor in `[0.5, 1.0]` drawn from
/// SplitMix64 over `(seed, lane, attempt)` — no RNG state, no clock, so
/// every process computes the identical schedule and herds never
/// synchronize on the exact cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    pub base_ms: u64,
    pub factor: f64,
    pub cap_ms: u64,
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Self { base_ms: 10, factor: 2.0, cap_ms: 500, seed: 0 }
    }
}

impl Backoff {
    /// Delay before retry `attempt` (1-based) on `lane`, in milliseconds.
    /// Always ≥ 1 so a retry loop can never spin hot.
    pub fn delay_ms(&self, attempt: u32, lane: u64) -> u64 {
        let exp = attempt.saturating_sub(1).min(16);
        let raw = (self.base_ms as f64 * self.factor.powi(exp as i32)).min(self.cap_ms as f64);
        let jitter = 0.5 + 0.5 * unit(mix(self.seed, &[13, lane, attempt as u64]));
        ((raw * jitter) as u64).max(1)
    }
}

/// Heartbeat-based failure-detector parameters: probe every `interval`,
/// declare the peer dead after `deadline` without any frame from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    pub interval: Duration,
    pub deadline: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        Self { interval: Duration::from_millis(200), deadline: Duration::from_secs(5) }
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Transport-layer errors. `Timeout` is recoverable (probe and retry);
/// `PeerDead` means the failure detector has given up on this link and
/// supervision must replace it or degrade.
#[derive(Debug)]
pub enum NetError {
    /// Frame-codec failure (stream poisoned).
    Frame(FrameError),
    /// Socket I/O failure.
    Io { kind: std::io::ErrorKind, context: String },
    /// Nothing arrived within the deadline.
    Timeout { peer: String, waited: Duration },
    /// The link is down and could not be re-established.
    PeerDead { peer: String },
    /// The peer spoke, but not the protocol we expected.
    Protocol { peer: String, what: String },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Frame(e) => write!(f, "frame error: {e}"),
            NetError::Io { kind, context } => write!(f, "io error ({kind:?}): {context}"),
            NetError::Timeout { peer, waited } => {
                write!(f, "timeout waiting on {peer} after {waited:?}")
            }
            NetError::PeerDead { peer } => write!(f, "peer {peer} is dead"),
            NetError::Protocol { peer, what } => write!(f, "protocol error from {peer}: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

fn io_err(e: &std::io::Error, context: &str) -> NetError {
    NetError::Io { kind: e.kind(), context: context.to_string() }
}

// ---------------------------------------------------------------------
// Transport trait
// ---------------------------------------------------------------------

/// One bidirectional rank-to-rank link. Two implementations ship:
/// [`LocalTransport`] (deterministic, in-process, lossless) and
/// [`SocketTransport`] (real TCP with chaos, replay and reconnection).
/// Protocol code (`aaa-core::net`) is generic over this trait, so the
/// same worker loop runs under both.
pub trait Transport: Send {
    /// Sends one frame; returns its sequence number (0 for unsequenced
    /// control kinds). `Data` frames are buffered for replay until the
    /// peer acknowledges them.
    fn send(&mut self, kind: FrameKind, payload: &[u8]) -> Result<u64, NetError>;

    /// Receives the next application frame, transparently handling
    /// control traffic (acks are absorbed, heartbeats are auto-acked,
    /// duplicates are dropped). `None` blocks indefinitely.
    fn recv(&mut self, deadline: Option<Duration>) -> Result<Frame, NetError>;

    /// Human-readable peer label for diagnostics.
    fn peer(&self) -> String;
}

// ---------------------------------------------------------------------
// LocalTransport — the deterministic in-process implementation
// ---------------------------------------------------------------------

/// In-process transport over paired queues: lossless, ordered, zero
/// chaos. This is the `Transport` the deterministic mode runs on — unit
/// tests and the cross-transport equivalence suite drive the exact same
/// protocol code over it without sockets.
#[derive(Debug)]
pub struct LocalTransport {
    tx: std::sync::mpsc::Sender<Frame>,
    rx: std::sync::mpsc::Receiver<Frame>,
    next_seq: u64,
    peer: String,
}

impl LocalTransport {
    /// A connected pair: what `a` sends, `b` receives, and vice versa.
    pub fn pair(a: &str, b: &str) -> (LocalTransport, LocalTransport) {
        let (atx, brx) = std::sync::mpsc::channel();
        let (btx, arx) = std::sync::mpsc::channel();
        (
            LocalTransport { tx: atx, rx: arx, next_seq: 0, peer: b.to_string() },
            LocalTransport { tx: btx, rx: brx, next_seq: 0, peer: a.to_string() },
        )
    }
}

impl Transport for LocalTransport {
    fn send(&mut self, kind: FrameKind, payload: &[u8]) -> Result<u64, NetError> {
        let seq = if kind == FrameKind::Data {
            self.next_seq += 1;
            self.next_seq
        } else {
            0
        };
        self.tx
            .send(Frame { kind, seq, payload: payload.to_vec() })
            .map_err(|_| NetError::PeerDead { peer: self.peer.clone() })?;
        Ok(seq)
    }

    fn recv(&mut self, deadline: Option<Duration>) -> Result<Frame, NetError> {
        let start = Instant::now();
        loop {
            let frame = match deadline {
                None => {
                    self.rx.recv().map_err(|_| NetError::PeerDead { peer: self.peer.clone() })?
                }
                Some(limit) => {
                    let left = limit
                        .checked_sub(start.elapsed())
                        .ok_or(NetError::Timeout { peer: self.peer.clone(), waited: limit })?;
                    match self.rx.recv_timeout(left) {
                        Ok(f) => f,
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                            return Err(NetError::Timeout {
                                peer: self.peer.clone(),
                                waited: limit,
                            })
                        }
                        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                            return Err(NetError::PeerDead { peer: self.peer.clone() })
                        }
                    }
                }
            };
            match frame.kind {
                FrameKind::Heartbeat => {
                    // Liveness is answered by the transport itself, like
                    // the socket implementation does.
                    let _ = self.send(FrameKind::HeartbeatAck, &frame.payload.clone());
                }
                FrameKind::Ack => {}
                _ => return Ok(frame),
            }
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

// ---------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------

/// Live-connection state: the stream plus its read reassembly buffer.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// A framed, sequenced, chaos-aware TCP link.
///
/// * **Idempotent replay** — every `Data` frame is kept until the peer's
///   cumulative [`FrameKind::Ack`] covers it; on reconnect the handshake
///   exchanges last-seen sequence numbers and exactly the unacknowledged
///   suffix is retransmitted. The receiver drops duplicates by sequence,
///   so every fault mode reduces to at-least-once + dedup = exactly-once.
/// * **Dialer vs acceptor** — a link made by [`SocketTransport::dial`]
///   owns reconnection: any stream failure triggers redial under
///   [`Backoff`] with a fresh handshake. An accepted link
///   ([`SocketTransport::accept`]) cannot dial; when its stream dies it
///   reports the error and waits for the supervisor to [`SocketTransport::rebind`]
///   it onto the replacement connection.
/// * **Chaos** — outgoing frames draw a [`NetFault`] from the installed
///   [`NetChaos`]; corruption/duplication/delay are applied to the encoded
///   bytes, resets and partial writes kill the stream mid-frame.
pub struct SocketTransport {
    conn: Option<Conn>,
    /// `Some(addr)` for the dialing side; `None` for the accepted side.
    redial: Option<String>,
    /// Identity presented on (re)connect (dialing side).
    hello: Hello,
    backoff: Backoff,
    max_dial_attempts: u32,
    handshake_timeout: Duration,
    chaos: NetChaos,
    /// Chaos lane (stable across reconnects).
    lane: u64,
    /// Frames sent on this lane so far (the chaos ordinal).
    sends: u64,
    next_seq: u64,
    last_recv: u64,
    replay: VecDeque<(u64, Vec<u8>)>,
    /// Sequence numbers the peer has acknowledged.
    peer_acked: u64,
    /// Total successful reconnects (diagnostics).
    pub reconnects: u64,
    peer: String,
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketTransport")
            .field("peer", &self.peer)
            .field("up", &self.conn.is_some())
            .field("next_seq", &self.next_seq)
            .field("last_recv", &self.last_recv)
            .field("replay_depth", &self.replay.len())
            .finish()
    }
}

impl SocketTransport {
    /// Dials `addr`, performs the hello handshake, and returns a link
    /// that transparently reconnects (with capped, jittered backoff) for
    /// the rest of its life. `hello.rank` doubles as the chaos lane.
    pub fn dial(
        addr: &str,
        hello: Hello,
        chaos: NetChaos,
        backoff: Backoff,
        max_dial_attempts: u32,
        handshake_timeout: Duration,
    ) -> Result<Self, NetError> {
        let mut t = Self {
            conn: None,
            redial: Some(addr.to_string()),
            hello,
            backoff,
            max_dial_attempts,
            handshake_timeout,
            chaos,
            lane: 2 * hello.rank as u64 + 1,
            sends: 0,
            next_seq: 0,
            last_recv: 0,
            replay: VecDeque::new(),
            peer_acked: 0,
            reconnects: 0,
            peer: format!("coordinator@{addr}"),
        };
        t.reconnect()?;
        t.reconnects = 0; // the first dial is not a *re*connect
        Ok(t)
    }

    /// Wraps an accepted stream after reading its [`Hello`] (done by
    /// [`read_hello`]), replies with `HelloAck`, and replays anything the
    /// peer reports missing. The acceptor's chaos lane is `2·rank`.
    pub fn accept(stream: TcpStream, hello: Hello, chaos: NetChaos) -> Result<Self, NetError> {
        let mut t = Self {
            conn: None,
            redial: None,
            hello,
            backoff: Backoff::default(),
            max_dial_attempts: 1,
            handshake_timeout: Duration::from_secs(5),
            chaos,
            lane: 2 * hello.rank as u64,
            sends: 0,
            next_seq: 0,
            last_recv: 0,
            replay: VecDeque::new(),
            peer_acked: 0,
            reconnects: 0,
            peer: format!("rank{}", hello.rank),
        };
        t.install(stream, hello.last_recv)?;
        Ok(t)
    }

    /// Rebinds an accepted link onto a replacement connection after the
    /// peer reconnected (same session) — carried sequence/replay state
    /// survives, so nothing is lost and nothing is applied twice.
    pub fn rebind(&mut self, stream: TcpStream, hello: Hello) -> Result<(), NetError> {
        self.hello = hello;
        self.install(stream, hello.last_recv)?;
        self.reconnects += 1;
        net_trace!("{} rebind ok: peer cursor {}", self.peer, hello.last_recv);
        Ok(())
    }

    /// Resets all sequencing state — used when the peer is a *fresh*
    /// process (new session) whose state, including its receive cursor,
    /// started over.
    pub fn reset_session(&mut self) {
        self.next_seq = 0;
        self.last_recv = 0;
        self.peer_acked = 0;
        self.replay.clear();
    }

    /// Whether the underlying stream is currently up.
    pub fn is_up(&self) -> bool {
        self.conn.is_some()
    }

    /// Marks the stream down (e.g. after the supervisor killed the
    /// process behind it).
    pub fn mark_down(&mut self) {
        self.conn = None;
    }

    /// Blocks until the peer has acknowledged every sequenced frame sent
    /// so far, healing the link (reconnect + replay) whenever progress
    /// stalls. Only call when no inbound application frames are expected
    /// — any that arrive while draining are discarded. This is the
    /// sender's end-of-stream barrier: after it returns `Ok`, every
    /// `Data` frame has been processed by the peer exactly once.
    pub fn flush_acked(&mut self, deadline: Duration) -> Result<(), NetError> {
        let start = Instant::now();
        let mut last_progress = self.peer_acked;
        let mut stall = Instant::now();
        while self.peer_acked < self.next_seq {
            if start.elapsed() >= deadline {
                return Err(NetError::Timeout { peer: self.peer.clone(), waited: deadline });
            }
            match self.recv(Some(Duration::from_millis(50))) {
                Ok(_) => {}
                Err(NetError::Timeout { .. }) => {
                    // No acks flowing. If nothing moved for a while the
                    // peer probably dropped our unacked tail (e.g. a CRC
                    // reject it has not told us about): force a reconnect
                    // so the replay buffer retransmits it.
                    if self.peer_acked == last_progress
                        && stall.elapsed() > Duration::from_millis(100)
                        && self.redial.is_some()
                    {
                        self.conn = None;
                        self.reconnect()?;
                        stall = Instant::now();
                    }
                }
                Err(NetError::PeerDead { peer }) => return Err(NetError::PeerDead { peer }),
                Err(_) => {
                    self.conn = None;
                    if self.redial.is_some() {
                        self.reconnect()?;
                    }
                }
            }
            if self.peer_acked != last_progress {
                last_progress = self.peer_acked;
                stall = Instant::now();
            }
        }
        Ok(())
    }

    /// Installs a fresh stream: acceptor side sends `HelloAck` with its
    /// receive cursor; both sides then replay unacknowledged frames past
    /// the peer's cursor.
    fn install(&mut self, stream: TcpStream, peer_last_recv: u64) -> Result<(), NetError> {
        stream.set_nodelay(true).ok();
        self.conn = Some(Conn { stream, buf: Vec::new() });
        if self.redial.is_none() {
            let ack = Frame {
                kind: FrameKind::HelloAck,
                seq: 0,
                payload: self.last_recv.to_le_bytes().to_vec(),
            };
            self.write_plain(&encode_frame(&ack))?;
        }
        self.replay_after(peer_last_recv)
    }

    /// Retransmits every buffered frame with `seq > cursor`.
    fn replay_after(&mut self, cursor: u64) -> Result<(), NetError> {
        let pending: Vec<Vec<u8>> = self
            .replay
            .iter()
            .filter(|(seq, _)| *seq > cursor)
            .map(|(_, bytes)| bytes.clone())
            .collect();
        for bytes in pending {
            self.write_with_chaos(&bytes)?;
        }
        Ok(())
    }

    /// Dial + handshake loop under backoff. On success the unacked suffix
    /// is replayed.
    fn reconnect(&mut self) -> Result<(), NetError> {
        let addr = match &self.redial {
            Some(a) => a.clone(),
            None => return Err(NetError::PeerDead { peer: self.peer.clone() }),
        };
        self.conn = None;
        for attempt in 1..=self.max_dial_attempts.max(1) {
            if attempt > 1 {
                std::thread::sleep(Duration::from_millis(
                    self.backoff.delay_ms(attempt - 1, self.lane),
                ));
            }
            let stream = match connect(&addr) {
                Ok(s) => s,
                Err(e) => {
                    net_trace!("{} reconnect attempt {attempt}: connect failed: {e}", self.peer);
                    continue;
                }
            };
            stream.set_nodelay(true).ok();
            // Handshake is deliberately chaos-free: chaos models a faulty
            // network *channel*, and a handshake that can never complete
            // would turn every finite-horizon plan into a dead cluster.
            let mut hello = self.hello;
            hello.last_recv = self.last_recv;
            let frame = Frame { kind: FrameKind::Hello, seq: 0, payload: hello.to_bytes() };
            let mut conn = Conn { stream, buf: Vec::new() };
            if conn.stream.write_all(&encode_frame(&frame)).is_err() {
                continue;
            }
            net_trace!("{} reconnect attempt {attempt}: hello sent, awaiting ack", self.peer);
            match read_frame_from(&mut conn, Some(self.handshake_timeout), &self.peer) {
                Ok(f) if f.kind == FrameKind::HelloAck && f.payload.len() >= 8 => {
                    let cursor = u64::from_le_bytes(f.payload[..8].try_into().expect("8 bytes"));
                    self.conn = Some(conn);
                    // A chaos fault during replay kills this stream too;
                    // that is a failed attempt, not a dead peer.
                    if self.replay_after(cursor).is_err() {
                        net_trace!("{} reconnect attempt {attempt}: replay failed", self.peer);
                        self.conn = None;
                        continue;
                    }
                    self.reconnects += 1;
                    net_trace!(
                        "{} reconnect attempt {attempt}: up, replayed past {cursor}",
                        self.peer
                    );
                    return Ok(());
                }
                other => {
                    net_trace!(
                        "{} reconnect attempt {attempt}: handshake got {other:?}",
                        self.peer
                    );
                    continue;
                }
            }
        }
        Err(NetError::PeerDead { peer: self.peer.clone() })
    }

    /// Writes raw bytes, no chaos (handshake / acks of the handshake).
    fn write_plain(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        let peer = self.peer.clone();
        let conn = self.conn.as_mut().ok_or(NetError::PeerDead { peer: peer.clone() })?;
        conn.stream.write_all(bytes).map_err(|e| {
            self.conn = None;
            io_err(&e, "write")
        })
    }

    /// Writes one encoded frame through the chaos plan.
    fn write_with_chaos(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        let fate = self.chaos.fate(self.lane, self.sends);
        self.sends += 1;
        let peer = self.peer.clone();
        let conn = match self.conn.as_mut() {
            Some(c) => c,
            None => return Err(NetError::PeerDead { peer }),
        };
        let broken = |conn: &mut Option<Conn>, what: &str| -> NetError {
            *conn = None;
            NetError::Io { kind: std::io::ErrorKind::ConnectionReset, context: what.to_string() }
        };
        match fate {
            NetFault::Deliver => {
                conn.stream.write_all(bytes).map_err(|e| {
                    self.conn = None;
                    io_err(&e, "write")
                })?;
            }
            NetFault::Corrupt => {
                net_trace!(
                    "{} fault: corrupt (lane {} send {})",
                    self.peer,
                    self.lane,
                    self.sends - 1
                );
                let mut mangled = bytes.to_vec();
                let bit =
                    mix(self.chaos.seed, &[14, self.lane, self.sends]) as usize % (bytes.len() * 8);
                mangled[bit / 8] ^= 1 << (bit % 8);
                conn.stream.write_all(&mangled).map_err(|e| {
                    self.conn = None;
                    io_err(&e, "write")
                })?;
            }
            NetFault::Duplicate => {
                let twice: Vec<u8> = bytes.iter().chain(bytes.iter()).copied().collect();
                conn.stream.write_all(&twice).map_err(|e| {
                    self.conn = None;
                    io_err(&e, "write")
                })?;
            }
            NetFault::DelayMs(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                conn.stream.write_all(bytes).map_err(|e| {
                    self.conn = None;
                    io_err(&e, "write")
                })?;
            }
            NetFault::Reset => {
                net_trace!(
                    "{} fault: reset (lane {} send {})",
                    self.peer,
                    self.lane,
                    self.sends - 1
                );
                conn.stream.shutdown(std::net::Shutdown::Both).ok();
                return Err(broken(&mut self.conn, "injected connection reset"));
            }
            NetFault::PartialWrite => {
                net_trace!(
                    "{} fault: partial write (lane {} send {})",
                    self.peer,
                    self.lane,
                    self.sends - 1
                );
                let half = &bytes[..bytes.len() / 2];
                conn.stream.write_all(half).ok();
                conn.stream.shutdown(std::net::Shutdown::Both).ok();
                return Err(broken(&mut self.conn, "injected partial write"));
            }
        }
        Ok(())
    }

    /// Sends with dialer-side self-healing: a failed write triggers a
    /// reconnect (which replays the sequenced suffix) and the send is
    /// considered done — the frame sits in the replay buffer either way.
    /// Control frames are best-effort across a heal by design.
    fn send_healing(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        match self.write_with_chaos(bytes) {
            Ok(()) => Ok(()),
            Err(e) => {
                if self.redial.is_some() {
                    self.reconnect()
                } else {
                    Err(e)
                }
            }
        }
    }
}

/// Connects with each resolved address tried once.
fn connect(addr: &str) -> std::io::Result<TcpStream> {
    let addrs: Vec<_> = addr.to_socket_addrs()?.collect();
    let mut last = std::io::Error::new(std::io::ErrorKind::NotFound, "no address");
    for a in addrs {
        match TcpStream::connect_timeout(&a, Duration::from_secs(2)) {
            Ok(s) => return Ok(s),
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// Reads one well-formed frame from `conn`, within `deadline`. Framing
/// errors other than `Truncated` poison the stream and are returned as
/// [`NetError::Frame`]; EOF mid-frame maps to a connection-reset I/O
/// error.
fn read_frame_from(
    conn: &mut Conn,
    deadline: Option<Duration>,
    peer: &str,
) -> Result<Frame, NetError> {
    let start = Instant::now();
    let mut last_progress = Instant::now();
    loop {
        match decode_frame(&conn.buf) {
            Ok((frame, used)) => {
                conn.buf.drain(..used);
                return Ok(frame);
            }
            Err(FrameError::Truncated { .. }) => {}
            Err(e) => return Err(NetError::Frame(e)),
        }
        // A frame the sender started must finish promptly: senders write
        // frames atomically, so a partial frame that makes no byte
        // progress for FRAME_STALL_TIMEOUT means the stream is desynced —
        // typically a corrupted length field promising bytes that will
        // never come (the CRC can only be verified once the whole claimed
        // length arrives). Poisoning here, instead of waiting out the
        // caller's (possibly much longer) idle deadline, lets the dialer
        // redial while the supervisor's window is still open.
        if !conn.buf.is_empty() && last_progress.elapsed() >= FRAME_STALL_TIMEOUT {
            return Err(NetError::Io {
                kind: std::io::ErrorKind::InvalidData,
                context: format!("frame stalled mid-delivery ({} bytes buffered)", conn.buf.len()),
            });
        }
        let timeout = match deadline {
            Some(limit) => {
                let left = limit
                    .checked_sub(start.elapsed())
                    .ok_or(NetError::Timeout { peer: peer.to_string(), waited: limit })?;
                Some(left.max(Duration::from_millis(1)))
            }
            None => None,
        };
        let timeout = if conn.buf.is_empty() {
            timeout
        } else {
            // Cap the wait so the stall check above fires on schedule.
            let stall_left = FRAME_STALL_TIMEOUT
                .saturating_sub(last_progress.elapsed())
                .max(Duration::from_millis(1));
            Some(timeout.map_or(stall_left, |t| t.min(stall_left)))
        };
        conn.stream.set_read_timeout(timeout).map_err(|e| io_err(&e, "set_read_timeout"))?;
        let mut chunk = [0u8; 16 * 1024];
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                return Err(NetError::Io {
                    kind: std::io::ErrorKind::ConnectionReset,
                    context: "eof mid-stream".to_string(),
                })
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Loop back; the deadline check at the top fires when due.
                if let Some(limit) = deadline {
                    if start.elapsed() >= limit {
                        return Err(NetError::Timeout { peer: peer.to_string(), waited: limit });
                    }
                }
            }
            Err(e) => return Err(io_err(&e, "read")),
        }
    }
}

/// Reads the opening [`Hello`] from a freshly accepted stream — the
/// acceptor calls this before wrapping the stream in
/// [`SocketTransport::accept`] or rebinding an existing link.
pub fn read_hello(stream: &mut TcpStream, deadline: Duration) -> Result<Hello, NetError> {
    let mut conn =
        Conn { stream: stream.try_clone().map_err(|e| io_err(&e, "clone"))?, buf: Vec::new() };
    let frame = read_frame_from(&mut conn, Some(deadline), "incoming")?;
    if frame.kind != FrameKind::Hello {
        return Err(NetError::Protocol {
            peer: "incoming".to_string(),
            what: format!("expected Hello, got {:?}", frame.kind),
        });
    }
    Hello::from_bytes(&frame.payload).map_err(NetError::Frame)
}

impl Transport for SocketTransport {
    fn send(&mut self, kind: FrameKind, payload: &[u8]) -> Result<u64, NetError> {
        if self.conn.is_none() {
            if self.redial.is_some() {
                self.reconnect()?;
            } else {
                return Err(NetError::PeerDead { peer: self.peer.clone() });
            }
        }
        let sequenced = kind == FrameKind::Data;
        let seq = if sequenced {
            self.next_seq += 1;
            self.next_seq
        } else {
            0
        };
        let bytes = encode_frame(&Frame { kind, seq, payload: payload.to_vec() });
        if sequenced {
            self.replay.push_back((seq, bytes.clone()));
            // Keep the buffer bounded even if acks are slow: drop entries
            // the peer has acknowledged.
            while self.replay.front().is_some_and(|(s, _)| *s <= self.peer_acked) {
                self.replay.pop_front();
            }
        }
        self.send_healing(&bytes)?;
        Ok(seq)
    }

    fn recv(&mut self, deadline: Option<Duration>) -> Result<Frame, NetError> {
        let start = Instant::now();
        loop {
            if let Some(limit) = deadline {
                if start.elapsed() >= limit {
                    return Err(NetError::Timeout { peer: self.peer.clone(), waited: limit });
                }
            }
            if self.conn.is_none() {
                if self.redial.is_some() {
                    self.reconnect()?;
                } else {
                    return Err(NetError::PeerDead { peer: self.peer.clone() });
                }
            }
            let left = deadline.map(|limit| limit.saturating_sub(start.elapsed()));
            let peer = self.peer.clone();
            let result = {
                let conn = self.conn.as_mut().expect("ensured above");
                read_frame_from(conn, left, &peer)
            };
            let frame = match result {
                Ok(f) => f,
                Err(NetError::Timeout { peer, waited }) => {
                    // An *empty* buffer at the deadline is idleness; a
                    // partial frame is a wedged or desynced stream — e.g. a
                    // corrupted length field promising bytes that never
                    // come. The CRC can only be checked once the whole
                    // frame arrives, so the deadline doubles as the desync
                    // detector: tear down and let replay resynchronize.
                    let partial = self.conn.as_ref().map(|c| c.buf.len()).unwrap_or(0);
                    if partial > 0 {
                        net_trace!(
                            "{} recv: deadline with {partial}-byte partial frame, tearing down",
                            self.peer
                        );
                        self.conn = None;
                        if self.redial.is_none() {
                            return Err(NetError::PeerDead { peer: self.peer.clone() });
                        }
                    }
                    return Err(NetError::Timeout { peer, waited });
                }
                Err(e) => {
                    // Stream poisoned (bad CRC, reset, EOF): tear down. The
                    // dialer heals on the next loop pass; the acceptor
                    // reports and waits for a rebind.
                    net_trace!("{} recv: stream poisoned: {e}", self.peer);
                    self.conn = None;
                    if self.redial.is_some() {
                        continue;
                    }
                    return Err(NetError::PeerDead { peer: self.peer.clone() });
                }
            };
            match frame.kind {
                FrameKind::Heartbeat => {
                    let ack = encode_frame(&Frame {
                        kind: FrameKind::HeartbeatAck,
                        seq: 0,
                        payload: frame.payload,
                    });
                    if self.write_with_chaos(&ack).is_err() && self.redial.is_none() {
                        return Err(NetError::PeerDead { peer: self.peer.clone() });
                    }
                }
                FrameKind::Ack => {
                    if frame.payload.len() >= 8 {
                        let upto =
                            u64::from_le_bytes(frame.payload[..8].try_into().expect("8 bytes"));
                        self.peer_acked = self.peer_acked.max(upto);
                        while self.replay.front().is_some_and(|(s, _)| *s <= self.peer_acked) {
                            self.replay.pop_front();
                        }
                    }
                }
                FrameKind::Hello | FrameKind::HelloAck => {
                    // Stale handshake remnants — ignore.
                }
                FrameKind::Data => {
                    if frame.seq <= self.last_recv {
                        // Duplicate (chaos or replay overlap): re-ack so the
                        // sender can prune, then drop it.
                        let ack = encode_frame(&Frame {
                            kind: FrameKind::Ack,
                            seq: 0,
                            payload: self.last_recv.to_le_bytes().to_vec(),
                        });
                        let _ = self.write_with_chaos(&ack);
                    } else if frame.seq != self.last_recv + 1 {
                        // A gap means framing lost something silently —
                        // force a reconnect so replay fills it.
                        net_trace!(
                            "{} recv: seq gap (got {}, expected {})",
                            self.peer,
                            frame.seq,
                            self.last_recv + 1
                        );
                        self.conn = None;
                        if self.redial.is_none() {
                            return Err(NetError::PeerDead { peer: self.peer.clone() });
                        }
                    } else {
                        self.last_recv = frame.seq;
                        let ack = encode_frame(&Frame {
                            kind: FrameKind::Ack,
                            seq: 0,
                            payload: self.last_recv.to_le_bytes().to_vec(),
                        });
                        let _ = self.write_with_chaos(&ack);
                        return Ok(frame);
                    }
                }
                FrameKind::HeartbeatAck | FrameKind::Shutdown => return Ok(frame),
            }
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(kind: FrameKind, seq: u64, payload: &[u8]) {
        let frame = Frame { kind, seq, payload: payload.to_vec() };
        let bytes = encode_frame(&frame);
        let (back, used) = decode_frame(&bytes).expect("decodes");
        assert_eq!(back, frame);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn frame_roundtrip_all_kinds() {
        for (i, kind) in FrameKind::ALL.iter().enumerate() {
            roundtrip(*kind, i as u64 * 7, &[i as u8; 13]);
            roundtrip(*kind, 0, &[]);
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame =
            Frame { kind: FrameKind::Data, seq: 42, payload: b"the payload under test".to_vec() };
        let bytes = encode_frame(&frame);
        for bit in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            match decode_frame(&bad) {
                Err(_) => {}
                Ok((decoded, used)) => {
                    panic!("bit flip {bit} went undetected: {decoded:?} ({used} bytes consumed)")
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let frame = Frame { kind: FrameKind::Hello, seq: 0, payload: vec![9; 64] };
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(FrameError::Truncated { have, need }) => {
                    assert_eq!(have, cut);
                    assert!(need > cut);
                }
                other => panic!("truncation at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = encode_frame(&Frame { kind: FrameKind::Data, seq: 1, payload: vec![] });
        bytes[12..16].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn hello_roundtrip_and_truncation() {
        let h = Hello { rank: 3, session: 0xdead_beef, last_recv: 17 };
        assert_eq!(Hello::from_bytes(&h.to_bytes()).unwrap(), h);
        assert!(matches!(Hello::from_bytes(&[0; 19]), Err(FrameError::Truncated { .. })));
    }

    #[test]
    fn net_chaos_is_deterministic_and_horizon_bounded() {
        let c = NetChaos::seeded(7, 0.9, 50);
        for ord in 0..50 {
            assert_eq!(c.fate(1, ord), c.fate(1, ord));
        }
        assert_eq!(c.fate(1, 50), NetFault::Deliver);
        assert_eq!(c.fate(1, 5000), NetFault::Deliver);
        assert!(NetChaos::seeded(7, 0.0, 50).is_none());
        assert!(NetChaos::seeded(7, 0.5, 0).is_none());
        // A high rate exercises every fault kind somewhere in-horizon.
        let mut kinds = std::collections::HashSet::new();
        for lane in 0..8 {
            for ord in 0..50 {
                kinds.insert(std::mem::discriminant(&c.fate(lane, ord)));
            }
        }
        assert!(kinds.len() >= 5, "only {} fault kinds drawn", kinds.len());
    }

    #[test]
    fn backoff_schedule_is_deterministic_capped_and_jittered() {
        let b = Backoff { base_ms: 10, factor: 2.0, cap_ms: 200, seed: 3 };
        for attempt in 1..10 {
            assert_eq!(b.delay_ms(attempt, 0), b.delay_ms(attempt, 0));
            assert!(b.delay_ms(attempt, 0) >= 1);
            assert!(b.delay_ms(attempt, 0) <= 200);
        }
        // Jitter keeps the delay within [raw/2, raw].
        let raw = 40;
        let d = b.delay_ms(3, 1);
        assert!((raw / 2..=raw).contains(&d), "jittered delay {d} outside [{}, {raw}]", raw / 2);
        // Different lanes decorrelate somewhere in the schedule.
        assert!((1..10).any(|a| b.delay_ms(a, 0) != b.delay_ms(a, 1)));
    }

    #[test]
    fn local_pair_delivers_and_acks_heartbeats() {
        let (mut a, mut b) = LocalTransport::pair("a", "b");
        a.send(FrameKind::Data, b"x").unwrap();
        let f = b.recv(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(f.payload, b"x");
        assert_eq!(f.seq, 1);
        // Heartbeats are auto-acked by the receiving transport.
        a.send(FrameKind::Heartbeat, b"nonce").unwrap();
        let waiter = std::thread::spawn(move || b.recv(Some(Duration::from_secs(1))));
        let ack = a.recv(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(ack.kind, FrameKind::HeartbeatAck);
        assert_eq!(ack.payload, b"nonce");
        drop(waiter);
    }

    #[test]
    fn socket_link_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let dialer = std::thread::spawn(move || {
            SocketTransport::dial(
                &addr,
                Hello { rank: 0, session: 1, last_recv: 0 },
                NetChaos::none(),
                Backoff::default(),
                3,
                Duration::from_secs(2),
            )
            .unwrap()
        });
        let (mut stream, _) = listener.accept().unwrap();
        let hello = read_hello(&mut stream, Duration::from_secs(2)).unwrap();
        assert_eq!(hello.rank, 0);
        let mut server = SocketTransport::accept(stream, hello, NetChaos::none()).unwrap();
        let mut client = dialer.join().unwrap();
        client.send(FrameKind::Data, b"ping").unwrap();
        let f = server.recv(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(f.payload, b"ping");
        server.send(FrameKind::Data, b"pong").unwrap();
        let f = client.recv(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(f.payload, b"pong");
        // Timeout surfaces as a typed error, not a hang.
        assert!(matches!(
            client.recv(Some(Duration::from_millis(50))),
            Err(NetError::Timeout { .. })
        ));
    }

    #[test]
    fn chaotic_link_still_delivers_every_frame_exactly_once() {
        // Aggressive chaos on the client side; the replay + dedup machinery
        // must still deliver 1..=N in order, each exactly once.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let chaos = NetChaos::seeded(99, 0.6, 200);
        let client_thread = std::thread::spawn(move || {
            let mut client = SocketTransport::dial(
                &addr,
                Hello { rank: 1, session: 7, last_recv: 0 },
                chaos,
                Backoff { base_ms: 1, factor: 2.0, cap_ms: 20, seed: 5 },
                50,
                Duration::from_secs(2),
            )
            .unwrap();
            for i in 0u64..40 {
                client.send(FrameKind::Data, &i.to_le_bytes()).unwrap();
            }
            // Drain: heal the link until the server has acked all 40.
            client.flush_acked(Duration::from_secs(15)).unwrap();
        });
        let mut server: Option<SocketTransport> = None;
        let mut got = Vec::new();
        let start = Instant::now();
        listener.set_nonblocking(true).unwrap();
        while got.len() < 40 && start.elapsed() < Duration::from_secs(20) {
            // Accept fresh connections (initial + every chaos-triggered
            // reconnect) and (re)bind them to the link.
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nonblocking(false).unwrap();
                    if let Ok(hello) = read_hello(&mut stream, Duration::from_secs(2)) {
                        match server.as_mut() {
                            None => {
                                server = Some(
                                    SocketTransport::accept(stream, hello, NetChaos::none())
                                        .unwrap(),
                                );
                            }
                            Some(s) => {
                                let _ = s.rebind(stream, hello);
                            }
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("accept failed: {e}"),
            }
            if let Some(s) = server.as_mut() {
                match s.recv(Some(Duration::from_millis(100))) {
                    Ok(f) if f.kind == FrameKind::Data => {
                        got.push(u64::from_le_bytes(f.payload[..8].try_into().unwrap()));
                    }
                    Ok(_) => {}
                    Err(_) => {} // link down; wait for the reconnect
                }
            }
        }
        client_thread.join().unwrap();
        assert_eq!(got, (0u64..40).collect::<Vec<_>>(), "lost/duplicated/reordered frames");
    }
}
