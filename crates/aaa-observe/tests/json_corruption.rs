//! Corruption suite for the hand-rolled JSON parser, mirroring the
//! aaa-store equivalence suite's 1-bit-flip/truncation pattern: every
//! byte-level corruption of a well-formed report document must come back
//! as `Ok` (the flip landed somewhere inert, e.g. inside a digit) or a
//! **typed** `JsonError` — never a panic, never an abort, never a hang.

use aaa_observe::{Json, JsonError, PhaseReport, QualityPoint, RankReport, RunReport};

/// A representative nested report document — objects inside arrays inside
/// objects, strings, floats, and enough length that flips land in every
/// syntactic position class.
fn sample_doc() -> String {
    let report = RunReport {
        scenario: "fig4:corruption".into(),
        scale: 300,
        procs: 4,
        seed: 42,
        messages: 1234,
        bytes: 56789,
        supersteps: 17,
        collectives: 34,
        checkpoints: 2,
        restores: 1,
        rc_steps: 15,
        sim_comm_us: 10_250.5,
        sim_compute_us: 8_400.25,
        wall_us: 90_000.75,
        phases: vec![
            PhaseReport {
                name: "dd".into(),
                count: 1,
                sim_us: 1.5,
                wall_us: 2.5,
                messages: 0,
                bytes: 0,
            },
            PhaseReport {
                name: "rc_step".into(),
                count: 15,
                sim_us: 100.0,
                wall_us: 80.0,
                messages: 600,
                bytes: 48_000,
            },
        ],
        ranks: vec![
            RankReport { rank: -1, spans: 4, sim_busy_us: 9.0, wall_busy_us: 8.0 },
            RankReport { rank: 0, spans: 30, sim_busy_us: 50.0, wall_busy_us: 40.0 },
            RankReport { rank: 1, spans: 31, sim_busy_us: 51.0, wall_busy_us: 41.0 },
        ],
        quality: vec![
            QualityPoint { rc_step: 1, error: 0.5, top_k_recall: 0.25 },
            QualityPoint { rc_step: 15, error: 0.0, top_k_recall: 1.0 },
        ],
        ..RunReport::default()
    };
    report.to_json_string()
}

#[test]
fn the_sample_doc_round_trips() {
    let text = sample_doc();
    let doc = Json::parse(&text).expect("uncorrupted doc parses");
    let report = RunReport::from_json(&doc).expect("uncorrupted doc decodes");
    assert_eq!(report.scenario, "fig4:corruption");
    assert_eq!(report.rc_steps, 15);
}

/// Flip one bit in every byte position. The parser must return a typed
/// result for each — `Ok` when the flip is inert or produces different
/// but valid JSON, a typed error otherwise. A panic fails the test
/// harness; an infinite loop trips the test timeout.
#[test]
fn every_single_bit_flip_is_handled() {
    let bytes = sample_doc().into_bytes();
    for pos in 0..bytes.len() {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[pos] ^= 1 << bit;
            match Json::parse_bytes(&bad) {
                Ok(doc) => {
                    // The decoder above the parser must also stay typed.
                    let _ = RunReport::from_json(&doc);
                }
                Err(JsonError::Syntax { at, .. }) => {
                    assert!(at <= bad.len(), "error offset {at} beyond input at byte {pos}");
                }
                Err(JsonError::Shape(_)) => {}
            }
        }
    }
}

/// Truncate the document at every byte boundary: every prefix must fail
/// with a typed syntax error (or, for the empty-side cases, still be
/// typed) — never panic on a dangling escape, half a literal, or an
/// unclosed string.
#[test]
fn every_truncation_is_a_typed_error() {
    // Trim trailing whitespace first — cutting only a final newline would
    // (correctly) still parse.
    let bytes = sample_doc().trim_end().as_bytes().to_vec();
    for cut in 0..bytes.len() {
        match Json::parse_bytes(&bytes[..cut]) {
            Ok(_) => panic!("truncation at byte {cut} parsed as a complete document"),
            Err(JsonError::Syntax { at, .. }) => {
                assert!(at <= cut, "error offset {at} beyond truncated input of {cut} bytes");
            }
            Err(JsonError::Shape(what)) => {
                panic!("truncation at byte {cut} produced a shape error: {what}")
            }
        }
    }
}

#[test]
fn invalid_utf8_is_a_typed_error_at_the_right_offset() {
    let mut bytes = sample_doc().into_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] = 0xFF; // never valid in UTF-8
    match Json::parse_bytes(&bytes) {
        Err(JsonError::Syntax { at, what }) => {
            assert_eq!(at, mid, "error should point at the first invalid byte");
            assert!(what.contains("UTF-8"), "unexpected message: {what}");
        }
        other => panic!("invalid UTF-8 must be a typed syntax error, got {other:?}"),
    }
    // A continuation byte with no lead byte is also caught.
    assert!(Json::parse_bytes(&[b'[', 0x80, b']']).is_err());
}

/// Deep nesting must hit the depth guard as a typed error, not blow the
/// stack: the parser is recursive-descent, so an attacker-controlled
/// `[[[[…` would otherwise overflow.
#[test]
fn pathological_nesting_is_rejected_not_overflowed() {
    for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
        let deep = format!("{}null{}", open.repeat(10_000), close.repeat(10_000));
        match Json::parse(&deep) {
            Err(JsonError::Syntax { what, .. }) => {
                assert!(what.contains("nesting"), "unexpected message: {what}")
            }
            other => panic!("10k-deep nesting must be a typed error, got {other:?}"),
        }
    }
    // Moderate nesting (within the guard) still parses fine.
    let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
    assert!(Json::parse(&ok).is_ok());
}

/// Classic hostile fragments: dangling escapes, bare values, trailing
/// garbage, unterminated strings, lone surrogate escapes, huge exponents.
#[test]
fn hostile_fragments_are_typed_errors_or_finite_values() {
    let cases: &[&str] = &[
        "",
        "   ",
        "\"",
        "\"\\",
        "\"\\u",
        "\"\\u12",
        "\"\\uZZZZ\"",
        "{",
        "{\"a\"",
        "{\"a\":}",
        "{\"a\":1,}",
        "[1,]",
        "[1 2]",
        "tru",
        "nul",
        "-",
        "1e",
        "1e+",
        "0x10",
        "1.2.3",
        "{\"a\":1}garbage",
        "[]\n[]",
        "\u{FEFF}{}",
        "1e999999",
        "-1e999999",
    ];
    for case in cases {
        match Json::parse(case) {
            Ok(Json::Num(n)) => assert!(!n.is_nan(), "case {case:?} parsed to NaN"),
            Ok(_) | Err(JsonError::Syntax { .. }) | Err(JsonError::Shape(_)) => {}
        }
    }
}
