//! Typed span events: the unit of observability.
//!
//! Every event describes one span of work (or an instant) on one lane —
//! a rank, or the driver — stamped with *both* clocks the runtime keeps:
//! real wall time of the in-process execution, and the LogP-simulated
//! cluster time. The simulated clock is the paper-comparable one (§IV.C),
//! so the Chrome-trace exporter and the perf gate are built on it; wall
//! time rides along in the event for transparency.

/// Lane id for events that belong to the driver/orchestrator rather than
/// to any rank (exchange pricing, collectives, checkpoints, retries).
pub const DRIVER_LANE: i64 = -1;

/// What kind of work a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One rank's compute slice of a BSP superstep (produce, consume, or a
    /// plain `step`). Per-rank lane; duration is that rank's measured time.
    Superstep,
    /// The priced message-routing phase of an exchange (driver lane;
    /// duration is the LogP all-to-all cost, counters carry the traffic).
    Exchange,
    /// A collective: broadcast or all-reduction (driver lane; duration is
    /// the LogP tree cost, including any chaos retransmission penalty).
    Collective,
    /// One whole recombination step (driver lane; brackets the exchange
    /// and quiescence reduction of that step).
    RcStep,
    /// A checkpoint: full engine snapshot taken at a superstep barrier.
    Checkpoint,
    /// An engine rebuilt from a snapshot (restore / supervised fallback).
    Restore,
    /// A failed rank rebuilt and min-merged back in (`recover_rank`).
    Recovery,
    /// A supervised retry: backoff charged after a detected fault incident.
    Retry,
    /// A quiescence-time verification pass (full resend after silent
    /// faults).
    Verification,
    /// The domain-decomposition phase (partitioner run at construction).
    DomainDecomposition,
    /// A ChangeLog drain: queued dynamic changes applied at an RC-step
    /// barrier (driver lane; `messages` carries the number of changes
    /// applied).
    Drain,
    /// A published-view refresh: the engine snapshotting closeness (and
    /// bounds) into a new epoch for concurrent readers. Driver-side work —
    /// zero simulated duration, real cost rides in wall_dur.
    Publish,
    /// A transport connection established (socket transport: a worker's
    /// link came up; `rank` is the worker's lane).
    Connection,
    /// A transport link healed after a failure: redial or rebind, with
    /// replay of the unacknowledged frame suffix.
    Reconnect,
    /// A liveness probe over the transport (failure-detector traffic).
    Heartbeat,
    /// A budgeted row migration planned by the background rebalancer:
    /// ownership broadcast plus the priced row exchange (driver lane;
    /// `messages` carries the number of moved vertices, `bytes` the
    /// migration traffic).
    Migration,
}

impl SpanKind {
    /// Stable lowercase name — used as the phase key in [`RunReport`]s and
    /// as the span name in Chrome traces.
    ///
    /// [`RunReport`]: crate::RunReport
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Superstep => "superstep",
            SpanKind::Exchange => "exchange",
            SpanKind::Collective => "collective",
            SpanKind::RcStep => "rc_step",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Restore => "restore",
            SpanKind::Recovery => "recovery",
            SpanKind::Retry => "retry",
            SpanKind::Verification => "verification",
            SpanKind::DomainDecomposition => "domain_decomposition",
            SpanKind::Drain => "drain",
            SpanKind::Publish => "publish",
            SpanKind::Connection => "connection",
            SpanKind::Reconnect => "reconnect",
            SpanKind::Heartbeat => "heartbeat",
            SpanKind::Migration => "migration",
        }
    }

    /// Every kind, in a stable order (report phase tables follow it).
    pub const ALL: [SpanKind; 16] = [
        SpanKind::Superstep,
        SpanKind::Exchange,
        SpanKind::Collective,
        SpanKind::RcStep,
        SpanKind::Checkpoint,
        SpanKind::Restore,
        SpanKind::Recovery,
        SpanKind::Retry,
        SpanKind::Verification,
        SpanKind::DomainDecomposition,
        SpanKind::Drain,
        SpanKind::Publish,
        SpanKind::Connection,
        SpanKind::Reconnect,
        SpanKind::Heartbeat,
        SpanKind::Migration,
    ];
}

/// One recorded span.
///
/// `rank` is the lane: a rank index, or [`DRIVER_LANE`] for orchestrator
/// work. `sim_start_us`/`sim_dur_us` position the span on the simulated
/// timeline; `wall_start_us`/`wall_dur_us` on the real clock (µs since the
/// cluster's epoch). A zero simulated duration renders as an instant event
/// in the Chrome trace. `messages`/`bytes` carry the traffic the span
/// moved (exchanges and collectives; zero elsewhere).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    pub kind: SpanKind,
    pub rank: i64,
    /// Superstep counter when the span opened (RC-step index for `RcStep`).
    pub superstep: u64,
    pub sim_start_us: f64,
    pub sim_dur_us: f64,
    pub wall_start_us: f64,
    pub wall_dur_us: f64,
    pub messages: u64,
    pub bytes: u64,
}

impl SpanEvent {
    /// An instant event (zero duration on both clocks) on a lane.
    pub fn instant(kind: SpanKind, rank: i64, superstep: u64, sim_us: f64, wall_us: f64) -> Self {
        Self {
            kind,
            rank,
            superstep,
            sim_start_us: sim_us,
            sim_dur_us: 0.0,
            wall_start_us: wall_us,
            wall_dur_us: 0.0,
            messages: 0,
            bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique() {
        let names: Vec<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate span-kind name");
        assert_eq!(SpanKind::Superstep.name(), "superstep");
    }

    #[test]
    fn instant_has_zero_durations() {
        let e = SpanEvent::instant(SpanKind::Checkpoint, DRIVER_LANE, 3, 10.0, 20.0);
        assert_eq!(e.sim_dur_us, 0.0);
        assert_eq!(e.wall_dur_us, 0.0);
        assert_eq!(e.rank, DRIVER_LANE);
    }
}
