//! Chrome-trace export: renders sink events as a Trace Event Format JSON
//! array (the legacy-but-universal format `chrome://tracing`, Perfetto,
//! and Speedscope all open).
//!
//! The timeline is the *simulated* clock — span `ts`/`dur` are LogP
//! microseconds, so the picture shows the modeled cluster, not this
//! process. Wall-clock durations ride along in each span's `args`.
//! Lanes map to trace threads: rank *r* is `tid = r`, and the driver lane
//! ([`DRIVER_LANE`]) renders as `tid = num_ranks` so it sorts after the
//! ranks instead of at −1.

use crate::event::{SpanEvent, DRIVER_LANE};
use crate::json::Json;

/// Renders `events` as a Chrome-trace JSON array string for a run with
/// `num_ranks` ranks. Complete spans get `ph:"X"`; zero-simulated-duration
/// events render as instants (`ph:"i"`). Thread-name metadata events label
/// each lane.
pub fn chrome_trace(events: &[SpanEvent], num_ranks: usize) -> String {
    let driver_tid = num_ranks as i64;
    let mut out: Vec<Json> = Vec::with_capacity(events.len() + num_ranks + 1);

    // Lane labels first: one thread_name metadata event per lane that
    // could appear.
    for rank in 0..num_ranks {
        out.push(thread_name(rank as i64, format!("rank {rank}")));
    }
    out.push(thread_name(driver_tid, "driver".to_string()));

    for e in events {
        let tid = if e.rank == DRIVER_LANE { driver_tid } else { e.rank };
        let mut fields = vec![
            ("name".to_string(), Json::Str(e.kind.name().to_string())),
            ("cat".to_string(), Json::Str("aaa".to_string())),
            ("pid".to_string(), Json::Num(1.0)),
            ("tid".to_string(), Json::Num(tid as f64)),
            ("ts".to_string(), Json::Num(e.sim_start_us)),
        ];
        if e.sim_dur_us > 0.0 {
            fields.push(("ph".to_string(), Json::Str("X".to_string())));
            fields.push(("dur".to_string(), Json::Num(e.sim_dur_us)));
        } else {
            fields.push(("ph".to_string(), Json::Str("i".to_string())));
            fields.push(("s".to_string(), Json::Str("t".to_string())));
        }
        let mut args = vec![
            ("superstep".to_string(), Json::Num(e.superstep as f64)),
            ("wall_us".to_string(), Json::Num(e.wall_dur_us)),
        ];
        if e.messages > 0 || e.bytes > 0 {
            args.push(("messages".to_string(), Json::Num(e.messages as f64)));
            args.push(("bytes".to_string(), Json::Num(e.bytes as f64)));
        }
        fields.push(("args".to_string(), Json::Obj(args)));
        out.push(Json::Obj(fields));
    }

    let mut text = Json::Arr(out).render();
    text.push('\n');
    text
}

fn thread_name(tid: i64, name: String) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str("thread_name".to_string())),
        ("ph".to_string(), Json::Str("M".to_string())),
        ("pid".to_string(), Json::Num(1.0)),
        ("tid".to_string(), Json::Num(tid as f64)),
        ("args".to_string(), Json::Obj(vec![("name".to_string(), Json::Str(name))])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanKind;

    #[test]
    fn trace_is_a_valid_json_array_with_expected_shapes() {
        let events = vec![
            SpanEvent {
                kind: SpanKind::Exchange,
                rank: DRIVER_LANE,
                superstep: 3,
                sim_start_us: 100.0,
                sim_dur_us: 40.5,
                wall_start_us: 1.0,
                wall_dur_us: 2.0,
                messages: 12,
                bytes: 96,
            },
            SpanEvent::instant(SpanKind::Checkpoint, DRIVER_LANE, 4, 200.0, 3.0),
            SpanEvent {
                kind: SpanKind::Superstep,
                rank: 1,
                superstep: 3,
                sim_start_us: 90.0,
                sim_dur_us: 8.0,
                wall_start_us: 0.5,
                wall_dur_us: 8.0,
                messages: 0,
                bytes: 0,
            },
        ];
        let text = chrome_trace(&events, 2);
        let doc = Json::parse(&text).expect("exporter output parses");
        let arr = doc.as_arr().expect("top level is an array");
        // 2 rank labels + 1 driver label + 3 events.
        assert_eq!(arr.len(), 6);

        // Metadata events label lanes.
        assert_eq!(arr[0].str_field("ph").unwrap(), "M");
        assert_eq!(arr[2].field("args").unwrap().str_field("name").unwrap(), "driver");
        assert_eq!(arr[2].u64_field("tid").unwrap(), 2, "driver lane is tid = num_ranks");

        // Complete span on the driver lane.
        let exchange = &arr[3];
        assert_eq!(exchange.str_field("name").unwrap(), "exchange");
        assert_eq!(exchange.str_field("ph").unwrap(), "X");
        assert_eq!(exchange.f64_field("ts").unwrap(), 100.0);
        assert_eq!(exchange.f64_field("dur").unwrap(), 40.5);
        assert_eq!(exchange.u64_field("tid").unwrap(), 2);
        assert_eq!(exchange.field("args").unwrap().u64_field("messages").unwrap(), 12);

        // Zero-duration span renders as an instant.
        let ckpt = &arr[4];
        assert_eq!(ckpt.str_field("ph").unwrap(), "i");
        assert!(ckpt.get("dur").is_none());

        // Rank span keeps its own tid.
        assert_eq!(arr[5].u64_field("tid").unwrap(), 1);
    }
}
