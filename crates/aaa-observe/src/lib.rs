//! # aaa-observe — structured run tracing and machine-readable run reports
//!
//! A zero-dependency observability layer for the anytime-anywhere engine
//! (S24 in DESIGN.md). Four pieces:
//!
//! - **Events & sinks** ([`SpanEvent`], [`EventSink`]): the runtime records
//!   typed spans — superstep slices, exchanges, collectives, RC steps,
//!   checkpoints, restores, recoveries, retries — stamped with both the
//!   wall clock and the LogP-simulated clock. The default [`NoopSink`]
//!   keeps the hot path at a single cached branch; [`MemorySink`] collects
//!   with per-lane shards.
//! - **Chrome-trace export** ([`chrome_trace`]): renders events as a Trace
//!   Event Format JSON array on the *simulated* timeline, openable in
//!   Perfetto / `chrome://tracing`.
//! - **Run reports** ([`RunReport`]): a stable, versioned JSON document
//!   aggregating counters, the LogP cost breakdown, fault tallies,
//!   per-phase/per-rank durations, and convergence-quality samples.
//!   Serialization is hand-rolled ([`Json`]) — no serde, exact `f64`
//!   round-trips.
//! - **Perf gate** ([`compare`]): diffs two reports with per-metric
//!   relative thresholds. Only deterministic metrics can fail the gate;
//!   CI wires this up via the `perfgate` binary in `aaa-bench`.
//!
//! This crate sits *below* `aaa-runtime` in the dependency graph and uses
//! only `std`, so every layer of the system can record into it.

pub mod event;
pub mod gate;
pub mod json;
pub mod report;
pub mod sink;
pub mod trace;

pub use event::{SpanEvent, SpanKind, DRIVER_LANE};
pub use gate::{compare, regressed, GateConfig, MetricDiff};
pub use json::{Json, JsonError};
pub use report::{
    aggregate_phases, per_rank_busy, ChangeTally, FaultTally, MetricsTally, MigrationTally,
    PhaseReport, PublishTally, QualityPoint, RankReport, RunReport, StreamTally, REPORT_VERSION,
};
pub use sink::{EventSink, MemorySink, NoopSink};
pub use trace::chrome_trace;
