//! Event sinks: where spans go.
//!
//! The runtime records through an `Arc<dyn EventSink>` it checks with a
//! single cached boolean before building any event — so with the default
//! [`NoopSink`] the hot path pays one predictable branch and nothing else
//! (the disarmed `exchange` micro-benchmark must stay within noise of the
//! pre-instrumentation number; see EXPERIMENTS.md).
//!
//! [`MemorySink`] is the armed implementation: per-rank shards so
//! concurrently-recording lanes never contend on one lock, with a global
//! atomic sequence number so [`MemorySink::drain`] can restore a total
//! order. In the current BSP cluster all recording happens driver-side at
//! barriers, so the shard locks are uncontended in practice — the sharding
//! keeps the sink honest for future genuinely-concurrent recorders (the
//! SPMD substrate).

use crate::event::SpanEvent;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A destination for span events. Implementations must be cheap to probe:
/// the runtime caches [`EventSink::enabled`] and skips event construction
/// entirely when it returns `false`.
pub trait EventSink: Send + Sync + std::fmt::Debug {
    /// Whether recording is live. Checked once at installation time — a
    /// sink cannot toggle mid-run.
    fn enabled(&self) -> bool;

    /// Records one span. Only called when [`EventSink::enabled`] is true.
    fn record(&self, event: SpanEvent);
}

/// The default sink: discards everything, reports itself disabled, and is
/// never actually invoked on the hot path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&self, _event: SpanEvent) {}
}

/// Number of lane shards in a [`MemorySink`]. Lanes hash to shards by
/// `(rank + 2) % SHARDS` (driver lane −1 maps to shard 1), so up to this
/// many concurrently-recording lanes never share a lock.
const SHARDS: usize = 32;

/// An in-memory collecting sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    shards: [Mutex<Vec<(u64, SpanEvent)>>; SHARDS],
    seq: AtomicU64,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    fn shard_of(rank: i64) -> usize {
        (rank + 2).rem_euclid(SHARDS as i64) as usize
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("sink shard poisoned").len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns every recorded event in recording order.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let mut all: Vec<(u64, SpanEvent)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.append(&mut shard.lock().expect("sink shard poisoned"));
        }
        all.sort_unstable_by_key(|&(seq, _)| seq);
        all.into_iter().map(|(_, e)| e).collect()
    }

    /// A copy of every recorded event in recording order (non-destructive).
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut all: Vec<(u64, SpanEvent)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.lock().expect("sink shard poisoned").iter().copied());
        }
        all.sort_unstable_by_key(|&(seq, _)| seq);
        all.into_iter().map(|(_, e)| e).collect()
    }
}

impl EventSink for MemorySink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: SpanEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.shards[Self::shard_of(event.rank)]
            .lock()
            .expect("sink shard poisoned")
            .push((seq, event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SpanKind, DRIVER_LANE};

    fn ev(rank: i64, superstep: u64) -> SpanEvent {
        SpanEvent::instant(SpanKind::Superstep, rank, superstep, superstep as f64, 0.0)
    }

    #[test]
    fn noop_is_disabled() {
        let s = NoopSink;
        assert!(!s.enabled());
        s.record(ev(0, 0)); // must be a no-op, not a panic
    }

    #[test]
    fn memory_sink_preserves_recording_order_across_shards() {
        let s = MemorySink::new();
        assert!(s.is_empty());
        // Interleave lanes that land in different shards.
        for step in 0..10u64 {
            for rank in [DRIVER_LANE, 0, 1, 2, 33] {
                s.record(ev(rank, step));
            }
        }
        assert_eq!(s.len(), 50);
        let events = s.events();
        assert_eq!(events.len(), 50);
        let drained = s.drain();
        assert_eq!(events, drained, "events() and drain() agree on order");
        assert!(s.is_empty(), "drain empties the sink");
        // Order: grouped by step, lanes in recording order within a step.
        for (i, e) in drained.iter().enumerate() {
            assert_eq!(e.superstep, (i / 5) as u64);
        }
        assert_eq!(drained[0].rank, DRIVER_LANE);
        assert_eq!(drained[4].rank, 33);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let s = std::sync::Arc::new(MemorySink::new());
        std::thread::scope(|scope| {
            for rank in 0..8i64 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for step in 0..100u64 {
                        s.record(ev(rank, step));
                    }
                });
            }
        });
        let events = s.drain();
        assert_eq!(events.len(), 800);
        // Per-lane order is preserved (seq is monotone per thread).
        for rank in 0..8i64 {
            let steps: Vec<u64> =
                events.iter().filter(|e| e.rank == rank).map(|e| e.superstep).collect();
            assert_eq!(steps, (0..100).collect::<Vec<_>>(), "lane {rank} reordered");
        }
    }
}
