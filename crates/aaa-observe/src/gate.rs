//! The perf-gate comparator: diffs a candidate [`RunReport`] against a
//! baseline, metric by metric, and decides which changes are regressions.
//!
//! Only *deterministic* metrics are gated — simulated communication time,
//! traffic counters, step counts, and final convergence error are exact
//! functions of (scenario, seed, code), so any drift is a real behavioral
//! change. Measured metrics (compute/wall durations) vary with the host
//! and CI neighbor noise; they are reported in the diff table for humans
//! but can never fail the gate. See DESIGN.md §S24 for the rationale.

use crate::report::RunReport;

/// Thresholds for the comparator.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Maximum allowed relative increase for gated metrics (0.10 = +10%).
    pub default_threshold: f64,
    /// Per-metric overrides, by metric name.
    pub overrides: Vec<(String, f64)>,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self { default_threshold: 0.10, overrides: Vec::new() }
    }
}

impl GateConfig {
    pub fn threshold_for(&self, metric: &str) -> f64 {
        self.overrides
            .iter()
            .rev() // last override wins
            .find(|(name, _)| name == metric)
            .map(|&(_, t)| t)
            .unwrap_or(self.default_threshold)
    }
}

/// One row of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    pub name: &'static str,
    pub baseline: f64,
    pub candidate: f64,
    /// `(candidate - baseline) / baseline`; 0 when both are 0, +∞ when the
    /// baseline is 0 and the candidate is not.
    pub rel_change: f64,
    /// Threshold applied (gated metrics only; 0 for info metrics).
    pub threshold: f64,
    /// Whether this metric can fail the gate.
    pub gated: bool,
    /// Gated and over threshold.
    pub regressed: bool,
}

fn rel_change(baseline: f64, candidate: f64) -> f64 {
    if baseline == 0.0 {
        if candidate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (candidate - baseline) / baseline
    }
}

fn diff(
    name: &'static str,
    baseline: f64,
    candidate: f64,
    gated: bool,
    cfg: &GateConfig,
) -> MetricDiff {
    let rel = rel_change(baseline, candidate);
    let threshold = if gated { cfg.threshold_for(name) } else { 0.0 };
    MetricDiff {
        name,
        baseline,
        candidate,
        rel_change: rel,
        threshold,
        gated,
        // Only increases regress; a metric that went *down* is a win.
        regressed: gated && rel > threshold,
    }
}

/// Compares `candidate` against `baseline`. Returns every metric row,
/// gated metrics first. The gate fails iff any row has `regressed`.
///
/// Reports for different scenarios are not comparable; the caller should
/// check [`RunReport::scenario`] before calling (the CLI does).
pub fn compare(candidate: &RunReport, baseline: &RunReport, cfg: &GateConfig) -> Vec<MetricDiff> {
    let mut rows = vec![
        // Deterministic → gated.
        diff("sim_comm_us", baseline.sim_comm_us, candidate.sim_comm_us, true, cfg),
        diff("messages", baseline.messages as f64, candidate.messages as f64, true, cfg),
        diff("bytes", baseline.bytes as f64, candidate.bytes as f64, true, cfg),
        diff("supersteps", baseline.supersteps as f64, candidate.supersteps as f64, true, cfg),
        diff("collectives", baseline.collectives as f64, candidate.collectives as f64, true, cfg),
        diff("rc_steps", baseline.rc_steps as f64, candidate.rc_steps as f64, true, cfg),
    ];
    // Final convergence error is deterministic too; gate it when both runs
    // sampled quality.
    if let (Some(b), Some(c)) = (baseline.final_quality(), candidate.final_quality()) {
        rows.push(diff("final_error", b.error, c.error, true, cfg));
    }
    // ChangeLog drain counters are deterministic too, but the section is
    // optional (pre-pipeline baselines omit it), so gate only when both
    // reports carry it — an old baseline vs. a new candidate stays diffable
    // on the classic metrics alone.
    if let (Some(b), Some(c)) = (baseline.changes, candidate.changes) {
        rows.push(diff("changes_submitted", b.submitted as f64, c.submitted as f64, true, cfg));
        rows.push(diff("changes_coalesced", b.coalesced as f64, c.coalesced as f64, true, cfg));
        rows.push(diff("changes_applied", b.applied as f64, c.applied as f64, true, cfg));
        rows.push(diff("change_drains", b.drains as f64, c.drains as f64, true, cfg));
        rows.push(diff("publish_epochs", b.epochs as f64, c.epochs as f64, true, cfg));
    }
    // Migration counters follow the same both-present rule.
    if let (Some(b), Some(c)) = (baseline.migration, candidate.migration) {
        rows.push(diff("migrations", b.migrations as f64, c.migrations as f64, true, cfg));
        rows.push(diff("migrated_rows", b.migrated_rows as f64, c.migrated_rows as f64, true, cfg));
        rows.push(diff(
            "migration_bytes",
            b.migration_bytes as f64,
            c.migration_bytes as f64,
            true,
            cfg,
        ));
    }
    // Streaming-workload counters: deterministic integers are gated,
    // wall-derived throughput is info-only.
    if let (Some(b), Some(c)) = (baseline.stream, candidate.stream) {
        rows.push(diff("stream_offered", b.offered as f64, c.offered as f64, true, cfg));
        rows.push(diff("stream_ticks", b.ticks as f64, c.ticks as f64, true, cfg));
        rows.push(diff(
            "stream_p99_staleness_epochs",
            b.p99_staleness_epochs as f64,
            c.p99_staleness_epochs as f64,
            true,
            cfg,
        ));
        rows.push(diff(
            "stream_max_staleness_epochs",
            b.max_staleness_epochs as f64,
            c.max_staleness_epochs as f64,
            true,
            cfg,
        ));
        rows.push(diff("stream_peak_queue", b.peak_queue as f64, c.peak_queue as f64, true, cfg));
        rows.push(diff(
            "stream_final_imbalance_milli",
            b.final_imbalance_milli as f64,
            c.final_imbalance_milli as f64,
            true,
            cfg,
        ));
    }
    // View-publication counters are deterministic (chunk sharing depends
    // only on the change stream), so every row is gated. Names carry a
    // `publish_` prefix; `publish_epochs` above is owned by ChangeTally.
    if let (Some(b), Some(c)) = (baseline.publish, candidate.publish) {
        rows.push(diff(
            "publish_full_epochs",
            b.full_epochs as f64,
            c.full_epochs as f64,
            true,
            cfg,
        ));
        rows.push(diff(
            "publish_delta_epochs",
            b.delta_epochs as f64,
            c.delta_epochs as f64,
            true,
            cfg,
        ));
        rows.push(diff(
            "publish_changed_rows",
            b.changed_rows as f64,
            c.changed_rows as f64,
            true,
            cfg,
        ));
        rows.push(diff(
            "publish_chunks_copied",
            b.chunks_copied as f64,
            c.chunks_copied as f64,
            true,
            cfg,
        ));
        rows.push(diff(
            "publish_chunks_shared",
            b.chunks_shared as f64,
            c.chunks_shared as f64,
            true,
            cfg,
        ));
        rows.push(diff(
            "publish_topk_rebuilds",
            b.topk_rebuilds as f64,
            c.topk_rebuilds as f64,
            true,
            cfg,
        ));
    }
    // Extra-metric maintenance counters are deterministic driver-side
    // work (which sources recompute depends only on the change stream),
    // so every row is gated under the same both-present rule.
    if let (Some(b), Some(c)) = (baseline.metrics, candidate.metrics) {
        rows.push(diff(
            "metric_betweenness_epochs",
            b.betweenness_epochs as f64,
            c.betweenness_epochs as f64,
            true,
            cfg,
        ));
        rows.push(diff(
            "metric_sources_recomputed",
            b.sources_recomputed as f64,
            c.sources_recomputed as f64,
            true,
            cfg,
        ));
        rows.push(diff(
            "metric_full_recomputes",
            b.full_recomputes as f64,
            c.full_recomputes as f64,
            true,
            cfg,
        ));
        rows.push(diff(
            "metric_changed_entries",
            b.changed_entries as f64,
            c.changed_entries as f64,
            true,
            cfg,
        ));
    }
    // Host-dependent → info only.
    rows.push(diff(
        "sim_compute_us",
        baseline.sim_compute_us,
        candidate.sim_compute_us,
        false,
        cfg,
    ));
    rows.push(diff("sim_total_us", baseline.sim_total_us(), candidate.sim_total_us(), false, cfg));
    rows.push(diff("wall_us", baseline.wall_us, candidate.wall_us, false, cfg));
    rows.push(diff(
        "faults_injected",
        baseline.faults.injected() as f64,
        candidate.faults.injected() as f64,
        false,
        cfg,
    ));
    if let (Some(b), Some(c)) = (baseline.stream, candidate.stream) {
        rows.push(diff("stream_changes_per_sec", b.changes_per_sec, c.changes_per_sec, false, cfg));
    }
    rows
}

/// Whether any row fails the gate.
pub fn regressed(rows: &[MetricDiff]) -> bool {
    rows.iter().any(|r| r.regressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::QualityPoint;

    fn baseline() -> RunReport {
        RunReport {
            scenario: "unit".into(),
            messages: 1000,
            bytes: 80_000,
            supersteps: 40,
            collectives: 10,
            rc_steps: 8,
            sim_comm_us: 50_000.0,
            sim_compute_us: 900.0,
            wall_us: 850.0,
            quality: vec![QualityPoint { rc_step: 8, error: 0.01, top_k_recall: 1.0 }],
            ..RunReport::default()
        }
    }

    #[test]
    fn doubled_sim_cost_fails_the_gate() {
        let base = baseline();
        let mut cand = base.clone();
        cand.sim_comm_us *= 2.0; // injected 2× regression
        let rows = compare(&cand, &base, &GateConfig::default());
        assert!(regressed(&rows));
        let row = rows.iter().find(|r| r.name == "sim_comm_us").unwrap();
        assert!(row.regressed);
        assert!((row.rel_change - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_percent_jitter_passes() {
        let base = baseline();
        let mut cand = base.clone();
        cand.sim_comm_us *= 1.02;
        cand.bytes = (base.bytes as f64 * 0.98) as u64;
        cand.quality[0].error *= 1.02;
        let rows = compare(&cand, &base, &GateConfig::default());
        assert!(!regressed(&rows), "±2% is inside the 10% default threshold");
    }

    #[test]
    fn improvements_never_regress() {
        let base = baseline();
        let mut cand = base.clone();
        cand.sim_comm_us *= 0.5;
        cand.messages /= 2;
        let rows = compare(&cand, &base, &GateConfig::default());
        assert!(!regressed(&rows));
    }

    #[test]
    fn wall_noise_is_not_gated() {
        let base = baseline();
        let mut cand = base.clone();
        cand.wall_us *= 10.0;
        cand.sim_compute_us *= 10.0;
        let rows = compare(&cand, &base, &GateConfig::default());
        assert!(!regressed(&rows), "measured metrics are info-only");
        assert!(rows.iter().any(|r| r.name == "wall_us" && !r.gated));
    }

    #[test]
    fn zero_baseline_growth_is_a_regression() {
        let mut base = baseline();
        base.messages = 0;
        let mut cand = base.clone();
        cand.messages = 5;
        let rows = compare(&cand, &base, &GateConfig::default());
        let row = rows.iter().find(|r| r.name == "messages").unwrap();
        assert!(row.rel_change.is_infinite());
        assert!(row.regressed);
    }

    #[test]
    fn change_counters_gate_only_when_both_reports_have_them() {
        use crate::report::ChangeTally;
        let tally = ChangeTally { submitted: 10, coalesced: 2, applied: 8, drains: 4, epochs: 12 };
        // Old baseline (no section) vs. new candidate: no change rows.
        let base = baseline();
        let mut cand = base.clone();
        cand.changes = Some(tally);
        let rows = compare(&cand, &base, &GateConfig::default());
        assert!(!rows.iter().any(|r| r.name.starts_with("changes_")));
        assert!(!regressed(&rows));
        // Both sides carry the section: counters are gated.
        let mut base2 = base.clone();
        base2.changes = Some(tally);
        let mut cand2 = base2.clone();
        cand2.changes = Some(ChangeTally { applied: 20, ..tally });
        let rows = compare(&cand2, &base2, &GateConfig::default());
        let row = rows.iter().find(|r| r.name == "changes_applied").unwrap();
        assert!(row.gated && row.regressed);
        // Identical tallies pass at threshold zero.
        let strict = GateConfig { default_threshold: 0.0, ..GateConfig::default() };
        assert!(!regressed(&compare(&base2, &base2, &strict)));
    }

    #[test]
    fn migration_and_stream_sections_gate_like_changes() {
        use crate::report::{MigrationTally, StreamTally};
        let mig = MigrationTally { migrations: 2, migrated_rows: 32, migration_bytes: 6144 };
        let stream = StreamTally {
            offered: 400,
            ticks: 50,
            p99_staleness_epochs: 2,
            max_staleness_epochs: 4,
            peak_queue: 30,
            final_imbalance_milli: 1100,
            changes_per_sec: 9000.0,
        };
        // Old baseline (neither section) vs. new candidate: no extra rows,
        // so existing pinned baselines keep diffing at +0.00%.
        let base = baseline();
        let mut cand = base.clone();
        cand.migration = Some(mig);
        cand.stream = Some(stream);
        let rows = compare(&cand, &base, &GateConfig::default());
        assert!(!rows.iter().any(|r| r.name.starts_with("migrat") || r.name.starts_with("stream")));
        assert!(!regressed(&rows));
        // Both sides carry them: integers gate, throughput stays info-only.
        let mut base2 = base.clone();
        base2.migration = Some(mig);
        base2.stream = Some(stream);
        let mut cand2 = base2.clone();
        cand2.migration = Some(MigrationTally { migrated_rows: 64, ..mig });
        cand2.stream =
            Some(StreamTally { p99_staleness_epochs: 9, changes_per_sec: 90_000.0, ..stream });
        let rows = compare(&cand2, &base2, &GateConfig::default());
        assert!(rows.iter().any(|r| r.name == "migrated_rows" && r.gated && r.regressed));
        assert!(rows
            .iter()
            .any(|r| r.name == "stream_p99_staleness_epochs" && r.gated && r.regressed));
        let tput = rows.iter().find(|r| r.name == "stream_changes_per_sec").unwrap();
        assert!(!tput.gated, "wall-derived throughput must never fail the gate");
        // Identical sections pass even at threshold zero.
        let strict = GateConfig { default_threshold: 0.0, ..GateConfig::default() };
        assert!(!regressed(&compare(&base2, &base2, &strict)));
    }

    #[test]
    fn publish_section_gates_every_row_under_both_present_rule() {
        use crate::report::PublishTally;
        let tally = PublishTally {
            full_epochs: 1,
            delta_epochs: 20,
            changed_rows: 256,
            chunks_copied: 24,
            chunks_shared: 96,
            topk_rebuilds: 2,
        };
        // Old baseline without the section: a new candidate adds no rows.
        let base = baseline();
        let mut cand = base.clone();
        cand.publish = Some(tally);
        let rows = compare(&cand, &base, &GateConfig::default());
        assert!(!rows.iter().any(|r| r.name.starts_with("publish_")));
        assert!(!regressed(&rows));
        // Both sides carry it: every row is gated and a drift fails.
        let mut base2 = base.clone();
        base2.publish = Some(tally);
        let mut cand2 = base2.clone();
        cand2.publish = Some(PublishTally { chunks_copied: 48, ..tally });
        let rows = compare(&cand2, &base2, &GateConfig::default());
        for name in [
            "publish_full_epochs",
            "publish_delta_epochs",
            "publish_changed_rows",
            "publish_chunks_copied",
            "publish_chunks_shared",
            "publish_topk_rebuilds",
        ] {
            assert!(rows.iter().any(|r| r.name == name && r.gated), "{name} must be gated");
        }
        assert!(rows.iter().any(|r| r.name == "publish_chunks_copied" && r.regressed));
        // Identical sections pass even at threshold zero.
        let strict = GateConfig { default_threshold: 0.0, ..GateConfig::default() };
        assert!(!regressed(&compare(&base2, &base2, &strict)));
    }

    #[test]
    fn metrics_section_gates_every_row_under_both_present_rule() {
        use crate::report::MetricsTally;
        let tally = MetricsTally {
            betweenness_epochs: 10,
            sources_recomputed: 420,
            full_recomputes: 1,
            changed_entries: 700,
        };
        // Old baseline without the section: a new candidate adds no rows.
        let base = baseline();
        let mut cand = base.clone();
        cand.metrics = Some(tally);
        let rows = compare(&cand, &base, &GateConfig::default());
        assert!(!rows.iter().any(|r| r.name.starts_with("metric_")));
        assert!(!regressed(&rows));
        // Both sides carry it: every row is gated and a drift fails.
        let mut base2 = base.clone();
        base2.metrics = Some(tally);
        let mut cand2 = base2.clone();
        cand2.metrics = Some(MetricsTally { sources_recomputed: 840, ..tally });
        let rows = compare(&cand2, &base2, &GateConfig::default());
        for name in [
            "metric_betweenness_epochs",
            "metric_sources_recomputed",
            "metric_full_recomputes",
            "metric_changed_entries",
        ] {
            assert!(rows.iter().any(|r| r.name == name && r.gated), "{name} must be gated");
        }
        assert!(rows.iter().any(|r| r.name == "metric_sources_recomputed" && r.regressed));
        // Identical sections pass even at threshold zero.
        let strict = GateConfig { default_threshold: 0.0, ..GateConfig::default() };
        assert!(!regressed(&compare(&base2, &base2, &strict)));
    }

    #[test]
    fn overrides_take_precedence() {
        let base = baseline();
        let mut cand = base.clone();
        cand.sim_comm_us *= 1.15; // +15%
        let loose =
            GateConfig { default_threshold: 0.10, overrides: vec![("sim_comm_us".into(), 0.25)] };
        assert!(!regressed(&compare(&cand, &base, &loose)));
        let tight =
            GateConfig { default_threshold: 0.25, overrides: vec![("sim_comm_us".into(), 0.10)] };
        assert!(regressed(&compare(&cand, &base, &tight)));
        assert_eq!(tight.threshold_for("messages"), 0.25);
    }
}
