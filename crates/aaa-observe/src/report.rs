//! The machine-readable run report: a stable, versioned JSON document
//! summarizing one engine run — counters, the LogP cost breakdown, fault
//! tallies, per-phase and per-rank aggregates from the event sink, and
//! convergence-quality samples.
//!
//! The report is the contract between a run and the perf gate
//! ([`crate::gate`]): CI regenerates a report for a pinned scenario and
//! diffs it against a checked-in baseline. Only *deterministic* metrics
//! are gated (simulated communication time, traffic counters, step counts,
//! quality); measured wall/compute durations are carried for humans but
//! never gated — they jitter with the host (see DESIGN.md §S24).

use crate::event::{SpanEvent, SpanKind};
use crate::json::{Json, JsonError};

/// Current report format version. Readers reject other versions — the
/// comparator must never silently diff incompatible documents.
pub const REPORT_VERSION: u64 = 1;

/// Injected-fault and repair tallies (mirror of the runtime's counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    pub dropped: u64,
    pub duplicated: u64,
    pub delayed: u64,
    pub corrupted: u64,
    pub stalls: u64,
    pub retransmits: u64,
}

impl FaultTally {
    pub fn injected(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.corrupted + self.stalls
    }
}

/// Aggregate of every span of one kind.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseReport {
    /// [`SpanKind::name`] of the aggregated kind.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Summed simulated duration (µs). For per-rank span kinds this is
    /// total rank-busy time, not elapsed time.
    pub sim_us: f64,
    /// Summed measured wall duration (µs), same caveat.
    pub wall_us: f64,
    pub messages: u64,
    pub bytes: u64,
}

/// Per-lane busy totals (one entry per rank that recorded spans, plus the
/// driver lane at rank −1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankReport {
    pub rank: i64,
    pub spans: u64,
    /// Summed simulated duration of this lane's spans (µs).
    pub sim_busy_us: f64,
    /// Summed measured duration of this lane's spans (µs).
    pub wall_busy_us: f64,
}

/// Ingest-pipeline tallies: ChangeLog traffic and published-view epochs.
///
/// Optional in the wire format (reports predating the pipeline split omit
/// the section), so old baselines keep parsing — the gate only diffs these
/// counters when *both* reports carry them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChangeTally {
    /// Changes accepted by `submit`.
    pub submitted: u64,
    /// Changes absorbed into an earlier queued change instead of queueing.
    pub coalesced: u64,
    /// Changes actually executed against the graph by drains.
    pub applied: u64,
    /// Drain batches that applied at least one change.
    pub drains: u64,
    /// Published-view epochs minted by the publish layer.
    pub epochs: u64,
}

/// Row-migration tallies from the background rebalancer (budgeted moves
/// and policy-escalated full repartitions).
///
/// Optional in the wire format — reports predating adaptive
/// repartitioning omit the section, so old baselines keep parsing and the
/// gate only diffs these counters when *both* reports carry them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationTally {
    /// Migration events (one per rebalance barrier that moved rows).
    pub migrations: u64,
    /// DV rows shipped to a new owner across all events.
    pub migrated_rows: u64,
    /// Bytes of migration traffic (ownership broadcasts + row payloads);
    /// a subset of the report's top-level `bytes`.
    pub migration_bytes: u64,
}

/// Streaming-workload tallies from the `stream_load` driver.
///
/// Optional like [`MigrationTally`]. All integer fields are deterministic
/// and gateable; `changes_per_sec` is wall-derived and carried for humans
/// only — the gate must never diff it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamTally {
    /// Changes the workload generator offered to `submit`.
    pub offered: u64,
    /// Ticks the driver ran (one `submit` batch per tick).
    pub ticks: u64,
    /// p99 of epoch staleness: epochs between a change's submission and
    /// the published epoch that first reflects it.
    pub p99_staleness_epochs: u64,
    /// Worst-case epoch staleness observed.
    pub max_staleness_epochs: u64,
    /// Peak backlog at tick boundaries: offered batches not yet
    /// reflected in a published epoch (the coalescing log itself may
    /// hold fewer entries).
    pub peak_queue: u64,
    /// Final vertex imbalance ×1000 (max part size over ideal), so the
    /// gate diffs an integer instead of a float.
    pub final_imbalance_milli: u64,
    /// Sustained throughput (offered changes / driver wall time) —
    /// host-dependent, info-only.
    pub changes_per_sec: f64,
}

/// View-publication tallies from the delta publisher.
///
/// Optional like [`StreamTally`]. Every field counts deterministic
/// publisher work (chunk sharing decisions depend only on the change
/// stream), so the gate diffs all of them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishTally {
    /// Epochs published via the O(n) full-rebuild path.
    pub full_epochs: u64,
    /// Epochs published via the O(changed) delta path.
    pub delta_epochs: u64,
    /// Closeness rows carried by delta publications.
    pub changed_rows: u64,
    /// Value chunks copy-on-written across all publications.
    pub chunks_copied: u64,
    /// Value chunks structurally shared with the previous view.
    pub chunks_shared: u64,
    /// Maintained top-k index rebuilds (underflow or full publish).
    pub topk_rebuilds: u64,
}

/// Extra-metric maintenance tallies (incremental betweenness et al.).
///
/// Optional like [`PublishTally`]. Every field counts deterministic
/// driver-side metric work, so the gate diffs all of them —
/// `sources_recomputed` is the headline: it is what the incremental
/// update saves over an every-epoch full rescan (`n × epochs` sources).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsTally {
    /// Publish epochs in which extra metrics were updated.
    pub betweenness_epochs: u64,
    /// Per-source dependency recomputations across all epochs.
    pub sources_recomputed: u64,
    /// Updates that rebuilt from scratch (first epoch, post-invalidation).
    pub full_recomputes: u64,
    /// Column entries whose value changed bits across all epochs.
    pub changed_entries: u64,
}

/// One convergence-quality sample (mirrors the engine's quality tracker).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QualityPoint {
    pub rc_step: u64,
    /// Mean relative closeness error vs. exact.
    pub error: f64,
    /// Fraction of the true top-k most central vertices identified.
    pub top_k_recall: f64,
}

/// The versioned run report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Scenario identifier, e.g. `fig4:pinned`.
    pub scenario: String,
    /// Workload parameters the scenario was pinned at.
    pub scale: u64,
    pub procs: u64,
    pub seed: u64,
    /// Traffic and step counters (deterministic).
    pub messages: u64,
    pub bytes: u64,
    pub supersteps: u64,
    pub collectives: u64,
    pub checkpoints: u64,
    pub restores: u64,
    pub rc_steps: u64,
    /// LogP-priced communication time (µs) — deterministic, the gate's
    /// primary metric.
    pub sim_comm_us: f64,
    /// Measured per-superstep max compute, summed (µs) — host-dependent.
    pub sim_compute_us: f64,
    /// Measured wall time of rank computation (µs) — host-dependent.
    pub wall_us: f64,
    pub faults: FaultTally,
    /// Ingest/publish tallies — `None` for reports from before the
    /// pipeline split (and for runs that never touched the ChangeLog).
    pub changes: Option<ChangeTally>,
    /// Row-migration tallies — `None` for reports from before adaptive
    /// repartitioning.
    pub migration: Option<MigrationTally>,
    /// Streaming-workload tallies — `None` unless the run came from the
    /// `stream_load` driver.
    pub stream: Option<StreamTally>,
    /// View-publication tallies — `None` for reports from before delta
    /// publication (and for drivers that never publish views).
    pub publish: Option<PublishTally>,
    /// Extra-metric tallies — `None` unless the run maintained metrics
    /// beyond closeness (e.g. `--metrics betweenness`).
    pub metrics: Option<MetricsTally>,
    pub phases: Vec<PhaseReport>,
    pub ranks: Vec<RankReport>,
    pub quality: Vec<QualityPoint>,
}

impl RunReport {
    /// Total simulated time (µs).
    pub fn sim_total_us(&self) -> f64 {
        self.sim_comm_us + self.sim_compute_us
    }

    /// Final quality sample, if any were recorded.
    pub fn final_quality(&self) -> Option<QualityPoint> {
        self.quality.last().copied()
    }

    // ---------------------------------------------------------------
    // Serialization
    // ---------------------------------------------------------------

    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version".into(), Json::Num(REPORT_VERSION as f64)),
            ("scenario".into(), Json::Str(self.scenario.clone())),
            (
                "params".into(),
                Json::Obj(vec![
                    ("scale".into(), Json::Num(self.scale as f64)),
                    ("procs".into(), Json::Num(self.procs as f64)),
                    ("seed".into(), Json::Num(self.seed as f64)),
                ]),
            ),
            (
                "counters".into(),
                Json::Obj(vec![
                    ("messages".into(), Json::Num(self.messages as f64)),
                    ("bytes".into(), Json::Num(self.bytes as f64)),
                    ("supersteps".into(), Json::Num(self.supersteps as f64)),
                    ("collectives".into(), Json::Num(self.collectives as f64)),
                    ("checkpoints".into(), Json::Num(self.checkpoints as f64)),
                    ("restores".into(), Json::Num(self.restores as f64)),
                    ("rc_steps".into(), Json::Num(self.rc_steps as f64)),
                ]),
            ),
            (
                "sim".into(),
                Json::Obj(vec![
                    ("comm_us".into(), Json::Num(self.sim_comm_us)),
                    ("compute_us".into(), Json::Num(self.sim_compute_us)),
                    ("total_us".into(), Json::Num(self.sim_total_us())),
                ]),
            ),
            ("wall_us".into(), Json::Num(self.wall_us)),
            (
                "faults".into(),
                Json::Obj(vec![
                    ("dropped".into(), Json::Num(self.faults.dropped as f64)),
                    ("duplicated".into(), Json::Num(self.faults.duplicated as f64)),
                    ("delayed".into(), Json::Num(self.faults.delayed as f64)),
                    ("corrupted".into(), Json::Num(self.faults.corrupted as f64)),
                    ("stalls".into(), Json::Num(self.faults.stalls as f64)),
                    ("retransmits".into(), Json::Num(self.faults.retransmits as f64)),
                ]),
            ),
            (
                "phases".into(),
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(p.name.clone())),
                                ("count".into(), Json::Num(p.count as f64)),
                                ("sim_us".into(), Json::Num(p.sim_us)),
                                ("wall_us".into(), Json::Num(p.wall_us)),
                                ("messages".into(), Json::Num(p.messages as f64)),
                                ("bytes".into(), Json::Num(p.bytes as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ranks".into(),
                Json::Arr(
                    self.ranks
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("rank".into(), Json::Num(r.rank as f64)),
                                ("spans".into(), Json::Num(r.spans as f64)),
                                ("sim_busy_us".into(), Json::Num(r.sim_busy_us)),
                                ("wall_busy_us".into(), Json::Num(r.wall_busy_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "quality".into(),
                Json::Arr(
                    self.quality
                        .iter()
                        .map(|q| {
                            Json::Obj(vec![
                                ("rc_step".into(), Json::Num(q.rc_step as f64)),
                                ("error".into(), Json::Num(q.error)),
                                ("top_k_recall".into(), Json::Num(q.top_k_recall)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(c) = &self.changes {
            fields.push((
                "changes".into(),
                Json::Obj(vec![
                    ("submitted".into(), Json::Num(c.submitted as f64)),
                    ("coalesced".into(), Json::Num(c.coalesced as f64)),
                    ("applied".into(), Json::Num(c.applied as f64)),
                    ("drains".into(), Json::Num(c.drains as f64)),
                    ("epochs".into(), Json::Num(c.epochs as f64)),
                ]),
            ));
        }
        if let Some(m) = &self.migration {
            fields.push((
                "migration".into(),
                Json::Obj(vec![
                    ("migrations".into(), Json::Num(m.migrations as f64)),
                    ("migrated_rows".into(), Json::Num(m.migrated_rows as f64)),
                    ("migration_bytes".into(), Json::Num(m.migration_bytes as f64)),
                ]),
            ));
        }
        if let Some(s) = &self.stream {
            fields.push((
                "stream".into(),
                Json::Obj(vec![
                    ("offered".into(), Json::Num(s.offered as f64)),
                    ("ticks".into(), Json::Num(s.ticks as f64)),
                    ("p99_staleness_epochs".into(), Json::Num(s.p99_staleness_epochs as f64)),
                    ("max_staleness_epochs".into(), Json::Num(s.max_staleness_epochs as f64)),
                    ("peak_queue".into(), Json::Num(s.peak_queue as f64)),
                    ("final_imbalance_milli".into(), Json::Num(s.final_imbalance_milli as f64)),
                    ("changes_per_sec".into(), Json::Num(s.changes_per_sec)),
                ]),
            ));
        }
        if let Some(p) = &self.publish {
            fields.push((
                "publish".into(),
                Json::Obj(vec![
                    ("full_epochs".into(), Json::Num(p.full_epochs as f64)),
                    ("delta_epochs".into(), Json::Num(p.delta_epochs as f64)),
                    ("changed_rows".into(), Json::Num(p.changed_rows as f64)),
                    ("chunks_copied".into(), Json::Num(p.chunks_copied as f64)),
                    ("chunks_shared".into(), Json::Num(p.chunks_shared as f64)),
                    ("topk_rebuilds".into(), Json::Num(p.topk_rebuilds as f64)),
                ]),
            ));
        }
        if let Some(m) = &self.metrics {
            fields.push((
                "metrics".into(),
                Json::Obj(vec![
                    ("betweenness_epochs".into(), Json::Num(m.betweenness_epochs as f64)),
                    ("sources_recomputed".into(), Json::Num(m.sources_recomputed as f64)),
                    ("full_recomputes".into(), Json::Num(m.full_recomputes as f64)),
                    ("changed_entries".into(), Json::Num(m.changed_entries as f64)),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// The on-disk representation (pretty, stable key order, trailing
    /// newline).
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    pub fn from_json(doc: &Json) -> Result<Self, JsonError> {
        let version = doc.u64_field("version")?;
        if version != REPORT_VERSION {
            return Err(JsonError::Shape(format!(
                "report version {version} is not supported (expected {REPORT_VERSION})"
            )));
        }
        let params = doc.field("params")?;
        let counters = doc.field("counters")?;
        let sim = doc.field("sim")?;
        let faults = doc.field("faults")?;
        let mut report = RunReport {
            scenario: doc.str_field("scenario")?.to_string(),
            scale: params.u64_field("scale")?,
            procs: params.u64_field("procs")?,
            seed: params.u64_field("seed")?,
            messages: counters.u64_field("messages")?,
            bytes: counters.u64_field("bytes")?,
            supersteps: counters.u64_field("supersteps")?,
            collectives: counters.u64_field("collectives")?,
            checkpoints: counters.u64_field("checkpoints")?,
            restores: counters.u64_field("restores")?,
            rc_steps: counters.u64_field("rc_steps")?,
            sim_comm_us: sim.f64_field("comm_us")?,
            sim_compute_us: sim.f64_field("compute_us")?,
            wall_us: doc.f64_field("wall_us")?,
            faults: FaultTally {
                dropped: faults.u64_field("dropped")?,
                duplicated: faults.u64_field("duplicated")?,
                delayed: faults.u64_field("delayed")?,
                corrupted: faults.u64_field("corrupted")?,
                stalls: faults.u64_field("stalls")?,
                retransmits: faults.u64_field("retransmits")?,
            },
            ..RunReport::default()
        };
        // Optional section: absent in pre-pipeline reports and baselines.
        if let Some(c) = doc.get("changes") {
            report.changes = Some(ChangeTally {
                submitted: c.u64_field("submitted")?,
                coalesced: c.u64_field("coalesced")?,
                applied: c.u64_field("applied")?,
                drains: c.u64_field("drains")?,
                epochs: c.u64_field("epochs")?,
            });
        }
        if let Some(m) = doc.get("migration") {
            report.migration = Some(MigrationTally {
                migrations: m.u64_field("migrations")?,
                migrated_rows: m.u64_field("migrated_rows")?,
                migration_bytes: m.u64_field("migration_bytes")?,
            });
        }
        if let Some(s) = doc.get("stream") {
            report.stream = Some(StreamTally {
                offered: s.u64_field("offered")?,
                ticks: s.u64_field("ticks")?,
                p99_staleness_epochs: s.u64_field("p99_staleness_epochs")?,
                max_staleness_epochs: s.u64_field("max_staleness_epochs")?,
                peak_queue: s.u64_field("peak_queue")?,
                final_imbalance_milli: s.u64_field("final_imbalance_milli")?,
                changes_per_sec: s.f64_field("changes_per_sec")?,
            });
        }
        if let Some(p) = doc.get("publish") {
            report.publish = Some(PublishTally {
                full_epochs: p.u64_field("full_epochs")?,
                delta_epochs: p.u64_field("delta_epochs")?,
                changed_rows: p.u64_field("changed_rows")?,
                chunks_copied: p.u64_field("chunks_copied")?,
                chunks_shared: p.u64_field("chunks_shared")?,
                topk_rebuilds: p.u64_field("topk_rebuilds")?,
            });
        }
        if let Some(m) = doc.get("metrics") {
            report.metrics = Some(MetricsTally {
                betweenness_epochs: m.u64_field("betweenness_epochs")?,
                sources_recomputed: m.u64_field("sources_recomputed")?,
                full_recomputes: m.u64_field("full_recomputes")?,
                changed_entries: m.u64_field("changed_entries")?,
            });
        }
        for p in doc.arr_field("phases")? {
            report.phases.push(PhaseReport {
                name: p.str_field("name")?.to_string(),
                count: p.u64_field("count")?,
                sim_us: p.f64_field("sim_us")?,
                wall_us: p.f64_field("wall_us")?,
                messages: p.u64_field("messages")?,
                bytes: p.u64_field("bytes")?,
            });
        }
        for r in doc.arr_field("ranks")? {
            report.ranks.push(RankReport {
                rank: r.f64_field("rank")? as i64,
                spans: r.u64_field("spans")?,
                sim_busy_us: r.f64_field("sim_busy_us")?,
                wall_busy_us: r.f64_field("wall_busy_us")?,
            });
        }
        for q in doc.arr_field("quality")? {
            report.quality.push(QualityPoint {
                rc_step: q.u64_field("rc_step")?,
                error: q.f64_field("error")?,
                top_k_recall: q.f64_field("top_k_recall")?,
            });
        }
        Ok(report)
    }

    pub fn from_json_str(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// Aggregates sink events into per-phase totals, in [`SpanKind::ALL`]
/// order, omitting kinds with no spans.
pub fn aggregate_phases(events: &[SpanEvent]) -> Vec<PhaseReport> {
    SpanKind::ALL
        .iter()
        .filter_map(|&kind| {
            let mut agg = PhaseReport { name: kind.name().to_string(), ..PhaseReport::default() };
            for e in events.iter().filter(|e| e.kind == kind) {
                agg.count += 1;
                agg.sim_us += e.sim_dur_us;
                agg.wall_us += e.wall_dur_us;
                agg.messages += e.messages;
                agg.bytes += e.bytes;
            }
            (agg.count > 0).then_some(agg)
        })
        .collect()
}

/// Aggregates sink events into per-lane busy totals, ordered by lane
/// (driver −1 first, then ranks ascending).
pub fn per_rank_busy(events: &[SpanEvent]) -> Vec<RankReport> {
    let mut lanes: Vec<RankReport> = Vec::new();
    for e in events {
        let lane = match lanes.iter_mut().find(|l| l.rank == e.rank) {
            Some(l) => l,
            None => {
                lanes.push(RankReport { rank: e.rank, ..RankReport::default() });
                lanes.last_mut().expect("just pushed")
            }
        };
        lane.spans += 1;
        lane.sim_busy_us += e.sim_dur_us;
        lane.wall_busy_us += e.wall_dur_us;
    }
    lanes.sort_unstable_by_key(|l| l.rank);
    lanes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DRIVER_LANE;

    pub(crate) fn sample_report() -> RunReport {
        RunReport {
            scenario: "fig4:pinned".into(),
            scale: 300,
            procs: 4,
            seed: 42,
            messages: 1234,
            bytes: 98765,
            supersteps: 40,
            collectives: 12,
            checkpoints: 1,
            restores: 0,
            rc_steps: 9,
            sim_comm_us: 123456.25,
            sim_compute_us: 789.5,
            wall_us: 321.125,
            faults: FaultTally { dropped: 2, retransmits: 5, ..FaultTally::default() },
            changes: None,
            migration: None,
            stream: None,
            publish: None,
            metrics: None,
            phases: vec![PhaseReport {
                name: "superstep".into(),
                count: 160,
                sim_us: 700.0,
                wall_us: 650.0,
                messages: 0,
                bytes: 0,
            }],
            ranks: vec![
                RankReport { rank: -1, spans: 30, sim_busy_us: 9.0, wall_busy_us: 1.0 },
                RankReport { rank: 0, spans: 40, sim_busy_us: 200.5, wall_busy_us: 180.0 },
            ],
            quality: vec![
                QualityPoint { rc_step: 0, error: 0.25, top_k_recall: 0.6 },
                QualityPoint { rc_step: 5, error: 0.0, top_k_recall: 1.0 },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_equal() {
        let report = sample_report();
        let text = report.to_json_string();
        let back = RunReport::from_json_str(&text).expect("own output parses");
        assert_eq!(back, report);
        // And the serialized form is stable (idempotent).
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn changes_section_round_trips_and_is_optional() {
        // Absent section stays absent (old baselines parse as None).
        let without = sample_report();
        assert!(without.changes.is_none());
        assert!(!without.to_json_string().contains("\"changes\""));

        let mut with = sample_report();
        with.changes =
            Some(ChangeTally { submitted: 10, coalesced: 3, applied: 7, drains: 2, epochs: 14 });
        let text = with.to_json_string();
        let back = RunReport::from_json_str(&text).expect("own output parses");
        assert_eq!(back, with);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn migration_and_stream_sections_round_trip_and_are_optional() {
        let without = sample_report();
        assert!(without.migration.is_none() && without.stream.is_none());
        let text = without.to_json_string();
        assert!(!text.contains("\"migration\"") && !text.contains("\"stream\""));

        let mut with = sample_report();
        with.migration =
            Some(MigrationTally { migrations: 3, migrated_rows: 48, migration_bytes: 9216 });
        with.stream = Some(StreamTally {
            offered: 500,
            ticks: 64,
            p99_staleness_epochs: 3,
            max_staleness_epochs: 5,
            peak_queue: 40,
            final_imbalance_milli: 1125,
            changes_per_sec: 12345.5,
        });
        let text = with.to_json_string();
        let back = RunReport::from_json_str(&text).expect("own output parses");
        assert_eq!(back, with);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn publish_section_round_trips_and_is_optional() {
        let without = sample_report();
        assert!(without.publish.is_none());
        assert!(!without.to_json_string().contains("\"publish\""));

        let mut with = sample_report();
        with.publish = Some(PublishTally {
            full_epochs: 2,
            delta_epochs: 38,
            changed_rows: 512,
            chunks_copied: 44,
            chunks_shared: 196,
            topk_rebuilds: 3,
        });
        let text = with.to_json_string();
        let back = RunReport::from_json_str(&text).expect("own output parses");
        assert_eq!(back, with);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn metrics_section_round_trips_and_is_optional() {
        let without = sample_report();
        assert!(without.metrics.is_none());
        assert!(!without.to_json_string().contains("\"metrics\""));

        let mut with = sample_report();
        with.metrics = Some(MetricsTally {
            betweenness_epochs: 12,
            sources_recomputed: 640,
            full_recomputes: 2,
            changed_entries: 911,
        });
        let text = with.to_json_string();
        let back = RunReport::from_json_str(&text).expect("own output parses");
        assert_eq!(back, with);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut doc = sample_report().to_json();
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::Num(99.0);
        }
        let err = RunReport::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("version 99"));
    }

    #[test]
    fn totals_and_final_quality() {
        let r = sample_report();
        assert_eq!(r.sim_total_us(), 123456.25 + 789.5);
        assert_eq!(r.final_quality().unwrap().rc_step, 5);
        assert_eq!(r.faults.injected(), 2);
    }

    #[test]
    fn aggregation_from_events() {
        let mk = |kind, rank, sim, msgs| SpanEvent {
            kind,
            rank,
            superstep: 0,
            sim_start_us: 0.0,
            sim_dur_us: sim,
            wall_start_us: 0.0,
            wall_dur_us: sim / 2.0,
            messages: msgs,
            bytes: msgs * 10,
        };
        let events = vec![
            mk(SpanKind::Superstep, 0, 10.0, 0),
            mk(SpanKind::Superstep, 1, 20.0, 0),
            mk(SpanKind::Exchange, DRIVER_LANE, 100.0, 6),
            mk(SpanKind::Superstep, 0, 5.0, 0),
        ];
        let phases = aggregate_phases(&events);
        assert_eq!(phases.len(), 2, "only kinds with spans appear");
        assert_eq!(phases[0].name, "superstep");
        assert_eq!(phases[0].count, 3);
        assert_eq!(phases[0].sim_us, 35.0);
        assert_eq!(phases[1].name, "exchange");
        assert_eq!(phases[1].messages, 6);
        assert_eq!(phases[1].bytes, 60);

        let ranks = per_rank_busy(&events);
        assert_eq!(ranks.len(), 3);
        assert_eq!(ranks[0].rank, DRIVER_LANE);
        assert_eq!(ranks[1].rank, 0);
        assert_eq!(ranks[1].spans, 2);
        assert_eq!(ranks[1].sim_busy_us, 15.0);
        assert_eq!(ranks[2].sim_busy_us, 20.0);
    }
}
