//! A minimal hand-rolled JSON value, writer and parser.
//!
//! The workspace has no registry access, so no serde: this module covers
//! exactly what run reports and Chrome traces need — objects, arrays,
//! strings with escapes, finite doubles, booleans and null. Numbers are
//! written with Rust's shortest round-trip `f64` formatting, so
//! `parse(render(x)) == x` holds bit-exactly for every finite value (the
//! report round-trip test relies on this).

use std::fmt::Write as _;

/// A parsed or buildable JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64`; the report's integer counters stay
    /// exact well past any realistic magnitude (2^53).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order is preserved — reports serialize deterministically.
    Obj(Vec<(String, Json)>),
}

/// Typed parse/shape errors, with the byte offset where parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Input ended or contained an unexpected byte.
    Syntax { at: usize, what: String },
    /// The document parsed but did not have the expected shape.
    Shape(String),
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::Syntax { at, what } => write!(f, "JSON syntax error at byte {at}: {what}"),
            JsonError::Shape(what) => write!(f, "unexpected JSON shape: {what}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    // ---------------------------------------------------------------
    // Accessors (shape helpers for readers)
    // ---------------------------------------------------------------

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Json::get`], but a missing key or wrong container is a
    /// [`JsonError::Shape`].
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError::Shape(format!("missing field `{key}`")))
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional values).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Typed field readers — shape errors name the offending key.
    pub fn f64_field(&self, key: &str) -> Result<f64, JsonError> {
        self.field(key)?
            .as_f64()
            .ok_or_else(|| JsonError::Shape(format!("field `{key}` is not a number")))
    }

    pub fn u64_field(&self, key: &str) -> Result<u64, JsonError> {
        self.field(key)?
            .as_u64()
            .ok_or_else(|| JsonError::Shape(format!("field `{key}` is not a non-negative integer")))
    }

    pub fn str_field(&self, key: &str) -> Result<&str, JsonError> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| JsonError::Shape(format!("field `{key}` is not a string")))
    }

    pub fn arr_field(&self, key: &str) -> Result<&[Json], JsonError> {
        self.field(key)?
            .as_arr()
            .ok_or_else(|| JsonError::Shape(format!("field `{key}` is not an array")))
    }

    // ---------------------------------------------------------------
    // Writer
    // ---------------------------------------------------------------

    /// Compact rendering (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline —
    /// the on-disk report format (stable, diffable).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    // ---------------------------------------------------------------
    // Parser
    // ---------------------------------------------------------------

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Parses a document from raw bytes — the entry point for data read
    /// off disk or a socket, where corruption may have produced invalid
    /// UTF-8. Every malformed input (bad encoding, truncation, garbage)
    /// returns a typed [`JsonError`]; this function never panics.
    pub fn parse_bytes(input: &[u8]) -> Result<Json, JsonError> {
        let s = std::str::from_utf8(input).map_err(|e| JsonError::Syntax {
            at: e.valid_up_to(),
            what: "invalid UTF-8".to_string(),
        })?;
        Json::parse(s)
    }
}

/// Nesting cap: recursion in the parser is bounded so hostile or corrupted
/// input (`[[[[…`) hits a typed error, never a stack overflow. Real
/// reports nest 4–5 levels.
const MAX_DEPTH: usize = 128;

/// JSON has no NaN/Infinity; reports never contain them (they would mean a
/// broken cost model), so treat them as a programming error loudly rather
/// than writing invalid output.
fn write_number(out: &mut String, n: f64) {
    assert!(n.is_finite(), "non-finite number in JSON document: {n}");
    if n == n.trunc() && n.abs() < 1e15 {
        // Integral values print without the ".0" Rust's Display would omit
        // anyway, and without exponent notation in the exact-count range.
        let _ = write!(out, "{}", n as i64);
    } else {
        // Shortest round-trip formatting: parse(render(x)) == x.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: impl Into<String>) -> JsonError {
        JsonError::Syntax { at: self.pos, what: what.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // documents; accept lone BMP scalars only.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. Both entry points ([`Json::parse`]
                    // takes &str, [`Json::parse_bytes`] validates upfront)
                    // guarantee well-formed UTF-8 here.
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text
            .parse()
            .map_err(|_| JsonError::Syntax { at: start, what: format!("bad number `{text}`") })?;
        if !n.is_finite() {
            return Err(JsonError::Syntax {
                at: start,
                what: format!("non-finite number `{text}`"),
            });
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("fig4 \"pinned\"\n".into())),
            ("count".into(), Json::Num(42.0)),
            ("ratio".into(), Json::Num(0.1)),
            ("big".into(), Json::Num(9_007_199_254_740_991.0)),
            ("neg".into(), Json::Num(-17.25)),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            ("items".into(), Json::Arr(vec![Json::Num(1.0), Json::Str("två".into())])),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "round trip failed for: {text}");
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456.789012345, f64::MAX, f64::MIN_POSITIVE] {
            let text = Json::Num(x).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} → {text} → {back}");
        }
    }

    #[test]
    fn integral_values_print_without_exponent() {
        assert_eq!(Json::Num(1_000_000.0).render(), "1000000");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(0.5).render(), "0.5");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "a\tbå\"c", "n": -1.5e3}"#).unwrap();
        assert_eq!(v.str_field("s").unwrap(), "a\tbå\"c");
        assert_eq!(v.f64_field("n").unwrap(), -1500.0);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "{\"a\":NaN}"] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn shape_helpers_report_key_names() {
        let v = Json::parse(r#"{"a": 1, "s": "x", "l": [1]}"#).unwrap();
        assert_eq!(v.u64_field("a").unwrap(), 1);
        assert_eq!(v.str_field("s").unwrap(), "x");
        assert_eq!(v.arr_field("l").unwrap().len(), 1);
        let err = v.u64_field("missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
        let err = v.u64_field("s").unwrap_err();
        assert!(err.to_string().contains("`s`"));
        assert!(Json::Num(1.5).as_u64().is_none(), "fractional is not u64");
    }
}
