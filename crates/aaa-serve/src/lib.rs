//! # aaa-serve — snapshot-isolated query serving
//!
//! The read side of the engine's **ingest → compute → publish** pipeline.
//! [`ServeHandle`] wraps the engine's shared [`ViewCell`] and answers
//! point lookups, top-k queries, error-bound queries, and epoch metadata
//! from the **latest published epoch** — entirely `&self`, `Send + Sync`,
//! and without ever touching the engine. Any number of reader threads can
//! query while the BSP loop, chaos layer, and checkpointing keep running
//! on the writer thread.
//!
//! The isolation contract readers get:
//!
//! * **never torn** — a query sees one complete epoch, never a mix of two
//!   (views are immutable; the cell swaps whole `Arc`s);
//! * **never stale beyond the latest epoch** — `view()` returns the most
//!   recently published epoch at the instant of the load;
//! * **monotone** — epoch ids observed by any single reader through one
//!   handle never decrease.
//!
//! ```
//! use aaa_core::{AnytimeEngine, EngineConfig};
//! use aaa_graph::generators::{barabasi_albert, WeightModel};
//! use aaa_serve::ServeHandle;
//!
//! let g = barabasi_albert(120, 2, WeightModel::Unit, 7).unwrap();
//! let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(4)).unwrap();
//! let handle = ServeHandle::attach(&engine);
//! let reader = std::thread::spawn(move || {
//!     // Queries are answered from published epochs, off the engine.
//!     handle.top_k(5)
//! });
//! engine.run_to_convergence();
//! assert_eq!(reader.join().unwrap().len(), 5);
//! ```

use aaa_core::publish::{PublishedView, ViewCell};
use aaa_core::{MetricKind, MetricMask};
use aaa_graph::VertexId;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Typed serving errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// [`ServeHandle::wait_for_epoch_deadline`] gave up: the published
    /// epoch never reached `target` within the deadline — typically the
    /// writer died or stopped publishing.
    EpochTimeout {
        /// The epoch the caller was waiting for.
        target: u64,
        /// The latest epoch actually published when the wait expired.
        latest: u64,
        /// How long the caller waited.
        waited: Duration,
    },
    /// A `*_for` query named a metric the published view does not carry
    /// (the engine was not configured to maintain it).
    MetricUnavailable {
        /// The metric the caller asked for.
        requested: MetricKind,
        /// The metrics the view actually carries.
        available: MetricMask,
    },
    /// [`ServeHandle::wait_for_bound`] gave up: no epoch satisfying the
    /// requested error bound was published within the deadline.
    BoundTimeout {
        /// The vertex whose bound was being watched.
        vertex: VertexId,
        /// The latest epoch inspected when the wait expired.
        epoch: u64,
        /// How long the caller waited.
        waited: Duration,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::EpochTimeout { target, latest, waited } => {
                write!(f, "epoch {target} not published within {waited:?} (latest epoch: {latest})")
            }
            ServeError::MetricUnavailable { requested, available } => {
                write!(f, "metric {requested} not published (view carries: {available})")
            }
            ServeError::BoundTimeout { vertex, epoch, waited } => {
                write!(
                    f,
                    "no epoch met the requested bound for vertex {vertex} within {waited:?} \
                     (latest epoch: {epoch})"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Epoch metadata for one published view — what a dashboard or freshness
/// monitor needs without the O(n) payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochInfo {
    /// Strictly-increasing epoch id (0 = nothing published yet).
    pub epoch: u64,
    /// RC steps the engine had completed at publish time.
    pub rc_steps: usize,
    /// Dynamic changes applied at publish time.
    pub changes_applied: u64,
    /// Whether the engine had reached quiescence at publish time.
    pub converged: bool,
    /// Vertices covered by the view.
    pub vertices: usize,
    /// Centrality columns the view carries (closeness always; extras per
    /// [`aaa_core::EngineConfig::metrics`]).
    pub metrics: MetricMask,
}

/// A cloneable, thread-safe query handle over the engine's published
/// views. Obtain one with [`ServeHandle::attach`] (or from a raw cell via
/// [`ServeHandle::new`]), clone it freely, and move clones into reader
/// threads.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    cell: Arc<ViewCell>,
}

impl ServeHandle {
    /// Wraps a view cell directly (e.g. one forwarded across a process
    /// boundary in a larger system).
    pub fn new(cell: Arc<ViewCell>) -> Self {
        Self { cell }
    }

    /// Attaches to a live engine's publish layer. The handle stays valid
    /// for the engine's whole life — including across checkpoint
    /// fallbacks, which keep the cell identity.
    pub fn attach(engine: &aaa_core::AnytimeEngine) -> Self {
        Self::new(engine.view_cell())
    }

    /// The latest published view, as an immutable snapshot the caller can
    /// hold as long as it likes. One atomic load; never blocks the
    /// compute loop.
    pub fn view(&self) -> Arc<PublishedView> {
        self.cell.load()
    }

    /// The latest epoch id.
    pub fn epoch(&self) -> u64 {
        self.view().epoch
    }

    /// Closeness of `v` in the latest epoch; `None` if `v` is out of
    /// range (e.g. submitted but not yet drained).
    pub fn point(&self, v: VertexId) -> Option<f64> {
        self.view().point(v)
    }

    /// Batched point lookup: closeness of every id in `ids`, answered
    /// against **one** consistent epoch (a single view load amortized
    /// across the batch — and no epoch can change mid-batch, which
    /// per-`point` loops cannot guarantee).
    pub fn points(&self, ids: &[VertexId]) -> Vec<Option<f64>> {
        self.view().points(ids)
    }

    /// The `k` most central vertices in the latest epoch. `O(k)` for
    /// `k ≤` [`aaa_core::TOPK_SERVE_CAP`] via the maintained index
    /// snapshot; larger `k` falls back to a full rescan.
    pub fn top_k(&self, k: usize) -> Vec<(VertexId, f64)> {
        self.view().top_k(k)
    }

    /// Certified bound on `|exact − closeness|` for `v` in the latest
    /// epoch; `None` when the engine publishes without bounds
    /// ([`aaa_core::BoundsMode::None`]) or `v` is out of range.
    pub fn error_bound(&self, v: VertexId) -> Option<f64> {
        self.view().error_bound(v)
    }

    /// Metadata of the latest epoch.
    pub fn metadata(&self) -> EpochInfo {
        let view = self.view();
        EpochInfo {
            epoch: view.epoch,
            rc_steps: view.rc_steps,
            changes_applied: view.changes_applied,
            converged: view.converged,
            vertices: view.num_vertices(),
            metrics: view.metrics(),
        }
    }

    // ----------------------------------------------------------------
    // Metric-parametric queries
    // ----------------------------------------------------------------
    //
    // The closeness-named methods above are the `MetricKind::Closeness`
    // defaults of these; every `*_for` answers from one view load and
    // returns a typed `MetricUnavailable` (never a panic or a silent
    // zero) when the engine is not maintaining the requested column.

    fn checked_view(&self, kind: MetricKind) -> Result<Arc<PublishedView>, ServeError> {
        let view = self.view();
        if !view.has_metric(kind) {
            return Err(ServeError::MetricUnavailable {
                requested: kind,
                available: view.metrics(),
            });
        }
        Ok(view)
    }

    /// Score of `v` in the `kind` column of the latest epoch; `Ok(None)`
    /// if `v` is out of range.
    pub fn point_for(&self, kind: MetricKind, v: VertexId) -> Result<Option<f64>, ServeError> {
        Ok(self.checked_view(kind)?.metric_point(kind, v))
    }

    /// Batched [`ServeHandle::point_for`] against one consistent epoch.
    pub fn points_for(
        &self,
        kind: MetricKind,
        ids: &[VertexId],
    ) -> Result<Vec<Option<f64>>, ServeError> {
        let view = self.checked_view(kind)?;
        Ok(ids.iter().map(|&v| view.metric_point(kind, v)).collect())
    }

    /// The `k` highest-scoring vertices in the `kind` column (ties broken
    /// by lower id, the same total order every metric path uses).
    pub fn top_k_for(
        &self,
        kind: MetricKind,
        k: usize,
    ) -> Result<Vec<(VertexId, f64)>, ServeError> {
        let view = self.checked_view(kind)?;
        Ok(view.metric_top_k(kind, k).expect("checked metric present"))
    }

    /// Certified error bound for `v` under `kind`. Closeness answers like
    /// [`ServeHandle::error_bound`]; metrics without per-vertex intervals
    /// (betweenness is exact-at-convergence instead) answer `Ok(None)`.
    pub fn error_bound_for(
        &self,
        kind: MetricKind,
        v: VertexId,
    ) -> Result<Option<f64>, ServeError> {
        let view = self.checked_view(kind)?;
        Ok(match kind {
            MetricKind::Closeness => view.error_bound(v),
            _ => None,
        })
    }

    /// Parks (condvar wait, no spinning) until the published epoch is
    /// ≥ `epoch` and returns the first such view. Test/example helper —
    /// production readers should just `view()` whatever is current, or
    /// use [`ServeHandle::wait_for_epoch_deadline`], which cannot hang
    /// when the writer dies.
    pub fn wait_for_epoch(&self, epoch: u64) -> Arc<PublishedView> {
        self.cell.wait_for_epoch(epoch)
    }

    /// Like [`ServeHandle::wait_for_epoch`], but gives up after `deadline`
    /// with a typed [`ServeError::EpochTimeout`] instead of waiting
    /// forever — the reader-side failure detector for a dead or wedged
    /// writer. Blocked readers park on the cell's condvar, so a long
    /// deadline does not burn a core.
    pub fn wait_for_epoch_deadline(
        &self,
        epoch: u64,
        deadline: Duration,
    ) -> Result<Arc<PublishedView>, ServeError> {
        match self.cell.wait_for_epoch_until(epoch, Instant::now() + deadline) {
            Ok(view) => Ok(view),
            Err(_) => {
                // The watermark trails the slot by an instant during a
                // store; re-load so `latest` (and a racing success) is
                // judged against the actual published view.
                let view = self.view();
                if view.epoch >= epoch {
                    return Ok(view);
                }
                Err(ServeError::EpochTimeout {
                    target: epoch,
                    latest: view.epoch,
                    waited: deadline,
                })
            }
        }
    }

    /// Watch query: parks until some published epoch answers `v` to
    /// within `eps` — certified bound `≤ eps` in
    /// [`aaa_core::BoundsMode::Certified`], or a converged epoch covering
    /// `v` when the engine publishes without bounds (a converged answer
    /// is exact, bound 0) — and returns the first such view. Epochs are
    /// inspected as they land (condvar parking on the view cell, no
    /// spin-polling); epochs that don't satisfy the predicate are skipped
    /// without waking the caller's logic more than once each. Gives up
    /// after `deadline` with [`ServeError::BoundTimeout`].
    pub fn wait_for_bound(
        &self,
        v: VertexId,
        eps: f64,
        deadline: Duration,
    ) -> Result<Arc<PublishedView>, ServeError> {
        let until = Instant::now() + deadline;
        let mut view = self.view();
        loop {
            if bound_satisfied(&view, v, eps) {
                return Ok(view);
            }
            match self.cell.wait_for_epoch_until(view.epoch + 1, until) {
                Ok(next) => view = next,
                Err(_) => {
                    // Watermark race: a store may have landed as the wait
                    // expired — judge the actual latest view once more.
                    let latest = self.view();
                    if latest.epoch > view.epoch && bound_satisfied(&latest, v, eps) {
                        return Ok(latest);
                    }
                    return Err(ServeError::BoundTimeout {
                        vertex: v,
                        epoch: latest.epoch,
                        waited: deadline,
                    });
                }
            }
        }
    }
}

/// The `wait_for_bound` predicate: is this epoch's answer for `v` within
/// `eps` of exact? A converged epoch is exact (bound 0) whatever the
/// publish mode — the certified interval is conservative and need not
/// collapse at quiescence; an unconverged epoch satisfies only via a
/// published certified bound.
fn bound_satisfied(view: &PublishedView, v: VertexId, eps: f64) -> bool {
    if view.converged && view.point(v).is_some() {
        return true;
    }
    view.error_bound(v).is_some_and(|b| b <= eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_core::{AnytimeEngine, BoundsMode, EngineConfig};
    use aaa_graph::generators::{barabasi_albert, WeightModel};

    fn engine(n: usize, procs: usize) -> AnytimeEngine {
        let g = barabasi_albert(n, 2, WeightModel::Unit, 11).unwrap();
        AnytimeEngine::new(g, EngineConfig::deterministic(procs)).unwrap()
    }

    #[test]
    fn handle_answers_from_published_epochs() {
        let mut e = engine(80, 3);
        let h = ServeHandle::attach(&e);
        // Construction published the IA answer as epoch 1.
        let meta = h.metadata();
        assert_eq!(meta.epoch, 1);
        assert_eq!(meta.vertices, 80);
        assert!(!meta.converged);
        e.run_to_convergence();
        let meta = h.metadata();
        assert!(meta.converged);
        assert!(meta.epoch > 1);
        assert_eq!(h.epoch(), meta.epoch);
        assert_eq!(h.point(0), Some(h.view().closeness()[0]));
        assert_eq!(h.point(80 as VertexId), None);
        assert_eq!(h.top_k(3).len(), 3);
        // Batched lookups answer from one consistent epoch and agree with
        // point-by-point queries.
        let batch = h.points(&[0, 5, 80, 12]);
        assert_eq!(batch, vec![h.point(0), h.point(5), None, h.point(12)]);
        // The maintained top-k agrees with the full-rescan oracle.
        let view = h.view();
        assert_eq!(view.top_k(10), view.top_k_rescan(10));
        // Converged answer matches the engine's own query path.
        assert_eq!(h.view().closeness(), e.closeness().as_slice());
    }

    #[test]
    fn error_bounds_surface_only_in_certified_mode() {
        let g = barabasi_albert(60, 2, WeightModel::UniformRange { lo: 1, hi: 5 }, 3).unwrap();
        let mut cfg = EngineConfig::deterministic(3);
        cfg.publish_bounds = BoundsMode::Certified;
        let mut e = AnytimeEngine::new(g, cfg).unwrap();
        let h = ServeHandle::attach(&e);
        assert!(h.error_bound(0).is_some());
        e.run_to_convergence();
        let view = h.view();
        assert!(view.has_bounds());
        // At convergence the certified interval collapses onto the exact
        // closeness for reachable vertices.
        for v in 0..60u32 {
            assert!(view.error_bound(v).unwrap() >= 0.0);
        }
        let plain = engine(60, 3);
        let h2 = ServeHandle::attach(&plain);
        assert_eq!(h2.error_bound(0), None);
    }

    #[test]
    fn concurrent_readers_query_while_the_engine_converges() {
        let mut e = engine(150, 4);
        let h = ServeHandle::attach(&e);
        let n = e.graph().num_vertices() as u32;
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    let mut last_epoch = 0;
                    let mut lookups = 0u64;
                    while !h.view().converged {
                        let view = h.view();
                        assert!(view.epoch >= last_epoch, "epoch went backwards");
                        last_epoch = view.epoch;
                        for v in 0..n {
                            // Every vertex answers in every epoch (views
                            // are complete, never partial).
                            assert!(view.point(v).is_some());
                            lookups += 1;
                        }
                    }
                    lookups
                })
            })
            .collect();
        // The writer thread drives the BSP loop while readers hammer away.
        let summary = e.run_to_convergence();
        assert!(summary.converged);
        for r in readers {
            assert!(r.join().expect("reader panicked") > 0);
        }
    }

    #[test]
    fn wait_with_deadline_times_out_when_the_writer_dies() {
        let mut e = engine(60, 2);
        let h = ServeHandle::attach(&e);
        e.run_to_convergence();
        let published = h.epoch();
        // Kill the publishing side mid-wait: the engine (the only writer)
        // is dropped while a reader waits for an epoch that will never
        // come. The deadline must surface as a typed error, not a hang.
        let waiter = {
            let h = h.clone();
            std::thread::spawn(move || {
                h.wait_for_epoch_deadline(published + 1, Duration::from_millis(200))
            })
        };
        drop(e);
        match waiter.join().expect("waiter panicked") {
            Err(ServeError::EpochTimeout { target, latest, waited }) => {
                assert_eq!(target, published + 1);
                assert_eq!(latest, published);
                assert_eq!(waited, Duration::from_millis(200));
            }
            Ok(view) => panic!("writer is dead but epoch {} appeared", view.epoch),
            Err(other) => panic!("expected EpochTimeout, got {other:?}"),
        }
    }

    #[test]
    fn wait_with_deadline_returns_early_when_the_epoch_lands() {
        let mut e = engine(60, 2);
        let h = ServeHandle::attach(&e);
        let target = h.epoch() + 1;
        let waiter = {
            let h = h.clone();
            std::thread::spawn(move || h.wait_for_epoch_deadline(target, Duration::from_secs(30)))
        };
        e.run_to_convergence();
        let view = waiter.join().unwrap().expect("epoch was published before the deadline");
        assert!(view.epoch >= target);
    }

    #[test]
    fn metric_queries_answer_or_fail_typed() {
        use aaa_core::MetricKind;
        // Closeness-only engine: betweenness queries fail typed, never
        // panic or return zeros.
        let mut e = engine(60, 3);
        let h = ServeHandle::attach(&e);
        e.run_to_convergence();
        let meta = h.metadata();
        assert!(meta.metrics.contains(MetricKind::Closeness));
        assert!(!meta.metrics.contains(MetricKind::Betweenness));
        match h.point_for(MetricKind::Betweenness, 0) {
            Err(ServeError::MetricUnavailable { requested, available }) => {
                assert_eq!(requested, MetricKind::Betweenness);
                assert_eq!(available, meta.metrics);
            }
            other => panic!("expected MetricUnavailable, got {other:?}"),
        }
        assert!(h.top_k_for(MetricKind::Betweenness, 3).is_err());
        assert!(h.points_for(MetricKind::Betweenness, &[0, 1]).is_err());
        assert!(h.error_bound_for(MetricKind::Betweenness, 0).is_err());
        // The closeness defaults and the `*_for` spellings agree.
        assert_eq!(h.point_for(MetricKind::Closeness, 5).unwrap(), h.point(5));
        assert_eq!(h.top_k_for(MetricKind::Closeness, 4).unwrap(), h.top_k(4));

        // Betweenness-enabled engine: the column serves.
        let g = barabasi_albert(60, 2, WeightModel::Unit, 11).unwrap();
        let mut cfg = EngineConfig::deterministic(3);
        cfg.metrics = vec![MetricKind::Betweenness];
        let mut e = AnytimeEngine::new(g, cfg).unwrap();
        let h = ServeHandle::attach(&e);
        e.run_to_convergence();
        assert!(h.metadata().metrics.contains(MetricKind::Betweenness));
        let col = h.view().metric_values(MetricKind::Betweenness).unwrap();
        assert_eq!(h.point_for(MetricKind::Betweenness, 1).unwrap(), Some(col[1]));
        assert_eq!(h.point_for(MetricKind::Betweenness, 60).unwrap(), None);
        let top = h.top_k_for(MetricKind::Betweenness, 5).unwrap();
        assert_eq!(top.len(), 5);
        assert!(top.windows(2).all(|w| w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)));
        // Betweenness publishes no per-vertex interval.
        assert_eq!(h.error_bound_for(MetricKind::Betweenness, 0).unwrap(), None);
    }

    #[test]
    fn wait_for_bound_parks_until_an_epoch_satisfies() {
        // Certified mode: the bound tightens as RC progresses.
        let g = barabasi_albert(80, 2, WeightModel::UniformRange { lo: 1, hi: 4 }, 9).unwrap();
        let mut cfg = EngineConfig::deterministic(3);
        cfg.publish_bounds = BoundsMode::Certified;
        let mut e = AnytimeEngine::new(g, cfg).unwrap();
        let h = ServeHandle::attach(&e);
        let waiter = {
            let h = h.clone();
            std::thread::spawn(move || h.wait_for_bound(7, 1e-12, Duration::from_secs(30)))
        };
        e.run_to_convergence();
        let view = waiter.join().unwrap().expect("bound reached at convergence");
        assert!(view.converged || view.error_bound(7).unwrap() <= 1e-12);

        // BoundsMode::None: a converged epoch is exact, so it satisfies
        // any eps; an unconverged one never does.
        let mut e = engine(60, 2);
        let h = ServeHandle::attach(&e);
        assert!(matches!(
            h.wait_for_bound(3, 0.5, Duration::from_millis(50)),
            Err(ServeError::BoundTimeout { vertex: 3, .. })
        ));
        e.run_to_convergence();
        let view = h.wait_for_bound(3, 0.0, Duration::from_secs(1)).unwrap();
        assert!(view.converged);
        // Out-of-range vertices can never satisfy: typed timeout.
        match h.wait_for_bound(60, 10.0, Duration::from_millis(50)) {
            Err(ServeError::BoundTimeout { vertex, epoch, waited }) => {
                assert_eq!(vertex, 60);
                assert_eq!(epoch, h.epoch());
                assert_eq!(waited, Duration::from_millis(50));
            }
            other => panic!("expected BoundTimeout, got {other:?}"),
        }
    }

    #[test]
    fn wait_for_epoch_returns_a_fresh_enough_view() {
        let mut e = engine(60, 2);
        let h = ServeHandle::attach(&e);
        let target = h.epoch() + 1;
        let waiter = {
            let h = h.clone();
            std::thread::spawn(move || h.wait_for_epoch(target).epoch)
        };
        e.run_to_convergence();
        assert!(waiter.join().unwrap() >= target);
    }
}
