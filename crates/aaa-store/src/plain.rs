//! [`GraphStore`] implementations for the plain in-memory backends of
//! `aaa-graph`: the mutable adjacency graph and its CSR snapshot. Both keep
//! neighbor lists sorted by id, so the trait contract holds for free.

use crate::GraphStore;
use aaa_graph::{AdjGraph, Csr, VertexId, Weight};

impl GraphStore for AdjGraph {
    type Succ<'a> = std::iter::Copied<std::slice::Iter<'a, (VertexId, Weight)>>;

    #[inline]
    fn num_vertices(&self) -> usize {
        AdjGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        AdjGraph::num_edges(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        AdjGraph::degree(self, v)
    }

    #[inline]
    fn successors(&self, v: VertexId) -> Self::Succ<'_> {
        self.neighbors(v).iter().copied()
    }

    fn memory_bytes(&self) -> usize {
        AdjGraph::memory_bytes(self)
    }
}

impl GraphStore for Csr {
    type Succ<'a> = std::iter::Zip<
        std::iter::Copied<std::slice::Iter<'a, VertexId>>,
        std::iter::Copied<std::slice::Iter<'a, Weight>>,
    >;

    #[inline]
    fn num_vertices(&self) -> usize {
        Csr::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        Csr::num_edges(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        Csr::degree(self, v)
    }

    #[inline]
    fn successors(&self, v: VertexId) -> Self::Succ<'_> {
        self.targets(v).iter().copied().zip(self.weights(v).iter().copied())
    }

    fn memory_bytes(&self) -> usize {
        Csr::memory_bytes(self)
    }
}

impl GraphStore for crate::CompressedGraph {
    type Succ<'a> = crate::CompressedSucc<'a>;

    #[inline]
    fn num_vertices(&self) -> usize {
        crate::CompressedGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        crate::CompressedGraph::num_edges(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        crate::CompressedGraph::degree(self, v)
    }

    #[inline]
    fn successors(&self, v: VertexId) -> Self::Succ<'_> {
        crate::CompressedGraph::successors(self, v)
    }

    fn memory_bytes(&self) -> usize {
        crate::CompressedGraph::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompressedGraph;

    fn sample() -> AdjGraph {
        let mut g = AdjGraph::with_vertices(6);
        for (u, v, w) in [(0, 3, 2), (0, 1, 1), (1, 4, 5), (2, 5, 1), (3, 4, 7)] {
            g.add_edge(u, v, w).unwrap();
        }
        g
    }

    fn rows<G: GraphStore>(g: &G) -> Vec<Vec<(VertexId, Weight)>> {
        g.vertices().map(|v| g.successors(v).collect()).collect()
    }

    #[test]
    fn all_backends_agree_on_successors() {
        let g = sample();
        let csr = Csr::from_adj(&g);
        let comp = CompressedGraph::from_store(&g).unwrap();
        assert_eq!(rows(&g), rows(&csr));
        assert_eq!(rows(&g), rows(&comp));
        for v in GraphStore::vertices(&g) {
            assert_eq!(GraphStore::degree(&g, v), GraphStore::degree(&csr, v));
            assert_eq!(GraphStore::degree(&g, v), GraphStore::degree(&comp, v));
        }
        assert_eq!(GraphStore::num_edges(&g), GraphStore::num_edges(&comp));
    }

    #[test]
    fn memory_accounting_orders_sensibly() {
        // Compressed successor data should be far smaller than adjacency.
        let mut g = AdjGraph::with_vertices(3000);
        for v in 0..2999 {
            g.add_edge(v, v + 1, 1).unwrap();
        }
        let comp = CompressedGraph::from_store(&g).unwrap();
        assert!(comp.data_bytes() * 4 < GraphStore::memory_bytes(&g));
        assert!(GraphStore::memory_bytes(&g) > 0);
        assert!(GraphStore::memory_bytes(&Csr::from_adj(&g)) > 0);
    }
}
