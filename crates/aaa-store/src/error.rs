//! Typed errors for compressed-store construction, ingest, and loading.
//!
//! Corrupt or truncated on-disk graphs must surface as values, never
//! panics — the corruption suite in `tests/store_equivalence.rs` bit-flips
//! and truncates files and asserts every failure is one of these variants.

use aaa_graph::VertexId;
use std::fmt;

/// Errors produced by the compressed store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Underlying I/O failure (spill files, on-disk graph, mmap).
    Io(String),
    /// The file does not start with the `AAST` magic bytes.
    BadMagic { found: [u8; 4] },
    /// The format version is not one this build can read.
    BadVersion { found: u32 },
    /// The file length disagrees with its header or declared section
    /// lengths (shorter, or carrying trailing bytes the header does not
    /// describe).
    Truncated { expected: u64, found: u64 },
    /// A CRC32 over a section does not match the stored checksum.
    CrcMismatch { section: &'static str },
    /// A decoded successor id is outside the declared vertex range.
    VertexOutOfRange { vertex: u64, len: usize },
    /// Rows must be appended in strictly increasing vertex order and each
    /// row's successors must be strictly increasing.
    NotSorted { vertex: VertexId, prev: VertexId, next: VertexId },
    /// A row arrived for a vertex at or before the last one appended.
    RowOrder { last: VertexId, next: VertexId },
    /// A symmetric graph must contain an even number of arcs.
    OddArcCount { arcs: u64 },
    /// An arc with zero weight or a self-loop reached the builder.
    InvalidArc { u: VertexId, v: VertexId, w: u32 },
    /// The sorted arc stream is not symmetric: `(u, v)` present without a
    /// matching `(v, u)` of equal weight.
    Asymmetric { u: VertexId, v: VertexId },
    /// A bitstream read ran past the end of a row's data.
    CodeOverrun { vertex: VertexId },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "bad magic {found:?}, expected \"AAST\"")
            }
            StoreError::BadVersion { found } => {
                write!(f, "unsupported format version {found}")
            }
            StoreError::Truncated { expected, found } => {
                write!(f, "file truncated: need {expected} bytes, have {found}")
            }
            StoreError::CrcMismatch { section } => {
                write!(f, "checksum mismatch in {section} section")
            }
            StoreError::VertexOutOfRange { vertex, len } => {
                write!(f, "decoded vertex {vertex} out of range (graph has {len} vertices)")
            }
            StoreError::NotSorted { vertex, prev, next } => {
                write!(f, "row {vertex}: successors not strictly increasing ({prev} then {next})")
            }
            StoreError::RowOrder { last, next } => {
                write!(f, "row {next} appended after row {last}; rows must strictly increase")
            }
            StoreError::OddArcCount { arcs } => {
                write!(f, "{arcs} arcs cannot form a symmetric (undirected) graph")
            }
            StoreError::InvalidArc { u, v, w } => {
                write!(f, "invalid arc ({u}, {v}, weight {w})")
            }
            StoreError::Asymmetric { u, v } => {
                write!(f, "arc ({u}, {v}) has no symmetric counterpart")
            }
            StoreError::CodeOverrun { vertex } => {
                write!(f, "bitstream overrun while decoding row {vertex}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::BadVersion { found: 9 };
        assert!(e.to_string().contains('9'));
        let e = StoreError::Truncated { expected: 100, found: 3 };
        assert!(e.to_string().contains("100"));
        let e = StoreError::CrcMismatch { section: "data" };
        assert!(e.to_string().contains("data"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: StoreError = io.into();
        assert!(matches!(e, StoreError::Io(_)));
    }
}
