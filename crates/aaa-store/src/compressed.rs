//! The compressed graph backend: gap-coded successor lists under Elias δ/γ
//! codes, with an Elias-Fano index over per-row bit offsets and a CRC'd,
//! mmap-able on-disk layout.
//!
//! Row format for vertex `v` with successors `t₀ < t₁ < … < t_{d-1}`:
//!
//! ```text
//! γ(d+1) · δ(zigzag(t₀ − v)+1) [γ(w₀)] · δ(t₁ − t₀) [γ(w₁)] · …
//! ```
//!
//! The first successor is coded relative to `v` (zigzag because it can be on
//! either side), later ones as strictly positive gaps; weights are
//! interleaved γ codes and omitted entirely for unit-weight graphs.
//!
//! File layout (all little-endian):
//!
//! ```text
//! 0   magic "AAST"        40  data_len (bytes)
//! 4   version = 1         48  ef_len (bytes)
//! 8   flags (bit0=wgt)    56  data crc32
//! 12  reserved            60  ef crc32
//! 16  n (u64)             64  header crc32 (bytes 0..64)
//! 24  num_arcs            68  reserved
//! 32  num_edges           72  data bytes ‖ ef bytes
//! ```

use crate::bits::{unzigzag, zigzag, BitReader, BitWriter};
use crate::ef::EliasFano;
use crate::error::StoreError;
use crate::mmap::{crc32, LoadMode, StoreBytes};
use crate::GraphStore;
use aaa_graph::{VertexId, Weight};
use std::io::Write;
use std::path::Path;

const MAGIC: [u8; 4] = *b"AAST";
const VERSION: u32 = 1;
const FLAG_WEIGHTED: u32 = 1;
const HEADER_LEN: usize = 72;

/// An immutable graph with δ/γ-compressed successor lists.
#[derive(Debug)]
pub struct CompressedGraph {
    n: usize,
    num_arcs: u64,
    num_edges: u64,
    weighted: bool,
    bytes: StoreBytes,
    data_start: usize,
    data_len: usize,
    offsets: EliasFano,
}

impl CompressedGraph {
    /// Compresses any [`GraphStore`] in memory. Weight coding is elided
    /// automatically when every edge has weight 1.
    pub fn from_store<G: GraphStore>(g: &G) -> Result<Self, StoreError> {
        let weighted = g.vertices().any(|v| g.successors(v).any(|(_, w)| w != 1));
        let mut b = CompressedGraphBuilder::new(g.num_vertices(), weighted);
        for v in g.vertices() {
            b.push_row(v, g.successors(v))?;
        }
        b.finish()
    }

    /// Builds from a sorted, deduplicated, symmetric arc stream (the output
    /// of [`crate::PairSorter::finish`]), grouping consecutive arcs by
    /// source.
    pub fn from_sorted_arcs<I>(n: usize, weighted: bool, arcs: I) -> Result<Self, StoreError>
    where
        I: IntoIterator<Item = Result<(VertexId, VertexId, Weight), StoreError>>,
    {
        let mut b = CompressedGraphBuilder::new(n, weighted);
        let mut row: Vec<(VertexId, Weight)> = Vec::new();
        let mut src: Option<VertexId> = None;
        for arc in arcs {
            let (u, v, w) = arc?;
            if src != Some(u) {
                if let Some(s) = src {
                    b.push_row(s, row.drain(..))?;
                }
                src = Some(u);
            }
            row.push((v, w));
        }
        if let Some(s) = src {
            b.push_row(s, row.drain(..))?;
        }
        b.finish()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges as usize
    }

    /// Number of directed arcs (twice the edges).
    #[inline]
    pub fn num_arcs(&self) -> u64 {
        self.num_arcs
    }

    /// True if per-arc weights are stored (false ⇒ every weight is 1).
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    #[inline]
    fn data(&self) -> &[u8] {
        &self.bytes.as_slice()[self.data_start..self.data_start + self.data_len]
    }

    /// Decoded successor iterator for `v`, sorted by target id.
    pub fn successors(&self, v: VertexId) -> CompressedSucc<'_> {
        let mut r = BitReader::new_at(self.data(), self.offsets.get(v as usize));
        let remaining = r.read_gamma().map_or(0, |d| d - 1);
        CompressedSucc { r, v, prev: 0, remaining, first: true, weighted: self.weighted }
    }

    /// Degree of `v` without decoding the successors.
    pub fn degree(&self, v: VertexId) -> usize {
        let mut r = BitReader::new_at(self.data(), self.offsets.get(v as usize));
        r.read_gamma().map_or(0, |d| (d - 1) as usize)
    }

    /// Bytes of the successor bitstream (the quantity the ≤ 4 bytes/edge
    /// acceptance bound is about).
    pub fn data_bytes(&self) -> usize {
        self.data_len
    }

    /// Resident bytes of the offset index.
    pub fn index_bytes(&self) -> usize {
        self.offsets.memory_bytes()
    }

    /// Resident heap bytes: the offset index plus the data section if it
    /// lives on the heap (an mmap'd data section counts 0 — its pages
    /// belong to the page cache).
    pub fn memory_bytes(&self) -> usize {
        self.bytes.heap_bytes() + self.offsets.memory_bytes()
    }

    /// Fully decodes every row, verifying codes, successor ordering, and
    /// target ranges against the header. O(arcs).
    pub fn validate(&self) -> Result<(), StoreError> {
        let mut arcs = 0u64;
        for v in 0..self.n as VertexId {
            let declared = self.degree(v) as u64;
            let mut prev: Option<VertexId> = None;
            let mut decoded = 0u64;
            for (t, w) in self.successors(v) {
                if (t as usize) >= self.n {
                    return Err(StoreError::VertexOutOfRange { vertex: t as u64, len: self.n });
                }
                if t == v || w == 0 {
                    return Err(StoreError::InvalidArc { u: v, v: t, w });
                }
                if let Some(p) = prev {
                    if t <= p {
                        return Err(StoreError::NotSorted { vertex: v, prev: p, next: t });
                    }
                }
                prev = Some(t);
                decoded += 1;
            }
            // The iterator ends quietly on exhausted bitstreams; a short row
            // means the data section was cut or the codes are corrupt.
            if decoded != declared {
                return Err(StoreError::CodeOverrun { vertex: v });
            }
            arcs += decoded;
        }
        if arcs != self.num_arcs {
            return Err(StoreError::Truncated { expected: self.num_arcs, found: arcs });
        }
        Ok(())
    }

    /// Writes the on-disk layout to `path`.
    pub fn write_to(&self, path: &Path) -> Result<(), StoreError> {
        let ef_bytes = self.offsets.to_bytes();
        let data = self.data();
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(&MAGIC);
        header[4..8].copy_from_slice(&VERSION.to_le_bytes());
        let flags = if self.weighted { FLAG_WEIGHTED } else { 0 };
        header[8..12].copy_from_slice(&flags.to_le_bytes());
        header[16..24].copy_from_slice(&(self.n as u64).to_le_bytes());
        header[24..32].copy_from_slice(&self.num_arcs.to_le_bytes());
        header[32..40].copy_from_slice(&self.num_edges.to_le_bytes());
        header[40..48].copy_from_slice(&(data.len() as u64).to_le_bytes());
        header[48..56].copy_from_slice(&(ef_bytes.len() as u64).to_le_bytes());
        header[56..60].copy_from_slice(&crc32(data).to_le_bytes());
        header[60..64].copy_from_slice(&crc32(&ef_bytes).to_le_bytes());
        let hcrc = crc32(&header[0..64]);
        header[64..68].copy_from_slice(&hcrc.to_le_bytes());
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        w.write_all(&header)?;
        w.write_all(data)?;
        w.write_all(&ef_bytes)?;
        w.flush()?;
        Ok(())
    }

    /// Loads an on-disk graph, verifying magic, version, lengths, and the
    /// CRC of every section. With [`LoadMode::Mmap`] the successor data
    /// stays on disk and pages in on demand.
    pub fn load(path: &Path, mode: LoadMode) -> Result<Self, StoreError> {
        let bytes = StoreBytes::load(path, mode)?;
        let all = bytes.as_slice();
        if all.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                expected: HEADER_LEN as u64,
                found: all.len() as u64,
            });
        }
        if all[0..4] != MAGIC {
            return Err(StoreError::BadMagic { found: all[0..4].try_into().expect("4 bytes") });
        }
        let u32_at = |o: usize| u32::from_le_bytes(all[o..o + 4].try_into().expect("4 bytes"));
        let u64_at = |o: usize| u64::from_le_bytes(all[o..o + 8].try_into().expect("8 bytes"));
        let version = u32_at(4);
        if version != VERSION {
            return Err(StoreError::BadVersion { found: version });
        }
        if crc32(&all[0..64]) != u32_at(64) {
            return Err(StoreError::CrcMismatch { section: "header" });
        }
        // The reserved tail sits after the header CRC and inside no other
        // checksummed section; requiring it zero keeps every header byte
        // covered by some integrity check.
        if all[68..HEADER_LEN] != [0u8; HEADER_LEN - 68] {
            return Err(StoreError::CrcMismatch { section: "header" });
        }
        let flags = u32_at(8);
        let n = u64_at(16) as usize;
        let num_arcs = u64_at(24);
        let num_edges = u64_at(32);
        let data_len = u64_at(40) as usize;
        let ef_len = u64_at(48) as usize;
        let need = HEADER_LEN as u64 + data_len as u64 + ef_len as u64;
        // Exact-length check: a short file is a classic truncation, and
        // trailing bytes mean the header no longer describes the file —
        // either way the store cannot be trusted.
        if all.len() as u64 != need {
            return Err(StoreError::Truncated { expected: need, found: all.len() as u64 });
        }
        if num_edges * 2 != num_arcs {
            return Err(StoreError::OddArcCount { arcs: num_arcs });
        }
        let data = &all[HEADER_LEN..HEADER_LEN + data_len];
        if crc32(data) != u32_at(56) {
            return Err(StoreError::CrcMismatch { section: "data" });
        }
        let ef_bytes = &all[HEADER_LEN + data_len..HEADER_LEN + data_len + ef_len];
        if crc32(ef_bytes) != u32_at(60) {
            return Err(StoreError::CrcMismatch { section: "offsets" });
        }
        let offsets = EliasFano::from_bytes(ef_bytes)?;
        if offsets.len() != n + 1 {
            return Err(StoreError::Truncated {
                expected: n as u64 + 1,
                found: offsets.len() as u64,
            });
        }
        Ok(Self {
            n,
            num_arcs,
            num_edges,
            weighted: flags & FLAG_WEIGHTED != 0,
            bytes,
            data_start: HEADER_LEN,
            data_len,
            offsets,
        })
    }
}

/// Decoding iterator over one row. Ends cleanly (yields no further items)
/// if the bitstream is exhausted; [`CompressedGraph::validate`] turns that
/// into a typed error.
pub struct CompressedSucc<'a> {
    r: BitReader<'a>,
    v: VertexId,
    prev: VertexId,
    remaining: u64,
    first: bool,
    weighted: bool,
}

impl Iterator for CompressedSucc<'_> {
    type Item = (VertexId, Weight);

    fn next(&mut self) -> Option<(VertexId, Weight)> {
        if self.remaining == 0 {
            return None;
        }
        let t = if self.first {
            self.first = false;
            let z = self.r.read_delta()?.checked_sub(1)?;
            (self.v as i64 + unzigzag(z)) as VertexId
        } else {
            let gap = self.r.read_delta()?;
            self.prev.checked_add(gap as VertexId)?
        };
        let w = if self.weighted { self.r.read_gamma()? as Weight } else { 1 };
        self.prev = t;
        self.remaining -= 1;
        Some((t, w))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining as usize))
    }
}

/// Incremental builder: rows must arrive in strictly increasing vertex
/// order; vertices without a row are encoded as isolated.
pub struct CompressedGraphBuilder {
    n: usize,
    weighted: bool,
    bw: BitWriter,
    offsets: Vec<u64>,
    next_row: u64,
    num_arcs: u64,
    row_buf: Vec<(VertexId, Weight)>,
}

impl CompressedGraphBuilder {
    /// A builder for a graph on `n` vertices. `weighted` chooses whether
    /// per-arc γ weight codes are emitted.
    pub fn new(n: usize, weighted: bool) -> Self {
        Self {
            n,
            weighted,
            bw: BitWriter::new(),
            offsets: Vec::with_capacity(n + 1),
            next_row: 0,
            num_arcs: 0,
            row_buf: Vec::new(),
        }
    }

    fn encode_empty_rows_until(&mut self, v: u64) {
        while self.next_row < v {
            self.offsets.push(self.bw.bit_len());
            self.bw.write_gamma(1); // degree 0
            self.next_row += 1;
        }
    }

    /// Appends the successor row of `v`.
    pub fn push_row<I>(&mut self, v: VertexId, successors: I) -> Result<(), StoreError>
    where
        I: IntoIterator<Item = (VertexId, Weight)>,
    {
        if (v as usize) >= self.n {
            return Err(StoreError::VertexOutOfRange { vertex: v as u64, len: self.n });
        }
        if (v as u64) < self.next_row {
            return Err(StoreError::RowOrder { last: self.next_row as VertexId - 1, next: v });
        }
        self.row_buf.clear();
        let mut prev: Option<VertexId> = None;
        for (t, w) in successors {
            if (t as usize) >= self.n {
                return Err(StoreError::VertexOutOfRange { vertex: t as u64, len: self.n });
            }
            if t == v || w == 0 || (!self.weighted && w != 1) {
                return Err(StoreError::InvalidArc { u: v, v: t, w });
            }
            if let Some(p) = prev {
                if t <= p {
                    return Err(StoreError::NotSorted { vertex: v, prev: p, next: t });
                }
            }
            prev = Some(t);
            self.row_buf.push((t, w));
        }
        self.encode_empty_rows_until(v as u64);
        self.offsets.push(self.bw.bit_len());
        self.bw.write_gamma(self.row_buf.len() as u64 + 1);
        let mut last = 0 as VertexId;
        for (i, &(t, w)) in self.row_buf.iter().enumerate() {
            if i == 0 {
                self.bw.write_delta(zigzag(t as i64 - v as i64) + 1);
            } else {
                self.bw.write_delta((t - last) as u64);
            }
            if self.weighted {
                self.bw.write_gamma(w as u64);
            }
            last = t;
        }
        self.num_arcs += self.row_buf.len() as u64;
        self.next_row = v as u64 + 1;
        Ok(())
    }

    /// Seals the builder into an in-memory [`CompressedGraph`].
    pub fn finish(mut self) -> Result<CompressedGraph, StoreError> {
        self.encode_empty_rows_until(self.n as u64);
        if self.num_arcs % 2 != 0 {
            return Err(StoreError::OddArcCount { arcs: self.num_arcs });
        }
        let total_bits = self.bw.bit_len();
        self.offsets.push(total_bits);
        let offsets = EliasFano::encode(&self.offsets, total_bits);
        let data = self.bw.finish();
        let data_len = data.len();
        Ok(CompressedGraph {
            n: self.n,
            num_arcs: self.num_arcs,
            num_edges: self.num_arcs / 2,
            weighted: self.weighted,
            bytes: StoreBytes::Heap(data),
            data_start: 0,
            data_len,
            offsets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_graph::AdjGraph;

    fn sample() -> AdjGraph {
        let mut g = AdjGraph::with_vertices(8);
        for (u, v, w) in [(0, 1, 3), (0, 7, 1), (1, 2, 2), (2, 5, 9), (3, 4, 1), (5, 7, 4)] {
            g.add_edge(u, v, w).unwrap();
        }
        g
    }

    fn rows<G: GraphStore>(g: &G) -> Vec<Vec<(VertexId, Weight)>> {
        g.vertices().map(|v| g.successors(v).collect()).collect()
    }

    #[test]
    fn round_trips_weighted_graph() {
        let g = sample();
        let c = CompressedGraph::from_store(&g).unwrap();
        assert!(c.is_weighted());
        assert_eq!(c.num_vertices(), 8);
        assert_eq!(c.num_edges(), 6);
        assert_eq!(c.num_arcs(), 12);
        assert_eq!(rows(&g), rows(&c));
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.degree(6), 0);
        c.validate().unwrap();
    }

    #[test]
    fn unit_graphs_skip_weight_codes() {
        let mut g = AdjGraph::with_vertices(5);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            g.add_edge(u, v, 1).unwrap();
        }
        let c = CompressedGraph::from_store(&g).unwrap();
        assert!(!c.is_weighted());
        assert_eq!(rows(&g), rows(&c));
        // A weighted encoding of the same graph must be strictly larger.
        let mut b = CompressedGraphBuilder::new(5, true);
        for v in g.vertices() {
            b.push_row(v, g.neighbors(v).iter().copied()).unwrap();
        }
        let cw = b.finish().unwrap();
        assert!(cw.data_bytes() >= c.data_bytes());
    }

    #[test]
    fn builder_rejects_malformed_rows() {
        let mut b = CompressedGraphBuilder::new(4, false);
        assert!(matches!(b.push_row(0, [(0, 1)]), Err(StoreError::InvalidArc { .. })));
        assert!(matches!(b.push_row(0, [(2, 1), (1, 1)]), Err(StoreError::NotSorted { .. })));
        assert!(matches!(b.push_row(0, [(9, 1)]), Err(StoreError::VertexOutOfRange { .. })));
        b.push_row(2, [(3, 1)]).unwrap();
        assert!(matches!(b.push_row(1, [(3, 1)]), Err(StoreError::RowOrder { .. })));
        // 1 arc total -> cannot be symmetric.
        assert!(matches!(b.finish(), Err(StoreError::OddArcCount { arcs: 1 })));
    }

    #[test]
    fn disk_round_trip_both_modes() {
        let g = sample();
        let c = CompressedGraph::from_store(&g).unwrap();
        let path = std::env::temp_dir().join(format!("aaa-store-disk-{}.aast", std::process::id()));
        c.write_to(&path).unwrap();
        for mode in [LoadMode::Heap, LoadMode::Mmap] {
            let loaded = CompressedGraph::load(&path, mode).unwrap();
            assert_eq!(rows(&c), rows(&loaded));
            assert_eq!(loaded.num_edges(), 6);
            assert!(loaded.is_weighted());
            loaded.validate().unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compresses_far_below_plain() {
        // A 2000-vertex ring + chords: plain CSR is 8 bytes/arc for
        // targets+weights; the compressed stream should be ~1 byte/arc.
        let n = 2000u32;
        let mut g = AdjGraph::with_vertices(n as usize);
        for v in 0..n {
            g.add_edge(v, (v + 1) % n, 1).unwrap();
        }
        let c = CompressedGraph::from_store(&g).unwrap();
        assert_eq!(rows(&g), rows(&c));
        let per_arc = c.data_bytes() as f64 / c.num_arcs() as f64;
        assert!(per_arc < 2.0, "ring should compress to <2 bytes/arc, got {per_arc:.2}");
    }
}
