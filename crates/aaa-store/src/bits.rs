//! MSB-first bitstream with instantaneous codes (unary, Elias γ, Elias δ).
//!
//! These are the classic WebGraph successor-list codes: γ for small values
//! (degrees, weights), δ for gaps whose distribution has a heavier tail.
//! Both are prefix-free, so rows decode with no length framing beyond the
//! bit offset of the row start.

/// Appends bits MSB-first into a growing byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    cur: u64,
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bits written so far.
    #[inline]
    pub fn bit_len(&self) -> u64 {
        self.buf.len() as u64 * 8 + self.nbits as u64
    }

    /// Writes the low `n` bits of `v`, most significant first. `n ≤ 56`.
    #[inline]
    pub fn write_bits(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 56, "write_bits supports at most 56 bits per call");
        debug_assert!(n == 64 || v < (1u64 << n));
        self.cur = (self.cur << n) | v;
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.buf.push((self.cur >> self.nbits) as u8);
        }
    }

    /// Writes `k` zero bits followed by a one bit (unary code for `k`).
    pub fn write_unary(&mut self, mut k: u32) {
        while k >= 32 {
            self.write_bits(0, 32);
            k -= 32;
        }
        self.write_bits(1, k + 1);
    }

    /// Elias γ code for `x ≥ 1`: `L-1` zeros then the `L` bits of `x`.
    pub fn write_gamma(&mut self, x: u64) {
        debug_assert!(x >= 1);
        let len = 64 - x.leading_zeros();
        self.write_unary(len - 1);
        if len > 1 {
            self.write_bits(x & !(1u64 << (len - 1)), len - 1);
        }
    }

    /// Elias δ code for `x ≥ 1`: γ code of the bit length, then the
    /// remaining `L-1` bits of `x`.
    pub fn write_delta(&mut self, x: u64) {
        debug_assert!(x >= 1);
        let len = 64 - x.leading_zeros();
        self.write_gamma(len as u64);
        if len > 1 {
            self.write_bits(x & !(1u64 << (len - 1)), len - 1);
        }
    }

    /// Flushes the final partial byte (zero-padded) and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.cur <<= pad;
            self.buf.push(self.cur as u8);
            self.nbits = 0;
        }
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice. All reads return `None` past the
/// end of the slice instead of panicking, so corrupt streams surface as
/// typed errors in the callers.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    cur: u64,
    avail: u32,
}

impl<'a> BitReader<'a> {
    /// Reader positioned at `bit_offset` bits into `data`.
    pub fn new_at(data: &'a [u8], bit_offset: u64) -> Self {
        let mut r = Self { data, pos: (bit_offset / 8) as usize, cur: 0, avail: 0 };
        let skip = (bit_offset % 8) as u32;
        if skip > 0 {
            r.read_bits(skip);
        }
        r
    }

    #[inline]
    fn refill(&mut self) {
        while self.avail <= 56 && self.pos < self.data.len() {
            self.cur = (self.cur << 8) | self.data[self.pos] as u64;
            self.pos += 1;
            self.avail += 8;
        }
    }

    /// Reads `n ≤ 56` bits; `None` if the stream is exhausted.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        if n == 0 {
            return Some(0);
        }
        self.refill();
        if self.avail < n {
            return None;
        }
        self.avail -= n;
        Some((self.cur >> self.avail) & ((1u64 << n) - 1))
    }

    /// Reads a unary code: the number of zeros before the next one bit.
    pub fn read_unary(&mut self) -> Option<u32> {
        let mut count = 0u32;
        loop {
            self.refill();
            if self.avail == 0 {
                return None;
            }
            let window = self.cur << (64 - self.avail);
            let lz = window.leading_zeros().min(self.avail);
            if lz < self.avail {
                self.avail -= lz + 1;
                return Some(count + lz);
            }
            count += lz;
            self.avail = 0;
        }
    }

    /// Reads an Elias γ code.
    pub fn read_gamma(&mut self) -> Option<u64> {
        let z = self.read_unary()?;
        if z == 0 {
            return Some(1);
        }
        Some((1u64 << z) | self.read_bits(z)?)
    }

    /// Reads an Elias δ code.
    pub fn read_delta(&mut self) -> Option<u64> {
        let len = self.read_gamma()?;
        if len == 0 || len > 57 {
            return None;
        }
        if len == 1 {
            return Some(1);
        }
        Some((1u64 << (len - 1)) | self.read_bits(len as u32 - 1)?)
    }
}

/// Maps a signed value onto the non-negatives: 0, -1, 1, -2, … → 0, 1, 2, 3…
#[inline]
pub fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0x3FFF, 14);
        w.write_bits(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new_at(&bytes, 0);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(14), Some(0x3FFF));
        assert_eq!(r.read_bits(1), Some(1));
    }

    #[test]
    fn gamma_delta_round_trip() {
        let values: Vec<u64> =
            (1..100).chain([127, 128, 255, 1024, 1 << 20, (1 << 33) + 12345]).collect();
        let mut w = BitWriter::new();
        for &x in &values {
            w.write_gamma(x);
            w.write_delta(x);
        }
        let bytes = w.finish();
        let mut r = BitReader::new_at(&bytes, 0);
        for &x in &values {
            assert_eq!(r.read_gamma(), Some(x), "gamma {x}");
            assert_eq!(r.read_delta(), Some(x), "delta {x}");
        }
    }

    #[test]
    fn unary_round_trip() {
        let mut w = BitWriter::new();
        for k in [0u32, 1, 7, 31, 32, 33, 100] {
            w.write_unary(k);
        }
        let bytes = w.finish();
        let mut r = BitReader::new_at(&bytes, 0);
        for k in [0u32, 1, 7, 31, 32, 33, 100] {
            assert_eq!(r.read_unary(), Some(k));
        }
    }

    #[test]
    fn reads_at_offset() {
        let mut w = BitWriter::new();
        w.write_bits(0, 5);
        w.write_gamma(42);
        let bytes = w.finish();
        let mut r = BitReader::new_at(&bytes, 5);
        assert_eq!(r.read_gamma(), Some(42));
    }

    #[test]
    fn exhausted_stream_returns_none() {
        let bytes = BitWriter::new().finish();
        let mut r = BitReader::new_at(&bytes, 0);
        assert_eq!(r.read_bits(1), None);
        assert_eq!(r.read_unary(), None);
        assert_eq!(r.read_gamma(), None);
        assert_eq!(r.read_delta(), None);
        // A lone byte can't satisfy a 9-bit read.
        let mut r = BitReader::new_at(&[0xAB], 0);
        assert_eq!(r.read_bits(9), None);
    }

    #[test]
    fn zigzag_round_trip() {
        for n in [-1_000_000i64, -2, -1, 0, 1, 2, 1_000_000] {
            assert_eq!(unzigzag(zigzag(n)), n);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
