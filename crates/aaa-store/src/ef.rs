//! Elias-Fano encoding of monotone sequences, used for the per-vertex bit
//! offsets of the compressed successor data.
//!
//! A sequence of `n` values bounded by `u` takes `n·(2 + ⌈log₂(u/n)⌉)` bits:
//! the low `l` bits of each value are stored packed, the high parts as a
//! unary-coded bitvector. Random access (`get(i)`) needs `select₁(i)` on the
//! high bits, answered through a sampled select directory.

use crate::error::StoreError;

/// Distance between sampled ones in the select directory.
const SELECT_SAMPLE: usize = 64;

/// An immutable Elias-Fano–coded monotone sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliasFano {
    n: usize,
    universe: u64,
    low_bits: u32,
    lower: Vec<u64>,
    upper: Vec<u64>,
    /// Bit position in `upper` of every `SELECT_SAMPLE`-th one.
    samples: Vec<u64>,
}

impl EliasFano {
    /// Encodes a non-decreasing sequence. `universe` must be ≥ the last
    /// value (and is stored so `from_bytes` can rebuild identically).
    pub fn encode(values: &[u64], universe: u64) -> Self {
        let n = values.len();
        let low_bits = if n == 0 {
            0
        } else {
            let ratio = (universe + 1) / n as u64;
            if ratio <= 1 {
                0
            } else {
                63 - ratio.leading_zeros()
            }
        };
        let mut lower = vec![0u64; (n as u64 * low_bits as u64).div_ceil(64) as usize];
        let upper_bits = n as u64 + (universe >> low_bits) + 1;
        let mut upper = vec![0u64; upper_bits.div_ceil(64) as usize];
        let mut prev = 0u64;
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(v >= prev, "sequence must be non-decreasing");
            debug_assert!(v <= universe);
            prev = v;
            if low_bits > 0 {
                let low = v & ((1u64 << low_bits) - 1);
                let bit = i as u64 * low_bits as u64;
                let (word, off) = ((bit / 64) as usize, bit % 64);
                lower[word] |= low << off;
                if off + low_bits as u64 > 64 {
                    lower[word + 1] |= low >> (64 - off);
                }
            }
            let pos = (v >> low_bits) + i as u64;
            upper[(pos / 64) as usize] |= 1u64 << (pos % 64);
        }
        let samples = build_samples(&upper, n);
        Self { n, universe, low_bits, lower, upper, samples }
    }

    /// Number of encoded values.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if no values are encoded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The `i`-th value. Panics if `i ≥ len()`.
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.n, "index {i} out of range ({} values)", self.n);
        let high = self.select(i) - i as u64;
        (high << self.low_bits) | self.low(i)
    }

    #[inline]
    fn low(&self, i: usize) -> u64 {
        if self.low_bits == 0 {
            return 0;
        }
        let bit = i as u64 * self.low_bits as u64;
        let (word, off) = ((bit / 64) as usize, bit % 64);
        let mut v = self.lower[word] >> off;
        if off + self.low_bits as u64 > 64 {
            v |= self.lower[word + 1] << (64 - off);
        }
        v & ((1u64 << self.low_bits) - 1)
    }

    /// Bit position of the `i`-th one in `upper`.
    fn select(&self, i: usize) -> u64 {
        let sample = i / SELECT_SAMPLE;
        let mut pos = self.samples[sample];
        let mut remaining = (i - sample * SELECT_SAMPLE) as u32;
        // Skip the sampled one itself, then scan word by word.
        let mut word_idx = (pos / 64) as usize;
        let mut word = self.upper[word_idx] & !((1u64 << (pos % 64)) - 1);
        loop {
            let ones = word.count_ones();
            if ones > remaining {
                // The target one is in this word.
                let mut w = word;
                for _ in 0..remaining {
                    w &= w - 1; // clear lowest set bit
                }
                pos = word_idx as u64 * 64 + w.trailing_zeros() as u64;
                return pos;
            }
            remaining -= ones;
            word_idx += 1;
            word = self.upper[word_idx];
        }
    }

    /// Heap bytes held by the index.
    pub fn memory_bytes(&self) -> usize {
        (self.lower.capacity() + self.upper.capacity() + self.samples.capacity()) * 8
    }

    /// Serializes to a self-describing little-endian byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + (self.lower.len() + self.upper.len()) * 8);
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        out.extend_from_slice(&self.universe.to_le_bytes());
        out.extend_from_slice(&(self.low_bits as u64).to_le_bytes());
        out.extend_from_slice(&(self.lower.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.upper.len() as u64).to_le_bytes());
        for w in self.lower.iter().chain(&self.upper) {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes a [`EliasFano::to_bytes`] layout. The select directory
    /// is rebuilt, not stored.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let word = |i: usize| -> Result<u64, StoreError> {
            let s = bytes.get(i * 8..i * 8 + 8).ok_or(StoreError::Truncated {
                expected: (i as u64 + 1) * 8,
                found: bytes.len() as u64,
            })?;
            Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
        };
        let n = word(0)? as usize;
        let universe = word(1)?;
        let low_bits = word(2)? as u32;
        let lower_len = word(3)? as usize;
        let upper_len = word(4)? as usize;
        if low_bits > 63 {
            return Err(StoreError::CrcMismatch { section: "offsets" });
        }
        let need = 5usize
            .checked_add(lower_len)
            .and_then(|x| x.checked_add(upper_len))
            .and_then(|x| x.checked_mul(8))
            .ok_or(StoreError::Truncated { expected: u64::MAX, found: bytes.len() as u64 })?;
        if bytes.len() < need {
            return Err(StoreError::Truncated { expected: need as u64, found: bytes.len() as u64 });
        }
        let mut lower = Vec::with_capacity(lower_len);
        let mut upper = Vec::with_capacity(upper_len);
        for i in 0..lower_len {
            lower.push(word(5 + i)?);
        }
        for i in 0..upper_len {
            upper.push(word(5 + lower_len + i)?);
        }
        let ones: u64 = upper.iter().map(|w| w.count_ones() as u64).sum();
        if ones < n as u64 {
            return Err(StoreError::CrcMismatch { section: "offsets" });
        }
        let samples = build_samples(&upper, n);
        Ok(Self { n, universe, low_bits, lower, upper, samples })
    }
}

fn build_samples(upper: &[u64], n: usize) -> Vec<u64> {
    let mut samples = Vec::with_capacity(n / SELECT_SAMPLE + 1);
    let mut seen = 0usize;
    for (wi, &w) in upper.iter().enumerate() {
        let mut word = w;
        while word != 0 {
            if seen % SELECT_SAMPLE == 0 {
                samples.push(wi as u64 * 64 + word.trailing_zeros() as u64);
            }
            word &= word - 1;
            seen += 1;
            if seen >= n {
                return samples;
            }
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(values: &[u64], universe: u64) {
        let ef = EliasFano::encode(values, universe);
        assert_eq!(ef.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(i), v, "index {i}");
        }
        let round = EliasFano::from_bytes(&ef.to_bytes()).unwrap();
        assert_eq!(round, ef);
    }

    #[test]
    fn small_sequences() {
        check(&[], 0);
        check(&[0], 0);
        check(&[0, 0, 0], 0);
        check(&[1, 2, 3], 3);
        check(&[0, 0, 5, 5, 9], 9);
    }

    #[test]
    fn large_sparse_and_dense() {
        let sparse: Vec<u64> = (0..1000).map(|i| i * 1_000_003).collect();
        check(&sparse, *sparse.last().unwrap());
        let dense: Vec<u64> = (0..10_000).map(|i| i + (i / 7)).collect();
        check(&dense, *dense.last().unwrap());
        // Long runs of equal values stress select within a crowded word.
        let runs: Vec<u64> = (0..5000).map(|i| (i / 100) * 17).collect();
        check(&runs, *runs.last().unwrap());
    }

    #[test]
    fn truncated_bytes_error() {
        let ef = EliasFano::encode(&[1, 5, 9, 200], 200);
        let bytes = ef.to_bytes();
        for cut in [0, 7, 16, 39, bytes.len() - 1] {
            let err = EliasFano::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn memory_accounting_positive() {
        let ef = EliasFano::encode(&(0..100u64).collect::<Vec<_>>(), 99);
        assert!(ef.memory_bytes() > 0);
    }
}
