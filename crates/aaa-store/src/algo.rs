//! Graph algorithms generic over any [`GraphStore`] backend.
//!
//! These mirror the CSR reference kernels in `aaa-graph::sssp` /
//! `aaa-graph::closeness` exactly — distances are integers and closeness
//! reuses [`aaa_graph::closeness::closeness_from_row`], so every backend
//! produces bit-identical results (the equivalence suite relies on this).

use crate::GraphStore;
use aaa_graph::closeness::closeness_from_row;
use aaa_graph::{dist_add, Dist, VertexId, INF};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// BFS hop counts from `source` (`INF` when unreachable).
pub fn bfs_hops<G: GraphStore>(g: &G, source: VertexId) -> Vec<Dist> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    if n == 0 {
        return dist;
    }
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for (t, _) in g.successors(v) {
            if dist[t as usize] == INF {
                dist[t as usize] = d + 1;
                queue.push_back(t);
            }
        }
    }
    dist
}

/// Dijkstra from `source`, writing into a caller-provided buffer (reset to
/// `INF`); the hot loop for closeness over any backend.
pub fn dijkstra_into<G: GraphStore>(g: &G, source: VertexId, dist: &mut [Dist]) {
    debug_assert_eq!(dist.len(), g.num_vertices());
    dist.fill(INF);
    if g.num_vertices() == 0 {
        return;
    }
    let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale entry
        }
        for (t, w) in g.successors(v) {
            let nd = dist_add(d, w as Dist);
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(Reverse((nd, t)));
            }
        }
    }
}

/// Dijkstra from `source` over any backend.
pub fn dijkstra<G: GraphStore>(g: &G, source: VertexId) -> Vec<Dist> {
    let mut dist = vec![INF; g.num_vertices()];
    dijkstra_into(g, source, &mut dist);
    dist
}

/// Exact closeness of every vertex via parallel per-source Dijkstra.
/// Matches `aaa_graph::closeness::closeness_exact` value-for-value.
pub fn closeness_exact<G: GraphStore + Sync>(g: &G) -> Vec<f64> {
    let n = g.num_vertices();
    (0..n)
        .into_par_iter()
        .map_init(
            || vec![INF; n],
            |buf, s| {
                dijkstra_into(g, s as VertexId, buf);
                closeness_from_row(buf)
            },
        )
        .collect()
}

/// Exact Brandes betweenness over any backend, with deterministic
/// `(distance, id)` tie-breaks — bit-identical to
/// `aaa_graph::centrality::betweenness_exact_det` on the same edge set.
///
/// Per-source rows are computed in parallel, but the dependency vectors
/// are summed sequentially in increasing source order via
/// [`aaa_graph::centrality::betweenness_from_rows`], so the result is a
/// bit-exact function of the graph alone (no reduction-order dependence).
/// This is the `recompute_exact` oracle for the engine's incremental
/// betweenness metric.
pub fn betweenness_exact<G: GraphStore + Sync>(g: &G) -> Vec<f64> {
    let n = g.num_vertices();
    let rows: Vec<Vec<Dist>> = (0..n).into_par_iter().map(|s| dijkstra(g, s as VertexId)).collect();
    aaa_graph::centrality::betweenness_from_rows(
        n,
        |s| rows[s as usize].clone(),
        |v| g.successors(v),
    )
}

/// Worklist (Bellman-Ford-style) single-source relaxation to a fixed point.
///
/// This is the anytime-convergence kernel used on graphs too large for the
/// engine's dense distance-vector state: each round relaxes the frontier of
/// vertices whose distance improved, and the fixed point equals the
/// Dijkstra distances. Returns `(distances, rounds)`.
pub fn sssp_fixed_point<G: GraphStore>(g: &G, source: VertexId) -> (Vec<Dist>, usize) {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    if n == 0 {
        return (dist, 0);
    }
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut queued = vec![false; n];
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            queued[v as usize] = false;
            let d = dist[v as usize];
            for (t, w) in g.successors(v) {
                let nd = dist_add(d, w as Dist);
                if nd < dist[t as usize] {
                    dist[t as usize] = nd;
                    if !queued[t as usize] {
                        queued[t as usize] = true;
                        next.push(t);
                    }
                }
            }
        }
        frontier = next;
    }
    (dist, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompressedGraph;
    use aaa_graph::AdjGraph;

    fn weighted_sample() -> AdjGraph {
        let mut g = AdjGraph::with_vertices(6);
        for (u, v, w) in [(0, 1, 1), (1, 2, 1), (0, 2, 5), (2, 3, 2), (4, 5, 1)] {
            g.add_edge(u, v, w).unwrap();
        }
        g
    }

    #[test]
    fn matches_csr_reference_kernels() {
        let g = weighted_sample();
        let csr = aaa_graph::Csr::from_adj(&g);
        for s in 0..6 {
            assert_eq!(dijkstra(&g, s), aaa_graph::sssp::dijkstra(&csr, s));
            assert_eq!(bfs_hops(&g, s), aaa_graph::sssp::bfs(&csr, s));
        }
        assert_eq!(closeness_exact(&g), aaa_graph::closeness::closeness_exact(&csr));
    }

    #[test]
    fn betweenness_exact_matches_deterministic_oracle_bitwise() {
        let g = weighted_sample();
        let csr = aaa_graph::Csr::from_adj(&g);
        let oracle = aaa_graph::centrality::betweenness_exact_det(&csr);
        assert_eq!(betweenness_exact(&g), oracle);
        let c = CompressedGraph::from_store(&g).unwrap();
        assert_eq!(betweenness_exact(&c), oracle);
        assert!(betweenness_exact(&AdjGraph::new()).is_empty());
    }

    #[test]
    fn fixed_point_equals_dijkstra_on_all_backends() {
        let g = weighted_sample();
        let c = CompressedGraph::from_store(&g).unwrap();
        for s in 0..6 {
            let exact = dijkstra(&g, s);
            let (fp, rounds) = sssp_fixed_point(&c, s);
            assert_eq!(fp, exact, "source {s}");
            assert!(rounds >= 1);
        }
    }

    #[test]
    fn empty_graph() {
        let g = AdjGraph::new();
        assert!(dijkstra(&g, 0).is_empty());
        assert!(bfs_hops(&g, 0).is_empty());
        assert_eq!(sssp_fixed_point(&g, 0).1, 0);
    }
}
