//! Trait-backed graph storage for the anytime-anywhere pipeline.
//!
//! The engine's read-only consumers (domain decomposition, exact oracles,
//! figure bins) only ever need degrees and sorted successor scans. This
//! crate puts that contract behind [`GraphStore`] and provides three
//! backends:
//!
//! * the mutable adjacency graph and its CSR snapshot from `aaa-graph`
//!   (implemented here for those foreign types), and
//! * [`CompressedGraph`] — gap-coded successor lists under Elias δ/γ codes
//!   with an Elias-Fano offset index, built either in memory or via
//!   external-memory ingest ([`PairSorter`]) from edge batches that spill
//!   to disk, and loadable from an mmap-able on-disk layout.
//!
//! All backends yield **identical sorted successor lists** for the same
//! graph; `tests/store_equivalence.rs` holds them to that under proptest.
//! [`algo`] hosts the backend-generic reference kernels (BFS, Dijkstra,
//! closeness, worklist fixed point) so oracles run unchanged on any
//! backend.

pub mod algo;
mod bits;
mod ef;
mod error;
mod ingest;
mod mmap;
mod plain;

mod compressed;

pub use compressed::{CompressedGraph, CompressedGraphBuilder, CompressedSucc};
pub use ef::EliasFano;
pub use error::StoreError;
pub use ingest::{sort_edges, PairSorter, SortedArcs};
pub use mmap::LoadMode;

use aaa_graph::{VertexId, Weight};

/// Read-only access to an undirected, positively-weighted graph.
///
/// Contract every backend upholds:
/// * vertex ids are dense in `0..num_vertices()`;
/// * [`GraphStore::successors`] yields neighbors in strictly increasing id
///   order, each with its positive weight;
/// * adjacency is symmetric (`t ∈ succ(v)` ⟺ `v ∈ succ(t)`, equal weight);
/// * [`GraphStore::memory_bytes`] reports resident heap bytes so backends
///   can be compared on bytes/edge.
pub trait GraphStore {
    /// Sorted successor iterator (a GAT so slice-backed stores can borrow).
    type Succ<'a>: Iterator<Item = (VertexId, Weight)>
    where
        Self: 'a;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of undirected edges.
    fn num_edges(&self) -> usize;

    /// Degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Successors of `v` in strictly increasing id order.
    fn successors(&self, v: VertexId) -> Self::Succ<'_>;

    /// Resident heap bytes of the graph structure.
    fn memory_bytes(&self) -> usize;

    /// Iterator over the dense vertex-id space.
    fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Number of directed arcs (twice the undirected edge count).
    fn num_arcs(&self) -> u64 {
        2 * self.num_edges() as u64
    }
}

/// Each undirected edge exactly once as `(u, v, w)` with `u < v`, ordered
/// by `(u, v)` — the backend-generic analogue of `AdjGraph::edges`.
pub fn edges<G: GraphStore>(g: &G) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
    g.vertices().flat_map(move |u| {
        g.successors(u).filter(move |&(v, _)| u < v).map(move |(v, w)| (u, v, w))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_graph::AdjGraph;

    #[test]
    fn edges_helper_matches_adjgraph_edges() {
        let mut g = AdjGraph::with_vertices(5);
        for (u, v, w) in [(0, 1, 1), (0, 4, 2), (2, 3, 3), (1, 4, 4)] {
            g.add_edge(u, v, w).unwrap();
        }
        let from_trait: Vec<_> = edges(&g).collect();
        let from_inherent: Vec<_> = g.edges().collect();
        assert_eq!(from_trait, from_inherent);
    }

    #[test]
    fn provided_methods() {
        let mut g = AdjGraph::with_vertices(3);
        g.add_edge(0, 1, 1).unwrap();
        assert_eq!(GraphStore::num_arcs(&g), 2);
        assert_eq!(GraphStore::vertices(&g).collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
