//! External-memory ingest: accepts `(src, dst, weight)` edge batches in any
//! order, spills sorted runs to disk when a memory budget fills, and merges
//! the runs into one deduplicated, sorted, symmetric arc stream — the
//! `sort_pairs` idiom that lets a graph far larger than RAM be compressed
//! on one machine.

use crate::error::StoreError;
use aaa_graph::{VertexId, Weight};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

type ArcRec = (VertexId, VertexId, Weight);
const REC_BYTES: usize = 12;

/// Buffers arcs up to a byte budget, spilling sorted runs to `dir`.
///
/// [`PairSorter::push_edge`] inserts *both* arcs of an undirected edge, so
/// the merged stream is symmetric by construction; duplicate `(src, dst)`
/// pairs keep the minimum weight (the `add_or_min_edge` convention of the
/// in-memory backend).
pub struct PairSorter {
    dir: PathBuf,
    budget_arcs: usize,
    buf: Vec<ArcRec>,
    runs: Vec<PathBuf>,
}

impl PairSorter {
    /// A sorter spilling to `dir` (created if missing) once the in-memory
    /// buffer exceeds `budget_bytes`.
    pub fn new(dir: impl Into<PathBuf>, budget_bytes: usize) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let budget_arcs = (budget_bytes / REC_BYTES).max(2);
        Ok(Self { dir, budget_arcs, buf: Vec::new(), runs: Vec::new() })
    }

    /// Queues the undirected edge `(u, v, w)` as two arcs.
    pub fn push_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), StoreError> {
        if u == v || w == 0 {
            return Err(StoreError::InvalidArc { u, v, w });
        }
        self.buf.push((u, v, w));
        self.buf.push((v, u, w));
        if self.buf.len() >= self.budget_arcs {
            self.spill()?;
        }
        Ok(())
    }

    /// Queues a batch of undirected edges.
    pub fn push_edges(&mut self, batch: &[(VertexId, VertexId, Weight)]) -> Result<(), StoreError> {
        for &(u, v, w) in batch {
            self.push_edge(u, v, w)?;
        }
        Ok(())
    }

    /// Number of sorted runs spilled so far (observable for tests).
    pub fn runs_spilled(&self) -> usize {
        self.runs.len()
    }

    fn spill(&mut self) -> Result<(), StoreError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable();
        let path = self.dir.join(format!("run-{:05}.arcs", self.runs.len()));
        let mut w = BufWriter::new(File::create(&path)?);
        for &(u, v, wt) in &self.buf {
            w.write_all(&u.to_le_bytes())?;
            w.write_all(&v.to_le_bytes())?;
            w.write_all(&wt.to_le_bytes())?;
        }
        w.flush()?;
        self.buf.clear();
        self.runs.push(path);
        Ok(())
    }

    /// Sorts the final buffer and returns the merged, deduplicated stream.
    pub fn finish(mut self) -> Result<SortedArcs, StoreError> {
        self.buf.sort_unstable();
        let mut sources: Vec<RunSource> = Vec::with_capacity(self.runs.len() + 1);
        for path in self.runs.drain(..) {
            sources.push(RunSource::File(RunReader::open(path)?));
        }
        let mem = std::mem::take(&mut self.buf);
        sources.push(RunSource::Mem(mem.into_iter()));
        let mut heap = BinaryHeap::with_capacity(sources.len());
        for (i, s) in sources.iter_mut().enumerate() {
            if let Some(rec) = s.next_rec()? {
                heap.push(Reverse((rec, i)));
            }
        }
        Ok(SortedArcs { sources, heap, last: None })
    }
}

enum RunSource {
    Mem(std::vec::IntoIter<ArcRec>),
    File(RunReader),
}

impl RunSource {
    fn next_rec(&mut self) -> Result<Option<ArcRec>, StoreError> {
        match self {
            RunSource::Mem(it) => Ok(it.next()),
            RunSource::File(r) => r.next_rec(),
        }
    }
}

struct RunReader {
    rd: BufReader<File>,
    path: PathBuf,
}

impl RunReader {
    fn open(path: PathBuf) -> Result<Self, StoreError> {
        let rd = BufReader::with_capacity(1 << 20, File::open(&path)?);
        Ok(Self { rd, path })
    }

    fn next_rec(&mut self) -> Result<Option<ArcRec>, StoreError> {
        let mut rec = [0u8; REC_BYTES];
        match self.rd.read_exact(&mut rec) {
            Ok(()) => Ok(Some((
                u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes")),
                u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes")),
                u32::from_le_bytes(rec[8..12].try_into().expect("4 bytes")),
            ))),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

impl Drop for RunReader {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// K-way merged arc stream, sorted by `(src, dst)`, duplicates collapsed to
/// their minimum weight. Feed directly into
/// [`crate::CompressedGraph::from_sorted_arcs`].
pub struct SortedArcs {
    sources: Vec<RunSource>,
    heap: BinaryHeap<Reverse<(ArcRec, usize)>>,
    last: Option<(VertexId, VertexId)>,
}

impl Iterator for SortedArcs {
    type Item = Result<ArcRec, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let Reverse((rec, i)) = self.heap.pop()?;
            match self.sources[i].next_rec() {
                Ok(Some(next)) => self.heap.push(Reverse((next, i))),
                Ok(None) => {}
                Err(e) => return Some(Err(e)),
            }
            // Runs are sorted by (src, dst, weight): the first record of a
            // duplicate group carries the minimum weight, the rest drop.
            if self.last == Some((rec.0, rec.1)) {
                continue;
            }
            self.last = Some((rec.0, rec.1));
            return Some(Ok(rec));
        }
    }
}

/// Convenience: drain an edge iterator through a [`PairSorter`]. `dir` is a
/// scratch directory for spill runs; `budget_bytes` bounds resident arcs.
pub fn sort_edges<I>(dir: &Path, budget_bytes: usize, edges: I) -> Result<SortedArcs, StoreError>
where
    I: IntoIterator<Item = (VertexId, VertexId, Weight)>,
{
    let mut sorter = PairSorter::new(dir, budget_bytes)?;
    for (u, v, w) in edges {
        sorter.push_edge(u, v, w)?;
    }
    sorter.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("aaa-ingest-{}-{name}", std::process::id()))
    }

    fn collect(s: SortedArcs) -> Vec<ArcRec> {
        s.map(|r| r.unwrap()).collect()
    }

    #[test]
    fn merges_and_symmetrizes() {
        let dir = tmp("merge");
        // Tiny budget: every edge forces a spill.
        let mut s = PairSorter::new(&dir, 24).unwrap();
        s.push_edge(2, 0, 5).unwrap();
        s.push_edge(0, 1, 3).unwrap();
        s.push_edge(1, 2, 7).unwrap();
        assert!(s.runs_spilled() >= 2);
        let arcs = collect(s.finish().unwrap());
        assert_eq!(arcs, vec![(0, 1, 3), (0, 2, 5), (1, 0, 3), (1, 2, 7), (2, 0, 5), (2, 1, 7)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicates_keep_min_weight() {
        let dir = tmp("dedup");
        let mut s = PairSorter::new(&dir, 1 << 20).unwrap();
        s.push_edge(0, 1, 9).unwrap();
        s.push_edge(1, 0, 4).unwrap();
        s.push_edge(0, 1, 6).unwrap();
        let arcs = collect(s.finish().unwrap());
        assert_eq!(arcs, vec![(0, 1, 4), (1, 0, 4)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_edges() {
        let dir = tmp("bad");
        let mut s = PairSorter::new(&dir, 1 << 20).unwrap();
        assert!(matches!(s.push_edge(3, 3, 1), Err(StoreError::InvalidArc { .. })));
        assert!(matches!(s.push_edge(0, 1, 0), Err(StoreError::InvalidArc { .. })));
        drop(s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_runs_are_cleaned_up() {
        let dir = tmp("cleanup");
        let mut s = PairSorter::new(&dir, 24).unwrap();
        for i in 0..50u32 {
            s.push_edge(i, i + 1, 1).unwrap();
        }
        let merged = s.finish().unwrap();
        let count = collect(merged).len();
        assert_eq!(count, 100);
        let leftovers = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(leftovers, 0, "run files must be deleted after the merge");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn large_shuffled_input_sorts_correctly() {
        let dir = tmp("shuffled");
        // Push edges of a 500-vertex ring in a scrambled order with a small
        // budget, then verify global sortedness.
        let n = 500u32;
        let mut edges: Vec<(u32, u32, u32)> = (0..n).map(|v| (v, (v + 1) % n, v % 7 + 1)).collect();
        edges.reverse();
        edges.swap(0, 250);
        let arcs = collect(sort_edges(&dir, 512, edges).unwrap());
        assert_eq!(arcs.len(), 2 * n as usize);
        assert!(arcs.windows(2).all(|p| (p[0].0, p[0].1) < (p[1].0, p[1].1)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
