//! Byte storage for on-disk graphs: a read-only memory map on unix, a heap
//! buffer everywhere else (and as an explicit fallback).
//!
//! The mapping is done with a hand-declared `mmap(2)` binding — the build
//! environment has no `libc`/`memmap` crates, but every unix target links
//! the C runtime, so the raw syscall wrappers are always present.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// How to load an on-disk graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Map the file read-only; pages fault in on demand, so loading is O(1)
    /// in graph size and cold successors cost page faults, not resident RAM.
    #[default]
    Mmap,
    /// Read the whole file into a heap buffer.
    Heap,
}

/// Owned bytes backing a loaded graph.
#[derive(Debug)]
pub(crate) enum StoreBytes {
    Heap(Vec<u8>),
    #[cfg(unix)]
    Mmap(MmapFile),
}

impl StoreBytes {
    /// Loads `path` according to `mode`. `Mmap` silently degrades to `Heap`
    /// on non-unix targets and for empty files (zero-length maps are
    /// invalid).
    pub(crate) fn load(path: &Path, mode: LoadMode) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        #[cfg(unix)]
        if mode == LoadMode::Mmap && len > 0 {
            return Ok(StoreBytes::Mmap(MmapFile::map(&file, len)?));
        }
        let _ = mode;
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(StoreBytes::Heap(buf))
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[u8] {
        match self {
            StoreBytes::Heap(v) => v,
            #[cfg(unix)]
            StoreBytes::Mmap(m) => m.as_slice(),
        }
    }

    /// Resident heap bytes (a map's pages are owned by the page cache and
    /// count as zero here — that is the point of mapping).
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            StoreBytes::Heap(v) => v.capacity(),
            #[cfg(unix)]
            StoreBytes::Mmap(_) => 0,
        }
    }
}

#[cfg(unix)]
pub(crate) use unix::MmapFile;

#[cfg(unix)]
mod unix {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// A read-only private mapping of a whole file.
    #[derive(Debug)]
    pub(crate) struct MmapFile {
        ptr: *const u8,
        len: usize,
    }

    // The mapping is immutable and never aliased mutably.
    unsafe impl Send for MmapFile {}
    unsafe impl Sync for MmapFile {}

    impl MmapFile {
        pub(crate) fn map(file: &File, len: usize) -> io::Result<Self> {
            debug_assert!(len > 0, "zero-length maps are invalid");
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr: ptr as *const u8, len })
        }

        #[inline]
        pub(crate) fn as_slice(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for MmapFile {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr as *mut core::ffi::c_void, self.len);
            }
        }
    }
}

/// CRC-32 (IEEE 802.3 polynomial), used to checksum every file section.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn heap_and_mmap_agree() {
        let path = std::env::temp_dir().join(format!("aaa-store-mmap-{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..10_000u32).flat_map(|x| x.to_le_bytes()).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let heap = StoreBytes::load(&path, LoadMode::Heap).unwrap();
        let mapped = StoreBytes::load(&path, LoadMode::Mmap).unwrap();
        assert_eq!(heap.as_slice(), payload.as_slice());
        assert_eq!(mapped.as_slice(), payload.as_slice());
        assert!(heap.heap_bytes() >= payload.len());
        #[cfg(unix)]
        assert_eq!(mapped.heap_bytes(), 0);
        drop(mapped);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_loads_as_heap() {
        let path = std::env::temp_dir().join(format!("aaa-store-empty-{}.bin", std::process::id()));
        std::fs::File::create(&path).unwrap();
        let b = StoreBytes::load(&path, LoadMode::Mmap).unwrap();
        assert!(b.as_slice().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
