//! Typed errors for the engine.

use aaa_checkpoint::CheckpointError;
use aaa_graph::GraphError;
use aaa_partition::PartitionError;
use aaa_runtime::ClusterError;
use std::fmt;

/// Errors produced by engine construction or dynamic updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The underlying graph operation failed (bad edge, out-of-range id…).
    Graph(GraphError),
    /// Partitioning failed.
    Partition(PartitionError),
    /// Configuration is invalid (e.g. zero processors).
    Config(String),
    /// A dynamic change referenced data that does not exist.
    InvalidChange(String),
    /// A rank failed at a superstep barrier (fault injection / recovery).
    Cluster(ClusterError),
    /// A snapshot could not be written or read back.
    Checkpoint(CheckpointError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Partition(e) => write!(f, "partition error: {e}"),
            CoreError::Config(m) => write!(f, "configuration error: {m}"),
            CoreError::InvalidChange(m) => write!(f, "invalid dynamic change: {m}"),
            CoreError::Cluster(e) => write!(f, "cluster error: {e}"),
            CoreError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<PartitionError> for CoreError {
    fn from(e: PartitionError) -> Self {
        CoreError::Partition(e)
    }
}

impl From<ClusterError> for CoreError {
    fn from(e: ClusterError) -> Self {
        CoreError::Cluster(e)
    }
}

impl From<CheckpointError> for CoreError {
    fn from(e: CheckpointError) -> Self {
        CoreError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = GraphError::SelfLoop { vertex: 3 }.into();
        assert!(e.to_string().contains("self-loop"));
        let e: CoreError = PartitionError::ZeroParts.into();
        assert!(e.to_string().contains("at least one part"));
        let e = CoreError::Config("procs = 0".into());
        assert!(e.to_string().contains("procs = 0"));
        let e: CoreError = ClusterError::RankFailed { rank: 3, superstep: 7 }.into();
        assert!(e.to_string().contains("rank 3"));
        let e: CoreError = ClusterError::MessageCorrupted { src: 1, dst: 2, superstep: 5 }.into();
        assert!(e.to_string().contains("corrupted"));
        let e: CoreError = ClusterError::RankStalled { rank: 0, superstep: 9 }.into();
        assert!(e.to_string().contains("stalled"));
        let e: CoreError = CheckpointError::Truncated { section: "META" }.into();
        assert!(e.to_string().contains("META"));
    }
}
