//! Typed errors for the engine.

use aaa_graph::GraphError;
use aaa_partition::PartitionError;
use std::fmt;

/// Errors produced by engine construction or dynamic updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The underlying graph operation failed (bad edge, out-of-range id…).
    Graph(GraphError),
    /// Partitioning failed.
    Partition(PartitionError),
    /// Configuration is invalid (e.g. zero processors).
    Config(String),
    /// A dynamic change referenced data that does not exist.
    InvalidChange(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Partition(e) => write!(f, "partition error: {e}"),
            CoreError::Config(m) => write!(f, "configuration error: {m}"),
            CoreError::InvalidChange(m) => write!(f, "invalid dynamic change: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<PartitionError> for CoreError {
    fn from(e: PartitionError) -> Self {
        CoreError::Partition(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = GraphError::SelfLoop { vertex: 3 }.into();
        assert!(e.to_string().contains("self-loop"));
        let e: CoreError = PartitionError::ZeroParts.into();
        assert!(e.to_string().contains("at least one part"));
        let e = CoreError::Config("procs = 0".into());
        assert!(e.to_string().contains("procs = 0"));
    }
}
