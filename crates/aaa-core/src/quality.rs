//! Anytime-quality instrumentation.
//!
//! The anytime property (§III) promises solutions whose quality improves
//! monotonically (non-decreasing) with computation. [`QualityTracker`]
//! measures that: it compares the engine's partial closeness values against
//! the exact values for the current graph and records the error per RC step.

use aaa_graph::closeness::{closeness_exact, mean_relative_error, top_k};
use aaa_graph::{AdjGraph, Csr};

/// One quality sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualitySample {
    /// RC steps completed when the sample was taken.
    pub rc_step: usize,
    /// Mean relative closeness error vs. exact.
    pub error: f64,
    /// Fraction of the true top-k most central vertices already identified.
    pub top_k_recall: f64,
}

/// Tracks solution quality across recombination steps.
#[derive(Debug, Clone)]
pub struct QualityTracker {
    exact: Vec<f64>,
    exact_top: Vec<u32>,
    k: usize,
    samples: Vec<QualitySample>,
}

impl QualityTracker {
    /// Computes the exact reference for `graph` (Θ(n·(m+n log n)) — meant
    /// for evaluation harnesses, not production paths). `k` sets the
    /// top-k recall metric (clamped to `n`).
    pub fn new(graph: &AdjGraph, k: usize) -> Self {
        let exact = closeness_exact(&Csr::from_adj(graph));
        let k = k.min(exact.len()).max(1.min(exact.len()));
        let exact_top = top_k(&exact, k);
        Self { exact, exact_top, k, samples: Vec::new() }
    }

    /// Records a sample from the engine's current estimate.
    pub fn record(&mut self, rc_step: usize, estimate: &[f64]) -> QualitySample {
        assert_eq!(estimate.len(), self.exact.len(), "graph changed under the tracker");
        let error = mean_relative_error(estimate, &self.exact);
        let est_top = top_k(estimate, self.k);
        let hits = est_top.iter().filter(|v| self.exact_top.contains(v)).count();
        let recall = if self.k == 0 { 1.0 } else { hits as f64 / self.k as f64 };
        let sample = QualitySample { rc_step, error, top_k_recall: recall };
        self.samples.push(sample);
        sample
    }

    /// All samples recorded so far.
    pub fn samples(&self) -> &[QualitySample] {
        &self.samples
    }

    /// True if the recorded error never increased — the anytime guarantee
    /// for static graphs (allowing for floating-point jitter).
    pub fn error_is_monotone_nonincreasing(&self) -> bool {
        self.samples.windows(2).all(|w| w[1].error <= w[0].error + 1e-9)
    }

    /// The exact closeness values (reference).
    pub fn exact(&self) -> &[f64] {
        &self.exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_graph::generators::{barabasi_albert, WeightModel};

    #[test]
    fn tracker_records_and_checks_monotonicity() {
        let g = barabasi_albert(30, 2, WeightModel::Unit, 2).unwrap();
        let mut t = QualityTracker::new(&g, 5);
        let exact = t.exact().to_vec();
        // Degenerate estimate, then the exact values: error must drop.
        let zeros = vec![0.0; 30];
        let s1 = t.record(0, &zeros);
        let s2 = t.record(1, &exact);
        assert!(s1.error > s2.error);
        assert!(s2.error < 1e-12);
        assert!((s2.top_k_recall - 1.0).abs() < 1e-12);
        assert!(t.error_is_monotone_nonincreasing());
        assert_eq!(t.samples().len(), 2);
    }

    #[test]
    fn non_monotone_sequences_are_detected() {
        let g = barabasi_albert(20, 2, WeightModel::Unit, 4).unwrap();
        let mut t = QualityTracker::new(&g, 3);
        let exact = t.exact().to_vec();
        t.record(0, &exact);
        t.record(1, &[0.0; 20]);
        assert!(!t.error_is_monotone_nonincreasing());
    }

    #[test]
    #[should_panic(expected = "graph changed")]
    fn rejects_length_mismatch() {
        let g = barabasi_albert(10, 2, WeightModel::Unit, 1).unwrap();
        let mut t = QualityTracker::new(&g, 3);
        t.record(0, &[0.0; 5]);
    }
}
