//! Anytime-quality instrumentation.
//!
//! The anytime property (§III) promises solutions whose quality improves
//! monotonically (non-decreasing) with computation. [`QualityTracker`]
//! measures that: it compares the engine's partial closeness values against
//! the exact values for the current graph and records the error per RC step.

use aaa_graph::apsp::DistMatrix;
use aaa_graph::closeness::{closeness_from_row, mean_relative_error, top_k};
use aaa_graph::{Dist, INF};
use aaa_runtime::{ClusterError, FaultCounters};
use aaa_store::{algo, GraphStore};
use std::fmt;

/// One quality sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualitySample {
    /// RC steps completed when the sample was taken.
    pub rc_step: usize,
    /// Mean relative closeness error vs. exact.
    pub error: f64,
    /// Fraction of the true top-k most central vertices already identified.
    pub top_k_recall: f64,
}

/// Tracks solution quality across recombination steps.
#[derive(Debug, Clone)]
pub struct QualityTracker {
    exact: Vec<f64>,
    exact_top: Vec<u32>,
    k: usize,
    samples: Vec<QualitySample>,
}

impl QualityTracker {
    /// Computes the exact reference for `graph` (Θ(n·(m+n log n)) — meant
    /// for evaluation harnesses, not production paths). `k` sets the
    /// top-k recall metric (clamped to `n`). Works on any storage backend;
    /// the reference values are bit-identical across backends.
    pub fn new<G: GraphStore + Sync>(graph: &G, k: usize) -> Self {
        let exact = algo::closeness_exact(graph);
        let k = k.min(exact.len()).max(1.min(exact.len()));
        let exact_top = top_k(&exact, k);
        Self { exact, exact_top, k, samples: Vec::new() }
    }

    /// Records a sample from the engine's current estimate.
    pub fn record(&mut self, rc_step: usize, estimate: &[f64]) -> QualitySample {
        assert_eq!(estimate.len(), self.exact.len(), "graph changed under the tracker");
        let error = mean_relative_error(estimate, &self.exact);
        let est_top = top_k(estimate, self.k);
        let hits = est_top.iter().filter(|v| self.exact_top.contains(v)).count();
        let recall = if self.k == 0 { 1.0 } else { hits as f64 / self.k as f64 };
        let sample = QualitySample { rc_step, error, top_k_recall: recall };
        self.samples.push(sample);
        sample
    }

    /// All samples recorded so far.
    pub fn samples(&self) -> &[QualitySample] {
        &self.samples
    }

    /// True if the recorded error never increased — the anytime guarantee
    /// for static graphs (allowing for floating-point jitter).
    pub fn error_is_monotone_nonincreasing(&self) -> bool {
        self.samples.windows(2).all(|w| w[1].error <= w[0].error + 1e-9)
    }

    /// The exact closeness values (reference).
    pub fn exact(&self) -> &[f64] {
        &self.exact
    }
}

// ----------------------------------------------------------------
// Degraded-mode answers
// ----------------------------------------------------------------

/// Why the supervised convergence loop gave up and degraded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradedReason {
    /// Retry and checkpoint-fallback budgets were both exhausted; `last`
    /// is the incident that broke the camel's back.
    RetriesExhausted {
        /// The final fault incident observed before giving up.
        last: ClusterError,
    },
    /// The `max_rc_steps` safety bound was hit before quiescence.
    StepBudgetExhausted,
}

impl fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradedReason::RetriesExhausted { last } => {
                write!(f, "retry and fallback budgets exhausted (last incident: {last})")
            }
            DegradedReason::StepBudgetExhausted => {
                write!(f, "RC step budget exhausted before quiescence")
            }
        }
    }
}

/// The degraded-mode answer: the engine's current closeness estimate plus
/// a per-vertex **certified error bound** — the anytime contract under
/// unrecoverable faults ("an answer now, with a quality label", §III).
///
/// Soundness: `|exact(v) − estimate(v)| ≤ bound(v)` for every vertex, by
/// construction of [`degraded_closeness_bounds`]; [`DegradedReport::certifies`]
/// checks exactly that against a reference.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedReport {
    /// Why the supervised loop degraded instead of converging.
    pub reason: DegradedReason,
    /// RC steps the engine had completed when the report was taken.
    pub rc_steps: usize,
    /// Fault counters accumulated over the whole run.
    pub faults: FaultCounters,
    /// Closeness estimate per vertex (the anytime answer as-is).
    pub estimate: Vec<f64>,
    /// Certified per-vertex bound on `|exact − estimate|`.
    pub bound: Vec<f64>,
}

impl DegradedReport {
    /// Largest per-vertex bound (0 for an empty graph).
    pub fn max_bound(&self) -> f64 {
        self.bound.iter().copied().fold(0.0, f64::max)
    }

    /// Mean per-vertex bound (0 for an empty graph).
    pub fn mean_bound(&self) -> f64 {
        if self.bound.is_empty() {
            0.0
        } else {
            self.bound.iter().sum::<f64>() / self.bound.len() as f64
        }
    }

    /// True iff the report's bounds cover the given exact closeness values:
    /// `|exact(v) − estimate(v)| ≤ bound(v)` everywhere (with float slack).
    pub fn certifies(&self, exact: &[f64]) -> bool {
        exact.len() == self.estimate.len()
            && exact
                .iter()
                .zip(&self.estimate)
                .zip(&self.bound)
                .all(|((&ex, &est), &b)| (ex - est).abs() <= b + 1e-12)
    }
}

/// Per-vertex certified bounds on `|exact − estimate|` closeness, from the
/// engine's current DV matrix and the (driver-known) graph structure.
///
/// The argument uses two invariants that hold throughout the RC phase, even
/// under message loss:
///
/// * every finite DV entry is an **upper bound** on the true distance
///   (entries only ever min-merge downward from genuine path lengths), so
///   when the row covers every truly-reachable vertex, the estimate is a
///   **lower** bound on true closeness (`c_lo = c_est`);
/// * `w_min · hops(v,u)` is a **lower bound** on every true distance, so
///   `c_hi = 1/Σ_reachable w_min·hops` is an upper bound on true closeness.
///
/// The bound is `max(c_est − c_lo, c_hi − c_est)`, clamped at 0. Rows that
/// miss a reachable vertex (or carry an entry BFS says is unreachable —
/// impossible unless state was corrupted) get the conservative `c_lo = 0`.
pub fn degraded_closeness_bounds<G: GraphStore>(graph: &G, rows: &DistMatrix) -> Vec<f64> {
    let n = graph.num_vertices();
    assert_eq!(rows.n(), n, "distance matrix does not match the graph");
    let w_min = aaa_store::edges(graph).map(|(_, _, w)| w).min().unwrap_or(1).max(1) as u64;
    (0..n as u32)
        .map(|v| {
            let hops = algo::bfs_hops(graph, v);
            let row = rows.row(v);
            let mut lower_sum = 0u64;
            let mut covered = true;
            for u in 0..n {
                if u as u32 == v {
                    continue;
                }
                if hops[u] != u32::MAX {
                    lower_sum += w_min * hops[u] as u64;
                    if row[u] == INF {
                        covered = false;
                    }
                } else if row[u] != INF {
                    covered = false;
                }
            }
            let c_est = closeness_from_row(row);
            let c_hi = if lower_sum > 0 { 1.0 / lower_sum as f64 } else { 0.0 };
            let c_lo = if covered { c_est } else { 0.0 };
            ((c_est - c_lo).max(c_hi - c_est)).max(0.0)
        })
        .collect()
}

// ----------------------------------------------------------------
// Certified per-vertex closeness intervals (publish layer)
// ----------------------------------------------------------------

/// Precomputed structure for certified closeness intervals, amortized over
/// many published epochs of the *same* graph version.
///
/// The publish layer stamps every epoch with per-vertex error bounds; doing
/// `n` BFS traversals per epoch would dwarf the RC step itself, so the hop
/// counts (and the weight extremes) are computed once here and the engine
/// rebuilds the cache only when the graph structure changes.
///
/// For a vertex `v` with current DV row `row`, [`interval`] returns a
/// certified interval `[c_lo, c_hi]` containing the true closeness:
///
/// * every finite DV entry is a genuine path length, hence an **upper**
///   bound on the true distance, and so is `w_max · hops(v,u)` (walk the
///   min-hop path, every edge weighs at most `w_max`) — summing, per
///   reachable vertex, the *smaller* of the two gives an upper bound on
///   `Σ d_true`, i.e. `c_lo = 1/Σ min(row[u], w_max·hops) ≤ c_true`;
/// * `w_min · hops(v,u)` is a **lower** bound on every true distance, so
///   `c_hi = 1/Σ w_min·hops ≥ c_true`.
///
/// Because DV rows only ever min-merge downward, `c_lo` is non-decreasing
/// and `c_hi` is fixed per graph version — the interval width `c_hi − c_lo`
/// is **non-increasing across epochs** on a quiescing run (the anytime
/// guarantee, stated per epoch), and at convergence `min(row, w_max·hops) =
/// row = d_true`, so `c_lo` equals the true closeness exactly.
///
/// [`interval`]: CertifiedBoundsCache::interval
#[derive(Debug, Clone)]
pub struct CertifiedBoundsCache {
    n: usize,
    w_min: u64,
    w_max: u64,
    /// Flat n×n matrix of unit-weight hop counts (`u32::MAX` unreachable).
    hops: Vec<u32>,
}

impl CertifiedBoundsCache {
    /// Builds the cache for the current graph (n BFS traversals). Works on
    /// any storage backend.
    pub fn new<G: GraphStore>(graph: &G) -> Self {
        let n = graph.num_vertices();
        let mut w_min = u64::MAX;
        let mut w_max = 1u64;
        for (_, _, w) in aaa_store::edges(graph) {
            w_min = w_min.min(w as u64);
            w_max = w_max.max(w as u64);
        }
        if w_min == u64::MAX {
            w_min = 1;
        }
        let mut hops = Vec::with_capacity(n * n);
        for v in 0..n as u32 {
            hops.extend(algo::bfs_hops(graph, v));
        }
        Self { n, w_min, w_max, hops }
    }

    /// Number of vertices the cache was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The certified closeness interval `[c_lo, c_hi]` for vertex `v` given
    /// its current DV row. `(0, 0)` when `v` reaches nothing (its true
    /// closeness is exactly 0 under the reachable-sum convention).
    pub fn interval(&self, v: u32, row: &[Dist]) -> (f64, f64) {
        assert_eq!(row.len(), self.n, "row does not match the cached graph");
        let hops = &self.hops[v as usize * self.n..][..self.n];
        let mut upper_sum = 0u64;
        let mut lower_sum = 0u64;
        for u in 0..self.n {
            if u as u32 == v || hops[u] == u32::MAX {
                continue;
            }
            let h = hops[u] as u64;
            let cap = self.w_max * h;
            let d_upper = if row[u] == INF { cap } else { (row[u] as u64).min(cap) };
            upper_sum += d_upper;
            lower_sum += self.w_min * h;
        }
        if upper_sum == 0 {
            return (0.0, 0.0);
        }
        (1.0 / upper_sum as f64, 1.0 / lower_sum as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_graph::closeness::closeness_exact;
    use aaa_graph::generators::{barabasi_albert, WeightModel};
    use aaa_graph::{AdjGraph, Csr};

    #[test]
    fn tracker_records_and_checks_monotonicity() {
        let g = barabasi_albert(30, 2, WeightModel::Unit, 2).unwrap();
        let mut t = QualityTracker::new(&g, 5);
        let exact = t.exact().to_vec();
        // Degenerate estimate, then the exact values: error must drop.
        let zeros = vec![0.0; 30];
        let s1 = t.record(0, &zeros);
        let s2 = t.record(1, &exact);
        assert!(s1.error > s2.error);
        assert!(s2.error < 1e-12);
        assert!((s2.top_k_recall - 1.0).abs() < 1e-12);
        assert!(t.error_is_monotone_nonincreasing());
        assert_eq!(t.samples().len(), 2);
    }

    #[test]
    fn non_monotone_sequences_are_detected() {
        let g = barabasi_albert(20, 2, WeightModel::Unit, 4).unwrap();
        let mut t = QualityTracker::new(&g, 3);
        let exact = t.exact().to_vec();
        t.record(0, &exact);
        t.record(1, &[0.0; 20]);
        assert!(!t.error_is_monotone_nonincreasing());
    }

    #[test]
    #[should_panic(expected = "graph changed")]
    fn rejects_length_mismatch() {
        let g = barabasi_albert(10, 2, WeightModel::Unit, 1).unwrap();
        let mut t = QualityTracker::new(&g, 3);
        t.record(0, &[0.0; 5]);
    }

    /// Rows holding only the IA-grade knowledge (self + direct neighbours)
    /// must still produce bounds that cover the true closeness.
    #[test]
    fn degraded_bounds_cover_exact_for_partial_rows() {
        for seed in [1u64, 7, 42] {
            let g =
                barabasi_albert(40, 2, WeightModel::UniformRange { lo: 1, hi: 5 }, seed).unwrap();
            let n = g.num_vertices();
            let exact = closeness_exact(&Csr::from_adj(&g));
            let mut rows = DistMatrix::new(n);
            for v in 0..n as u32 {
                for &(t, w) in g.neighbors(v) {
                    rows.set(v, t, w);
                }
            }
            let bound = degraded_closeness_bounds(&g, &rows);
            let estimate: Vec<f64> =
                (0..n as u32).map(|v| closeness_from_row(rows.row(v))).collect();
            let report = DegradedReport {
                reason: DegradedReason::StepBudgetExhausted,
                rc_steps: 0,
                faults: FaultCounters::default(),
                estimate: estimate.clone(),
                bound: bound.clone(),
            };
            assert!(report.certifies(&exact), "seed {seed}: bounds failed to cover exact");
            assert!(report.max_bound() > 0.0, "partial rows must admit real uncertainty");
            assert!(report.mean_bound() <= report.max_bound());
        }
    }

    /// Fully converged rows are covered with the tight `c_lo = c_est` case:
    /// the bound collapses to `c_hi − c_est` and still certifies.
    #[test]
    fn degraded_bounds_cover_exact_for_converged_rows() {
        let g = barabasi_albert(30, 2, WeightModel::Unit, 9).unwrap();
        let exact = closeness_exact(&Csr::from_adj(&g));
        let rows = aaa_graph::apsp::apsp_dijkstra(&Csr::from_adj(&g));
        let bound = degraded_closeness_bounds(&g, &rows);
        let estimate: Vec<f64> =
            (0..g.num_vertices() as u32).map(|v| closeness_from_row(rows.row(v))).collect();
        for (v, (est, ex)) in estimate.iter().zip(&exact).enumerate() {
            assert!((est - ex).abs() < 1e-12, "vertex {v}: converged rows must equal exact");
        }
        let report = DegradedReport {
            reason: DegradedReason::RetriesExhausted {
                last: ClusterError::RankStalled { rank: 1, superstep: 4 },
            },
            rc_steps: 10,
            faults: FaultCounters { stalls: 3, ..FaultCounters::default() },
            estimate,
            bound,
        };
        assert!(report.certifies(&exact));
        assert!(report.reason.to_string().contains("stalled"));
        assert!(DegradedReason::StepBudgetExhausted.to_string().contains("budget"));
    }

    /// The certified interval contains the exact closeness at every stage
    /// of row refinement, and tightens monotonically as rows improve.
    #[test]
    fn certified_intervals_cover_exact_and_tighten() {
        for seed in [3u64, 11, 42] {
            let g =
                barabasi_albert(35, 2, WeightModel::UniformRange { lo: 1, hi: 4 }, seed).unwrap();
            let n = g.num_vertices();
            let exact = closeness_exact(&Csr::from_adj(&g));
            let cache = CertifiedBoundsCache::new(&g);
            let truth = aaa_graph::apsp::apsp_dijkstra(&Csr::from_adj(&g));

            // Stage 1: IA-grade rows (self + direct neighbours only).
            let mut rows = DistMatrix::new(n);
            for v in 0..n as u32 {
                for &(t, w) in g.neighbors(v) {
                    rows.set(v, t, w);
                }
            }
            for v in 0..n as u32 {
                let (lo, hi) = cache.interval(v, rows.row(v));
                let ex = exact[v as usize];
                assert!(lo <= ex + 1e-12 && ex <= hi + 1e-12, "seed {seed} v{v}: {lo}..{hi}");
                // Stage 2: converged rows — interval must only tighten, and
                // the lower end must hit the exact value.
                let (lo2, hi2) = cache.interval(v, truth.row(v));
                assert!(lo2 + 1e-12 >= lo && hi2 <= hi + 1e-12, "interval widened");
                assert!((lo2 - ex).abs() < 1e-12, "converged c_lo must equal exact");
                assert!(ex <= hi2 + 1e-12);
            }
        }
    }

    #[test]
    fn certified_interval_is_zero_for_isolated_vertices() {
        let mut g = AdjGraph::with_vertices(3);
        g.add_edge(0, 1, 2).unwrap();
        let cache = CertifiedBoundsCache::new(&g);
        let rows = DistMatrix::new(3);
        assert_eq!(cache.interval(2, rows.row(2)), (0.0, 0.0));
        assert_eq!(cache.n(), 3);
    }

    #[test]
    fn isolated_vertices_get_zero_bound() {
        // 0–1 connected by an edge; 2 isolated.
        let mut g = AdjGraph::with_vertices(3);
        g.add_edge(0, 1, 2).unwrap();
        let mut rows = DistMatrix::new(3);
        rows.set(0, 1, 2);
        rows.set(1, 0, 2);
        let bound = degraded_closeness_bounds(&g, &rows);
        assert_eq!(bound[2], 0.0, "an isolated vertex's closeness 0 is exact");
        // 0 and 1 have fully-covered rows: bound is c_hi − c_est = 0 here
        // because the only reachable vertex is the direct neighbour at the
        // minimum weight.
        assert!(bound[0].abs() < 1e-12 && bound[1].abs() < 1e-12);
        let exact = closeness_exact(&Csr::from_adj(&g));
        let estimate: Vec<f64> = (0..3).map(|v| closeness_from_row(rows.row(v))).collect();
        let report = DegradedReport {
            reason: DegradedReason::StepBudgetExhausted,
            rc_steps: 1,
            faults: FaultCounters::default(),
            estimate,
            bound,
        };
        assert!(report.certifies(&exact));
    }
}
