//! Dynamic change descriptions and workload generators.
//!
//! A [`VertexBatch`] is the unit of the paper's vertex-addition experiments:
//! a set of new vertices, each with its incident edges. Targets may be
//! existing vertices *or* other vertices of the same batch (referenced by
//! their future global id), which is how the community structure of the
//! paper's added vertices is expressed.

use crate::error::CoreError;
use aaa_graph::community::{louvain, LouvainConfig};
use aaa_graph::generators::{planted_partition, PlantedPartition, WeightModel};
use aaa_graph::{AdjGraph, VertexId, Weight};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One vertex to be added, with its incident edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewVertex {
    /// `(target, weight)` pairs. A target `>= base` (the vertex count at
    /// application time) refers to another vertex of the same batch.
    pub edges: Vec<(VertexId, Weight)>,
}

/// A batch of vertex additions applied at one point of the analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VertexBatch {
    pub vertices: Vec<NewVertex>,
}

impl VertexBatch {
    /// Number of new vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True if the batch adds nothing.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Total number of new edges.
    pub fn num_edges(&self) -> usize {
        self.vertices.iter().map(|v| v.edges.len()).sum()
    }

    /// Checks the batch against a graph of `base` existing vertices:
    /// all targets in range, no self-loops, positive weights, no duplicate
    /// edges (within the batch, in either orientation).
    pub fn validate(&self, base: usize) -> Result<(), CoreError> {
        let limit = (base + self.len()) as u64;
        let mut seen = std::collections::HashSet::new();
        for (i, nv) in self.vertices.iter().enumerate() {
            let me = (base + i) as VertexId;
            for &(t, w) in &nv.edges {
                if (t as u64) >= limit {
                    return Err(CoreError::InvalidChange(format!(
                        "edge target {t} out of range (limit {limit})"
                    )));
                }
                if t == me {
                    return Err(CoreError::InvalidChange(format!("self-loop on new vertex {me}")));
                }
                if w == 0 {
                    return Err(CoreError::InvalidChange(format!("zero weight edge ({me}, {t})")));
                }
                let key = (me.min(t), me.max(t));
                if !seen.insert(key) {
                    return Err(CoreError::InvalidChange(format!(
                        "duplicate edge ({}, {}) in batch",
                        key.0, key.1
                    )));
                }
            }
        }
        Ok(())
    }

    /// Resolves edges to global `(a, b, w)` triples for a graph of `base`
    /// existing vertices: batch vertex `i` becomes `base + i`.
    pub fn global_edges(&self, base: VertexId) -> Vec<(VertexId, VertexId, Weight)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for (i, nv) in self.vertices.iter().enumerate() {
            let me = base + i as VertexId;
            for &(t, w) in &nv.edges {
                out.push((me, t, w));
            }
        }
        out
    }

    /// Edges internal to the batch (both endpoints new), in *batch-local*
    /// indices — the graph CutEdge-PS partitions.
    pub fn internal_edges(&self, base: VertexId) -> Vec<(u32, u32, Weight)> {
        let mut out = Vec::new();
        for (i, nv) in self.vertices.iter().enumerate() {
            for &(t, w) in &nv.edges {
                if t >= base {
                    out.push((i as u32, t - base, w));
                }
            }
        }
        out
    }
}

/// A dynamic graph change. Vertex additions are the paper's subject; the
/// edge variants implement the companion strategies (additions [9],
/// deletions [10], weight changes [7]) the framework also supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicChange {
    AddVertices(VertexBatch),
    /// Logical vertex deletion (the paper's stated future work): the ids
    /// stay valid but lose all incident edges.
    RemoveVertices(Vec<VertexId>),
    AddEdge {
        u: VertexId,
        v: VertexId,
        w: Weight,
    },
    RemoveEdge {
        u: VertexId,
        v: VertexId,
    },
    SetWeight {
        u: VertexId,
        v: VertexId,
        w: Weight,
    },
}

// ---------------------------------------------------------------------------
// Workload generators
// ---------------------------------------------------------------------------

/// New vertices that attach to the existing graph preferentially by degree
/// (scale-free growth: "new actors joining an online community"). Each new
/// vertex gets `edges_per_vertex` distinct targets among existing vertices.
pub fn preferential_batch(
    g: &AdjGraph,
    count: usize,
    edges_per_vertex: usize,
    seed: u64,
) -> VertexBatch {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Endpoint multiset for degree-proportional sampling (plus one entry
    // per vertex so isolated vertices remain reachable).
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * g.num_edges() + g.num_vertices());
    for (u, v, _) in g.edges() {
        endpoints.push(u);
        endpoints.push(v);
    }
    endpoints.extend(g.vertices());
    let mut vertices = Vec::with_capacity(count);
    for _ in 0..count {
        let want = edges_per_vertex.min(g.num_vertices());
        let mut targets: Vec<VertexId> = Vec::with_capacity(want);
        let mut guard = 0;
        while targets.len() < want && guard < 100 * (want + 1) {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        vertices.push(NewVertex { edges: targets.into_iter().map(|t| (t, 1)).collect() });
    }
    VertexBatch { vertices }
}

/// Parameters for [`community_batch`].
#[derive(Debug, Clone)]
pub struct CommunityBatchParams {
    /// Number of new vertices.
    pub count: usize,
    /// Approximate community size within the batch.
    pub community_size: usize,
    /// Intra-community edge probability of the donor graph.
    pub p_in: f64,
    /// Inter-community edge probability of the donor graph.
    pub p_out: f64,
    /// Edges from each new vertex to the *existing* graph.
    pub attach_edges: usize,
    pub seed: u64,
}

impl Default for CommunityBatchParams {
    fn default() -> Self {
        Self { count: 100, community_size: 25, p_in: 0.25, p_out: 0.005, attach_edges: 1, seed: 0 }
    }
}

/// Builds a community-structured batch using the paper's protocol
/// (§V.B.2): generate a larger donor graph with planted communities,
/// recover them with Louvain (our Pajek-Louvain substitute), order the
/// batch by community, and keep the donor's internal edges. Each new
/// vertex additionally attaches to `attach_edges` random existing vertices
/// so the batch joins the graph.
///
/// Returns the batch plus the recovered community label per batch vertex
/// (used by tests and by the Figure 7 harness).
pub fn community_batch(
    existing: &AdjGraph,
    params: &CommunityBatchParams,
) -> (VertexBatch, Vec<u32>) {
    let communities = (params.count / params.community_size.max(1)).max(1);
    let size = params.count.div_ceil(communities);
    let model = PlantedPartition { communities, size, p_in: params.p_in, p_out: params.p_out };
    let (donor, _) = planted_partition(&model, WeightModel::Unit, params.seed)
        .expect("donor model parameters are valid by construction");
    let assignment = louvain(&donor, &LouvainConfig { seed: params.seed, ..Default::default() });

    // Order donor vertices by recovered community, keep the first `count`.
    let mut order: Vec<VertexId> = (0..donor.num_vertices() as VertexId).collect();
    order.sort_by_key(|&v| (assignment.label[v as usize], v));
    order.truncate(params.count);
    let mut batch_index = vec![u32::MAX; donor.num_vertices()];
    for (i, &v) in order.iter().enumerate() {
        batch_index[v as usize] = i as u32;
    }

    let mut rng = ChaCha8Rng::seed_from_u64(params.seed.wrapping_add(0x9E3779B97F4A7C15));
    let n_existing = existing.num_vertices();
    let base = n_existing as VertexId;
    let mut vertices: Vec<NewVertex> =
        (0..params.count).map(|_| NewVertex { edges: vec![] }).collect();
    // Internal edges: donor edges between two kept vertices, attached to the
    // lower-indexed endpoint so each appears once.
    for (u, v, w) in donor.edges() {
        let (bu, bv) = (batch_index[u as usize], batch_index[v as usize]);
        if bu != u32::MAX && bv != u32::MAX {
            let (lo, hi) = (bu.min(bv), bu.max(bv));
            vertices[hi as usize].edges.push((base + lo, w));
        }
    }
    // Attachment edges into the existing graph.
    if n_existing > 0 {
        for nv in vertices.iter_mut() {
            let mut targets = Vec::new();
            let mut guard = 0;
            while targets.len() < params.attach_edges && guard < 100 {
                guard += 1;
                let t = rng.gen_range(0..n_existing as VertexId);
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
            nv.edges.extend(targets.into_iter().map(|t| (t, 1)));
        }
    }
    let labels: Vec<u32> = order.iter().map(|&v| assignment.label[v as usize]).collect();
    (VertexBatch { vertices }, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_graph::generators::barabasi_albert;

    fn base_graph() -> AdjGraph {
        barabasi_albert(100, 2, WeightModel::Unit, 1).unwrap()
    }

    #[test]
    fn validate_catches_bad_batches() {
        let ok = VertexBatch {
            vertices: vec![
                NewVertex { edges: vec![(0, 1), (101, 2)] },
                NewVertex { edges: vec![] },
            ],
        };
        ok.validate(100).unwrap();
        let oob = VertexBatch { vertices: vec![NewVertex { edges: vec![(102, 1)] }] };
        assert!(oob.validate(100).is_err());
        let selfloop = VertexBatch { vertices: vec![NewVertex { edges: vec![(100, 1)] }] };
        assert!(selfloop.validate(100).is_err());
        let zero = VertexBatch { vertices: vec![NewVertex { edges: vec![(0, 0)] }] };
        assert!(zero.validate(100).is_err());
        let dup = VertexBatch {
            vertices: vec![
                NewVertex { edges: vec![(101, 1)] },
                NewVertex { edges: vec![(100, 1)] },
            ],
        };
        assert!(dup.validate(100).is_err());
    }

    #[test]
    fn global_and_internal_edges() {
        let b = VertexBatch {
            vertices: vec![
                NewVertex { edges: vec![(5, 2)] },
                NewVertex { edges: vec![(10, 3), (9, 1)] },
            ],
        };
        let g = b.global_edges(10);
        assert_eq!(g, vec![(10, 5, 2), (11, 10, 3), (11, 9, 1)]);
        let internal = b.internal_edges(10);
        assert_eq!(internal, vec![(1, 0, 3)]);
        assert_eq!(b.num_edges(), 3);
    }

    #[test]
    fn preferential_batch_targets_exist() {
        let g = base_graph();
        let b = preferential_batch(&g, 20, 3, 7);
        assert_eq!(b.len(), 20);
        b.validate(g.num_vertices()).unwrap();
        for nv in &b.vertices {
            assert_eq!(nv.edges.len(), 3);
            for &(t, _) in &nv.edges {
                assert!((t as usize) < g.num_vertices());
            }
        }
    }

    #[test]
    fn preferential_batch_prefers_hubs() {
        let g = base_graph();
        let hub = (0..g.num_vertices() as VertexId).max_by_key(|&v| g.degree(v)).unwrap();
        let b = preferential_batch(&g, 200, 2, 3);
        let hits =
            b.vertices.iter().flat_map(|nv| nv.edges.iter()).filter(|&&(t, _)| t == hub).count();
        // Expected hits ≈ 400 × deg(hub)/(2E + n) ≫ 400/n ≈ 4 uniform hits.
        assert!(hits >= 8, "hub only hit {hits} times");
    }

    #[test]
    fn community_batch_has_internal_structure() {
        let g = base_graph();
        let params =
            CommunityBatchParams { count: 80, community_size: 20, seed: 3, ..Default::default() };
        let (b, labels) = community_batch(&g, &params);
        assert_eq!(b.len(), 80);
        assert_eq!(labels.len(), 80);
        b.validate(g.num_vertices()).unwrap();
        let internal = b.internal_edges(g.num_vertices() as VertexId);
        assert!(!internal.is_empty());
        // Most internal edges stay within a recovered community.
        let same =
            internal.iter().filter(|&&(a, b, _)| labels[a as usize] == labels[b as usize]).count();
        assert!(
            same * 2 > internal.len(),
            "{same} of {} internal edges intra-community",
            internal.len()
        );
        // Every vertex attaches to the existing graph.
        for nv in &b.vertices {
            assert!(nv.edges.iter().any(|&(t, _)| (t as usize) < g.num_vertices()));
        }
    }

    #[test]
    fn community_batch_deterministic() {
        let g = base_graph();
        let params = CommunityBatchParams { count: 40, seed: 9, ..Default::default() };
        let (a, _) = community_batch(&g, &params);
        let (b, _) = community_batch(&g, &params);
        assert_eq!(a, b);
    }
}
