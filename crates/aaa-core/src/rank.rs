//! Per-processor state and the rank-local pieces of the algorithm:
//! the IA-phase Dijkstra, the recombination-step produce/consume logic,
//! the min-plus relaxation used everywhere, and the dynamic-update hooks.

use crate::dv::DvStore;
use aaa_checkpoint::RankSnapshot;
use aaa_graph::{closeness::closeness_from_row, dist_add, Dist, PartId, VertexId, Weight, INF};
use aaa_runtime::Rank;
use rustc_hash::{FxHashMap, FxHashSet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Re-exported kernel (it lives next to the arena it operates on).
pub use crate::dv::relax_via;

/// How DV rows travel between ranks during RC steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Every send carries the full row (the paper's baseline wire).
    #[default]
    Full,
    /// Sends only the improved `(column, distance)` pairs to destinations
    /// known to hold the previously-sent row, falling back to the full row
    /// when the delta is dense or the destination is unsynced. Entries
    /// only decrease, so a delta chain reconstructs the row exactly.
    Delta,
}

impl std::str::FromStr for WireFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" => Ok(Self::Full),
            "delta" => Ok(Self::Delta),
            other => Err(format!("unknown wire format '{other}' (expected full|delta)")),
        }
    }
}

/// One row on the wire: the full vector, or the sparse improvements since
/// the sender's last send to a synced destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowPayload {
    Full(Vec<Dist>),
    Delta(Vec<(VertexId, Dist)>),
}

impl RowPayload {
    /// Wire size: 8-byte row header plus 4 bytes per dense entry or 8 per
    /// sparse `(col, dist)` pair — what the LogP pricing sees.
    pub fn size_bytes(&self) -> usize {
        match self {
            Self::Full(r) => 8 + 4 * r.len(),
            Self::Delta(p) => 8 + 8 * p.len(),
        }
    }
}

/// A bundle of distance-vector rows travelling between ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMsg {
    pub rows: Vec<(VertexId, RowPayload)>,
}

impl RowMsg {
    /// Wire size summed over the carried rows.
    pub fn size_bytes(&self) -> usize {
        self.rows.iter().map(|(_, p)| p.size_bytes()).sum()
    }
}

/// Broadcast payload announcing a batch of new vertices (Fig. 3 inputs):
/// owners of the `k` vertices starting at global id `base`, plus all new
/// edges in insertion order.
#[derive(Debug, Clone)]
pub struct GrowMsg {
    pub base: VertexId,
    pub owners: Vec<PartId>,
    pub edges: Vec<(VertexId, VertexId, Weight)>,
}

impl GrowMsg {
    pub fn size_bytes(&self) -> usize {
        8 + 4 * self.owners.len() + 12 * self.edges.len()
    }
}

/// Undirected-edge key for the duplicate-edge probe.
#[inline]
fn edge_key(a: VertexId, b: VertexId) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    (u64::from(hi) << 32) | u64::from(lo)
}

/// The state a single logical processor owns.
#[derive(Debug, Clone)]
pub struct RankState {
    rank: Rank,
    /// Owner of every global vertex (replicated partition map).
    owner: Vec<PartId>,
    /// Sorted global ids of the vertices this rank owns.
    local: Vec<VertexId>,
    /// Adjacency of local vertices, in global ids (includes cut edges).
    adj: FxHashMap<VertexId, Vec<(VertexId, Weight)>>,
    /// Edges already recorded in `adj`, as packed undirected keys — an O(1)
    /// duplicate probe replacing the per-insert list scan (quadratic over a
    /// batched `grow`).
    edge_seen: FxHashSet<u64>,
    /// Distance vectors.
    dv: DvStore,
    /// Rows gathered for the in-flight edge relaxation (Fig. 3 broadcasts).
    gathered: FxHashMap<VertexId, Vec<Dist>>,
    /// Local rows changed by dynamic updates, pending intra-rank relaxation.
    pending: FxHashSet<VertexId>,
    /// Wire format for produced RC messages.
    wire: WireFormat,
    /// Worker threads for the relaxation kernel (1 = sequential).
    kernel_threads: usize,
    /// Delta wire tracking: per row, the copy as of its last send, and the
    /// destinations known to hold exactly that copy.
    sent_snapshot: FxHashMap<VertexId, Vec<Dist>>,
    synced: FxHashMap<VertexId, Vec<Rank>>,
    /// Whether the last produce emitted anything / consume changed anything
    /// (drives the global convergence reduction).
    pub last_sent: bool,
    pub last_changed: bool,
}

impl RankState {
    /// Builds the state for `rank` from the global graph and partition.
    /// `adjacency_of` must yield the neighbor list of any vertex.
    pub fn build(
        rank: Rank,
        owner: Vec<PartId>,
        adjacency_of: impl Fn(VertexId) -> Vec<(VertexId, Weight)>,
    ) -> Self {
        let n = owner.len();
        let local: Vec<VertexId> =
            (0..n as VertexId).filter(|&v| owner[v as usize] as usize == rank).collect();
        let mut adj = FxHashMap::default();
        let mut dv = DvStore::new(n);
        for &v in &local {
            adj.insert(v, adjacency_of(v));
            dv.add_local_row(v);
        }
        let mut state = Self {
            rank,
            owner,
            local,
            adj,
            edge_seen: FxHashSet::default(),
            dv,
            gathered: FxHashMap::default(),
            pending: FxHashSet::default(),
            wire: WireFormat::Full,
            kernel_threads: 1,
            sent_snapshot: FxHashMap::default(),
            synced: FxHashMap::default(),
            last_sent: false,
            last_changed: false,
        };
        state.rebuild_edge_seen();
        state
    }

    /// This rank's index.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Global vertex count as this rank sees it.
    pub fn n_global(&self) -> usize {
        self.owner.len()
    }

    /// Sorted local vertex ids.
    pub fn local_vertices(&self) -> &[VertexId] {
        &self.local
    }

    /// The distance-vector store (read access for tests/diagnostics).
    pub fn dv(&self) -> &DvStore {
        &self.dv
    }

    /// True if this rank has rows waiting to be sent.
    pub fn has_dirty(&self) -> bool {
        self.dv.has_dirty()
    }

    /// Selects the wire format for produced RC messages.
    pub fn set_wire(&mut self, wire: WireFormat) {
        self.wire = wire;
    }

    /// Sets the relaxation kernel's worker-thread count (1 = sequential;
    /// the kernel is bit-identical for any value).
    pub fn set_kernel_threads(&mut self, threads: usize) {
        self.kernel_threads = threads.max(1);
    }

    /// Re-derives the duplicate-edge probe from the adjacency lists.
    fn rebuild_edge_seen(&mut self) {
        self.edge_seen.clear();
        for (&v, l) in &self.adj {
            for &(t, _) in l {
                self.edge_seen.insert(edge_key(v, t));
            }
        }
    }

    /// Drops the delta-wire sync tracking: the next produce sends full
    /// rows. Required whenever receiver caches may diverge from what this
    /// rank believes it sent (migration, restore, recovery resend) or when
    /// rows may *increase* (recompute), which breaks delta monotonicity.
    fn reset_wire_tracking(&mut self) {
        self.sent_snapshot.clear();
        self.synced.clear();
    }

    // --------------------------------------------------------------------
    // IA phase
    // --------------------------------------------------------------------

    /// Initial approximation: Dijkstra from every local vertex over the
    /// *local sub-graph* (local vertices plus external boundary vertices,
    /// using only edges incident to local vertices — §IV.B).
    pub fn initial_approximation(&mut self) {
        let (ids, index_of, adj_local) = self.local_subgraph();
        let m = ids.len();
        let mut dist = vec![INF; m];
        let mut heap: BinaryHeap<Reverse<(Dist, u32)>> = BinaryHeap::new();
        let Self { local, dv, .. } = self;
        for &v in local.iter() {
            let s = index_of[&v];
            dist.fill(INF);
            dist[s as usize] = 0;
            heap.clear();
            heap.push(Reverse((0, s)));
            while let Some(Reverse((d, x))) = heap.pop() {
                if d > dist[x as usize] {
                    continue;
                }
                for &(t, w) in &adj_local[x as usize] {
                    let nd = dist_add(d, w as Dist);
                    if nd < dist[t as usize] {
                        dist[t as usize] = nd;
                        heap.push(Reverse((nd, t)));
                    }
                }
            }
            // Write results into the global-indexed row.
            dv.update_local_row(v, |row| {
                let mut changed = false;
                for (i, &d) in dist.iter().enumerate() {
                    let g = ids[i] as usize;
                    if d < row[g] {
                        row[g] = d;
                        changed = true;
                    }
                }
                changed
            });
        }
    }

    /// Resets every local row to the trivial estimate and reruns the IA
    /// Dijkstra. Used by the deletion strategy (partial restart that keeps
    /// the decomposition — a simplified variant of the authors' edge-
    /// deletion algorithm [10]).
    pub fn recompute_from_scratch(&mut self) {
        let n = self.dv.n();
        for i in 0..self.local.len() {
            let v = self.local[i];
            let mut row = vec![INF; n];
            row[v as usize] = 0;
            self.dv.install_local(v, row, true);
        }
        self.dv.clear_cache();
        self.pending.clear();
        // Rows just *increased* — delta chains off the old values would be
        // unsound, so the next sends must be full rows.
        self.reset_wire_tracking();
        self.initial_approximation();
        self.dv.mark_all_dirty();
    }

    /// Local sub-graph in dense local indices:
    /// returns (local-index → global id, global id → local index, adjacency).
    #[allow(clippy::type_complexity)]
    fn local_subgraph(&self) -> (Vec<VertexId>, FxHashMap<VertexId, u32>, Vec<Vec<(u32, Weight)>>) {
        let mut ids: Vec<VertexId> = self.local.clone();
        let mut index_of: FxHashMap<VertexId, u32> = FxHashMap::default();
        for (i, &v) in ids.iter().enumerate() {
            index_of.insert(v, i as u32);
        }
        // External boundary vertices get the tail indices.
        for &v in &self.local {
            for &(t, _) in &self.adj[&v] {
                index_of.entry(t).or_insert_with(|| {
                    ids.push(t);
                    (ids.len() - 1) as u32
                });
            }
        }
        let mut adj_local = vec![Vec::new(); ids.len()];
        for &v in &self.local {
            let vi = index_of[&v];
            for &(t, w) in &self.adj[&v] {
                let ti = index_of[&t];
                adj_local[vi as usize].push((ti, w));
                // Cut edges exist only in the local vertex's list; mirror
                // them so Dijkstra can relax through boundary vertices.
                // Local-local edges already appear in both lists.
                if !self.dv.is_local(t) {
                    adj_local[ti as usize].push((vi, w));
                }
            }
        }
        (ids, index_of, adj_local)
    }

    // --------------------------------------------------------------------
    // RC phase
    // --------------------------------------------------------------------

    /// Destination ranks that need vertex `v`'s row: owners of its remote
    /// neighbors.
    fn boundary_destinations(&self, v: VertexId) -> Vec<Rank> {
        let mut dests: Vec<Rank> = self
            .adj
            .get(&v)
            .map(|l| {
                l.iter()
                    .map(|&(t, _)| self.owner[t as usize] as Rank)
                    .filter(|&q| q != self.rank)
                    .collect()
            })
            .unwrap_or_default();
        dests.sort_unstable();
        dests.dedup();
        dests
    }

    /// Produce phase of one RC step: bundle every dirty *boundary* row for
    /// each neighboring rank, chunked to at most `cap_bytes` per message
    /// (the paper's maximum message size `M`). Dirty non-boundary rows are
    /// simply retired — no one else needs them.
    ///
    /// Under [`WireFormat::Delta`], a destination that already holds this
    /// row's previously-sent copy receives only the improved `(col, dist)`
    /// pairs — exact, because entries only decrease — unless the delta is
    /// dense enough that the full row is smaller on the wire.
    pub fn produce_rc_messages(&mut self, cap_bytes: usize) -> Vec<(Rank, RowMsg)> {
        let dirty = self.dv.take_dirty_sorted();
        let mut buckets: FxHashMap<Rank, Vec<(VertexId, RowPayload)>> = FxHashMap::default();
        for v in dirty {
            let dests = self.boundary_destinations(v);
            if dests.is_empty() {
                continue;
            }
            let row = self.dv.local_row(v).expect("dirty row must be local");
            if self.wire == WireFormat::Delta {
                // One delta serves every synced destination: they all hold
                // the same last-sent copy.
                let pairs = self.sent_snapshot.get(&v).map(|prev| delta_pairs(prev, row));
                let synced = self.synced.get(&v);
                for &q in &dests {
                    let in_sync = synced.is_some_and(|s| s.binary_search(&q).is_ok());
                    let payload = match &pairs {
                        Some(p) if in_sync && 8 * p.len() < 4 * row.len() => {
                            RowPayload::Delta(p.clone())
                        }
                        _ => RowPayload::Full(row.to_vec()),
                    };
                    buckets.entry(q).or_default().push((v, payload));
                }
                self.sent_snapshot.insert(v, row.to_vec());
                self.synced.insert(v, dests);
            } else {
                for &q in &dests {
                    buckets.entry(q).or_default().push((v, RowPayload::Full(row.to_vec())));
                }
            }
        }
        let mut out = Vec::new();
        let mut dests: Vec<Rank> = buckets.keys().copied().collect();
        dests.sort_unstable();
        for q in dests {
            let rows = buckets.remove(&q).expect("bucket exists");
            // Chunk to the message cap; every chunk carries ≥ 1 row.
            let mut chunk: Vec<(VertexId, RowPayload)> = Vec::new();
            let mut bytes = 0usize;
            for (v, payload) in rows {
                let sz = payload.size_bytes();
                if !chunk.is_empty() && bytes + sz > cap_bytes {
                    out.push((q, RowMsg { rows: std::mem::take(&mut chunk) }));
                    bytes = 0;
                }
                bytes += sz;
                chunk.push((v, payload));
            }
            if !chunk.is_empty() {
                out.push((q, RowMsg { rows: chunk }));
            }
        }
        self.last_sent = !out.is_empty();
        out
    }

    /// Consume phase of one RC step: min-merge received boundary rows and
    /// run the recombination strategy (min-plus relaxation with the changed
    /// rows as pivots — the Floyd–Warshall-flavoured local refresh of
    /// §IV.C.1). Sets [`RankState::last_changed`].
    pub fn consume_rc_messages(&mut self, inbox: Vec<(Rank, RowMsg)>) {
        let mut worklist: FxHashSet<VertexId> = FxHashSet::default();
        for (_, msg) in inbox {
            for (v, payload) in msg.rows {
                let local = self.dv.is_local(v);
                let changed = match payload {
                    RowPayload::Full(row) => {
                        if local {
                            self.dv.min_merge_local(v, &row)
                        } else {
                            self.dv.min_merge_cached(v, &row)
                        }
                    }
                    RowPayload::Delta(pairs) => {
                        if local {
                            self.dv.min_merge_local_sparse(v, &pairs)
                        } else {
                            self.dv.min_merge_cached_sparse(v, &pairs)
                        }
                    }
                };
                if changed {
                    worklist.insert(v);
                }
            }
        }
        // Any dynamic-update pivots that have not been propagated yet join
        // this step's worklist.
        worklist.extend(self.pending.drain());
        self.last_changed = self.relax_worklist(worklist);
    }

    /// Min-plus relaxation until the rank-local fixed point. The kernel
    /// itself lives with the arena ([`DvStore::relax_to_fixed_point`]);
    /// this wrapper resolves the pivot set deterministically (sorted) and
    /// applies the configured thread count. Returns whether any local row
    /// changed.
    pub fn relax_worklist(&mut self, initial: FxHashSet<VertexId>) -> bool {
        let mut pivots: Vec<VertexId> = initial.into_iter().collect();
        pivots.sort_unstable();
        self.dv.relax_to_fixed_point(&pivots, self.kernel_threads)
    }

    // --------------------------------------------------------------------
    // Dynamic updates (anywhere)
    // --------------------------------------------------------------------

    /// Applies a [`GrowMsg`]: extends the owner map and DV columns, creates
    /// rows/adjacency for newly owned vertices, and records new edges
    /// incident to local vertices (Fig. 3 lines 10–18 and 35–42).
    pub fn grow(&mut self, msg: &GrowMsg) {
        debug_assert_eq!(msg.base as usize, self.owner.len(), "grow out of order");
        self.owner.extend_from_slice(&msg.owners);
        self.dv.grow_columns(self.owner.len());
        for row in self.gathered.values_mut() {
            row.resize(self.owner.len(), INF);
        }
        for (i, &o) in msg.owners.iter().enumerate() {
            if o as usize == self.rank {
                let v = msg.base + i as VertexId;
                self.local.push(v);
                self.adj.insert(v, Vec::new());
                self.dv.add_local_row(v);
                self.pending.insert(v);
            }
        }
        self.local.sort_unstable();
        for &(a, b, w) in &msg.edges {
            self.record_edge(a, b, w);
        }
    }

    /// Records an edge in the local adjacency (both endpoints if owned).
    /// Duplicates are skipped via the O(1) packed-key probe; the first
    /// recording of an edge wins, as before.
    pub fn record_edge(&mut self, a: VertexId, b: VertexId, w: Weight) {
        let a_local = self.owner[a as usize] as usize == self.rank;
        let b_local = self.owner[b as usize] as usize == self.rank;
        if !a_local && !b_local {
            return;
        }
        if !self.edge_seen.insert(edge_key(a, b)) {
            return;
        }
        if a_local {
            self.adj.entry(a).or_default().push((b, w));
        }
        if b_local && b != a {
            self.adj.entry(b).or_default().push((a, w));
        }
    }

    /// Removes an edge from the local adjacency.
    pub fn erase_edge(&mut self, a: VertexId, b: VertexId) {
        if let Some(l) = self.adj.get_mut(&a) {
            l.retain(|&(t, _)| t != b);
        }
        if let Some(l) = self.adj.get_mut(&b) {
            l.retain(|&(t, _)| t != a);
        }
        self.edge_seen.remove(&edge_key(a, b));
    }

    /// Updates an edge weight in the local adjacency.
    pub fn reweight_edge(&mut self, a: VertexId, b: VertexId, w: Weight) {
        if let Some(l) = self.adj.get_mut(&a) {
            for e in l.iter_mut() {
                if e.0 == b {
                    e.1 = w;
                }
            }
        }
        if let Some(l) = self.adj.get_mut(&b) {
            for e in l.iter_mut() {
                if e.0 == a {
                    e.1 = w;
                }
            }
        }
    }

    /// Clones the current row of `v` for broadcasting (Fig. 3 line 22).
    /// Falls back to the trivial row if this rank has never seen `v`
    /// (cannot happen for owners).
    pub fn row_for_broadcast(&self, v: VertexId) -> Vec<Dist> {
        match self.dv.row(v) {
            Some(r) => r.to_vec(),
            None => {
                let mut row = vec![INF; self.dv.n()];
                row[v as usize] = 0;
                row
            }
        }
    }

    /// Stashes a broadcast row for the in-flight edge relaxation.
    pub fn stash_row(&mut self, v: VertexId, row: &[Dist]) {
        let mut r = row.to_vec();
        r.resize(self.dv.n(), INF);
        self.gathered.insert(v, r);
    }

    /// The edge-addition relaxation (Fig. 3 lines 26–34, from the authors'
    /// edge-addition algorithm [9]): for every local row `a` and the new
    /// edge `(x, y, w)`, test
    /// `D[a][t] > D[a][x] + w + D[y][t]` and the symmetric direction, using
    /// the stashed broadcast rows of `x` and `y`.
    pub fn apply_edge_relax(&mut self, x: VertexId, y: VertexId, w: Weight) {
        let Self { gathered, local, dv, pending, .. } = self;
        let rx = gathered.get(&x);
        let ry = gathered.get(&y);
        for &a in local.iter() {
            if !dv.is_local(a) {
                continue;
            }
            let changed = dv.update_local_row(a, |row| {
                let mut changed = false;
                if let Some(ry) = ry {
                    let dx = row[x as usize];
                    if dx != INF {
                        changed |= relax_via(row, dist_add(dx, w as Dist), ry);
                    }
                }
                if let Some(rx) = rx {
                    let dy = row[y as usize];
                    if dy != INF {
                        changed |= relax_via(row, dist_add(dy, w as Dist), rx);
                    }
                }
                changed
            });
            if changed {
                pending.insert(a);
            }
        }
    }

    /// Clears the broadcast stash (end of a dynamic batch).
    pub fn clear_gathered(&mut self) {
        self.gathered.clear();
    }

    /// Runs the intra-rank relaxation over all pivots accumulated by
    /// dynamic updates, so partial results are consistent before the next
    /// RC exchange.
    pub fn relax_pending(&mut self) {
        let pending: FxHashSet<VertexId> = self.pending.drain().collect();
        self.relax_worklist(pending);
    }

    // --------------------------------------------------------------------
    // Repartition-S support
    // --------------------------------------------------------------------

    /// Produce side of the migration exchange: removes rows whose vertex
    /// now belongs elsewhere and addresses them to the new owner.
    /// Migration always ships full rows, whatever the wire format.
    pub fn migrate_out(&mut self, new_owner: &[PartId]) -> Vec<(Rank, RowMsg)> {
        let mut buckets: FxHashMap<Rank, Vec<(VertexId, RowPayload)>> = FxHashMap::default();
        let Self { local, dv, rank, .. } = self;
        for &v in local.iter() {
            let q = new_owner[v as usize] as Rank;
            if q != *rank {
                if let Some(row) = dv.remove_local(v) {
                    buckets.entry(q).or_default().push((v, RowPayload::Full(row)));
                }
            }
        }
        // Receiver caches are about to be rebuilt wholesale.
        self.reset_wire_tracking();
        let mut dests: Vec<Rank> = buckets.keys().copied().collect();
        dests.sort_unstable();
        dests
            .into_iter()
            .map(|q| (q, RowMsg { rows: buckets.remove(&q).expect("bucket") }))
            .collect()
    }

    /// Consume side of the migration exchange: installs the new ownership,
    /// rebuilds local structures from `adjacency_of`, installs received
    /// rows, creates trivial rows for vertices that never had one (new
    /// vertices under Repartition-S keep only their direct edges — the
    /// paper's "DVs of the existing vertices are not immediately updated"),
    /// and marks everything dirty so the next RC steps redistribute state.
    pub fn migrate_in(
        &mut self,
        new_owner: &[PartId],
        inbox: Vec<(Rank, RowMsg)>,
        adjacency_of: impl Fn(VertexId) -> Vec<(VertexId, Weight)>,
    ) {
        self.owner = new_owner.to_vec();
        let n = self.owner.len();
        self.dv.grow_columns(n);
        self.dv.clear_cache();
        self.gathered.clear();
        self.pending.clear();
        self.reset_wire_tracking();
        self.local =
            (0..n as VertexId).filter(|&v| self.owner[v as usize] as usize == self.rank).collect();
        self.adj.clear();
        for &v in &self.local {
            self.adj.insert(v, adjacency_of(v));
        }
        self.rebuild_edge_seen();
        for (_, msg) in inbox {
            for (v, payload) in msg.rows {
                debug_assert_eq!(self.owner[v as usize] as usize, self.rank);
                match payload {
                    RowPayload::Full(row) => self.dv.install_local(v, row, true),
                    RowPayload::Delta(_) => {
                        debug_assert!(false, "migration ships full rows");
                    }
                }
            }
        }
        // Rows this rank kept across the migration stay; fresh vertices get
        // the trivial row. Every local row is then re-seeded with its
        // direct edges — stale rows know nothing about edges added with the
        // batch, and the RC relaxation can only propagate facts that exist
        // in some row.
        let Self { local, adj, dv, .. } = self;
        for &v in local.iter() {
            if !dv.is_local(v) {
                let mut row = vec![INF; n];
                row[v as usize] = 0;
                dv.install_local(v, row, true);
            }
            dv.update_local_row(v, |row| {
                let mut changed = false;
                for &(t, w) in &adj[&v] {
                    if (w as Dist) < row[t as usize] {
                        row[t as usize] = w as Dist;
                        changed = true;
                    }
                }
                changed
            });
        }
        // Force a full local relaxation on the next RC step: the migration
        // changed which rows live together, so every pairing is new here.
        self.pending.extend(self.local.iter().copied());
        self.dv.mark_all_dirty();
    }

    // --------------------------------------------------------------------
    // Budgeted rebalance support
    // --------------------------------------------------------------------

    /// Applies a budgeted reassignment to the replicated owner map without
    /// touching rows. Must run on **every** rank, including bystanders that
    /// neither send nor receive rows: the moves change boundary-destination
    /// sets everywhere, and a delta chain aimed at a receiver that never
    /// held the base copy would be unsound — so wire tracking is dropped
    /// and the next produce ships full rows.
    pub fn apply_reassignment(&mut self, moves: &[(VertexId, PartId)]) {
        for &(v, p) in moves {
            self.owner[v as usize] = p;
        }
        self.reset_wire_tracking();
    }

    /// Produce side of a budgeted migration: ships full rows of local
    /// vertices whose (already reassigned) owner is elsewhere. Unlike
    /// [`RankState::migrate_out`], the local set and adjacency shrink in
    /// place — no wholesale rebuild, so the cost scales with the move
    /// budget rather than the rank's whole holding.
    pub fn migrate_out_moved(&mut self) -> Vec<(Rank, RowMsg)> {
        let mut buckets: FxHashMap<Rank, Vec<(VertexId, RowPayload)>> = FxHashMap::default();
        let mut departed = false;
        for i in (0..self.local.len()).rev() {
            let v = self.local[i];
            let q = self.owner[v as usize] as Rank;
            if q == self.rank {
                continue;
            }
            if let Some(row) = self.dv.remove_local(v) {
                buckets.entry(q).or_default().push((v, RowPayload::Full(row)));
            }
            self.adj.remove(&v);
            self.pending.remove(&v);
            self.local.remove(i);
            departed = true;
        }
        if departed {
            self.rebuild_edge_seen();
        }
        let mut dests: Vec<Rank> = buckets.keys().copied().collect();
        dests.sort_unstable();
        dests
            .into_iter()
            .map(|q| {
                let mut rows = buckets.remove(&q).expect("bucket");
                rows.sort_unstable_by_key(|&(v, _)| v);
                (q, RowMsg { rows })
            })
            .collect()
    }

    /// Consume side of a budgeted migration: installs gained rows, extends
    /// the local set and adjacency in place, re-seeds each gained row with
    /// its direct edges, and queues the gained vertices as relaxation
    /// pivots. The owner map must already reflect the reassignment (see
    /// [`RankState::apply_reassignment`]). A shipped row carries everything
    /// the old owner knew at the barrier, and later improvements from other
    /// ranks re-route here through the updated owner map, so the relaxation
    /// still converges to the same unique fixed point.
    ///
    /// Self-healing: a move in `moves` targeting this rank whose row never
    /// arrived (an aborted migration round over a real transport) restarts
    /// from the admissible trivial row — the relaxation re-converges it,
    /// exactly like a respawned worker. This makes re-executing the whole
    /// operation idempotent.
    pub fn migrate_in_moved(
        &mut self,
        moves: &[(VertexId, PartId)],
        inbox: Vec<(Rank, RowMsg)>,
        adjacency_of: impl Fn(VertexId) -> Vec<(VertexId, Weight)>,
    ) {
        let n = self.owner.len();
        let mut gained: Vec<VertexId> = Vec::new();
        for (_, msg) in inbox {
            for (v, payload) in msg.rows {
                debug_assert_eq!(self.owner[v as usize] as usize, self.rank);
                match payload {
                    RowPayload::Full(row) => {
                        self.dv.install_local(v, row, true);
                        gained.push(v);
                    }
                    RowPayload::Delta(_) => {
                        debug_assert!(false, "migration ships full rows");
                    }
                }
            }
        }
        for &(v, p) in moves {
            if p as usize == self.rank && !self.dv.is_local(v) {
                let mut row = vec![INF; n];
                row[v as usize] = 0;
                self.dv.install_local(v, row, true);
                gained.push(v);
            }
        }
        if gained.is_empty() {
            return;
        }
        gained.sort_unstable();
        gained.dedup();
        for &v in &gained {
            if let Err(at) = self.local.binary_search(&v) {
                self.local.insert(at, v);
            }
            self.adj.insert(v, adjacency_of(v));
        }
        self.rebuild_edge_seen();
        let Self { adj, dv, .. } = self;
        for &v in &gained {
            dv.update_local_row(v, |row| {
                let mut changed = false;
                for &(t, w) in &adj[&v] {
                    if (w as Dist) < row[t as usize] {
                        row[t as usize] = w as Dist;
                        changed = true;
                    }
                }
                changed
            });
        }
        self.pending.extend(gained);
    }

    // --------------------------------------------------------------------
    // Checkpoint & recovery
    // --------------------------------------------------------------------

    /// Captures this rank's DV state for a snapshot. Only row data, the
    /// dirty mask and pending pivots are captured — ownership and
    /// adjacency are rebuilt deterministically from the graph + partition
    /// sections on restore. Broadcast stashes (`gathered`) are never
    /// captured: snapshots are taken at superstep barriers, where they are
    /// empty.
    pub fn to_snapshot(&self) -> RankSnapshot {
        let mut pending: Vec<VertexId> = self.pending.iter().copied().collect();
        pending.sort_unstable();
        RankSnapshot {
            rank: self.rank as u32,
            local: self.dv.export_local_sorted(),
            cached: self.dv.export_cached_sorted(),
            dirty: self.dv.dirty_sorted(),
            pending,
        }
    }

    /// Installs snapshot rows into a freshly built state — the *exact
    /// restore* path, where the engine was rebuilt from the snapshot's own
    /// graph + partition and the rows must come back bit-identical. Rows
    /// for vertices this rank does not own are skipped; rows shorter than
    /// the current column count are INF-padded by the store. The dirty
    /// mask and pending set are installed exactly as captured.
    ///
    /// For recovery against a possibly *older* snapshot use
    /// [`RankState::absorb_snapshot`] instead: replacement here would wipe
    /// the fresh IA rows' knowledge of edges added after the capture.
    pub fn restore_from_snapshot(&mut self, snap: &RankSnapshot) {
        for (v, row) in &snap.local {
            if self.dv.is_local(*v) {
                self.dv.install_local(*v, row.clone(), false);
            }
        }
        for (v, row) in &snap.cached {
            if !self.dv.is_local(*v) {
                self.dv.install_cached(*v, row.clone());
            }
        }
        self.dv.clear_dirty();
        for &v in &snap.dirty {
            if self.dv.is_local(v) {
                self.dv.mark_dirty(v);
            }
        }
        self.pending.clear();
        self.pending.extend(snap.pending.iter().copied().filter(|&v| self.dv.is_local(v)));
        self.gathered.clear();
        self.reset_wire_tracking();
        self.last_sent = false;
        self.last_changed = false;
    }

    /// Min-merges snapshot rows into the current state — the *rank
    /// recovery* path. The snapshot may predate the current graph (j ≤ k,
    /// possibly with dynamic changes in between), so nothing is replaced:
    /// the freshly recomputed IA rows — which know every edge present
    /// *now* — survive, and the snapshot contributes wherever its
    /// distances are better. Both sides are upper bounds on the true
    /// distances, so the merge is too, and min-merge replay re-converges
    /// to the same unique fixed point.
    pub fn absorb_snapshot(&mut self, snap: &RankSnapshot) {
        for (v, row) in &snap.local {
            if self.dv.is_local(*v) {
                self.dv.min_merge_local(*v, row);
            }
        }
        for (v, row) in &snap.cached {
            if !self.dv.is_local(*v) {
                self.dv.min_merge_cached(*v, row);
            }
        }
    }

    /// Marks every local row dirty and queues a full local relaxation —
    /// the recovery kick: after a rank is rebuilt from an older snapshot,
    /// every rank re-announces its rows so the recovered rank's stale
    /// entries are overwritten by min-merge on the next RC steps. Delta
    /// tracking is dropped so the re-announcements are full rows — the
    /// recovered rank's caches hold nothing to delta against.
    pub fn mark_all_for_resend(&mut self) {
        self.dv.mark_all_dirty();
        self.pending.extend(self.local.iter().copied());
        self.reset_wire_tracking();
    }

    // --------------------------------------------------------------------
    // Queries
    // --------------------------------------------------------------------

    /// Closeness centrality of every local vertex from its current DV.
    pub fn local_closeness(&self) -> Vec<(VertexId, f64)> {
        self.local_scores(closeness_from_row)
    }

    /// Generic sibling of [`RankState::local_closeness`]: scores every
    /// local vertex's row with a caller-chosen row-local metric (S31).
    pub fn local_scores(&self, score: impl Fn(&[Dist]) -> f64) -> Vec<(VertexId, f64)> {
        self.local.iter().map(|&v| (v, score(self.dv.local_row(v).expect("local row")))).collect()
    }

    /// Drains the set of local rows whose values changed since the last
    /// published epoch, sorted by id. Ids that were epoch-dirtied but have
    /// since migrated away are dropped — the receiving rank re-dirtied
    /// them on install, so exactly one rank reports each moved row.
    pub fn take_epoch_changed(&mut self) -> Vec<VertexId> {
        self.dv.take_epoch_dirty_sorted().into_iter().filter(|&v| self.dv.is_local(v)).collect()
    }

    /// Drains the epoch-dirty set and maps each surviving local row to its
    /// current closeness — the per-rank contribution to a `ViewDelta`.
    pub fn take_epoch_closeness(&mut self) -> Vec<(VertexId, f64)> {
        self.take_epoch_scores(closeness_from_row)
    }

    /// Generic sibling of [`RankState::take_epoch_closeness`]: drains the
    /// epoch-dirty set and scores each surviving row with a caller-chosen
    /// row-local metric (S31). Identical drain semantics — call at most
    /// one `take_epoch_*` per rank per publish barrier.
    pub fn take_epoch_scores(&mut self, score: impl Fn(&[Dist]) -> f64) -> Vec<(VertexId, f64)> {
        self.take_epoch_changed()
            .into_iter()
            .map(|v| (v, score(self.dv.local_row(v).expect("local row"))))
            .collect()
    }

    /// Drains the epoch-dirty set and clones each surviving local row —
    /// what row-global metrics (incremental betweenness) consume at the
    /// publish barrier.
    pub fn take_epoch_rows(&mut self) -> Vec<(VertexId, Vec<Dist>)> {
        self.take_epoch_changed()
            .into_iter()
            .map(|v| (v, self.dv.local_row(v).expect("local row").to_vec()))
            .collect()
    }

    /// Clones all local rows (testing / gather).
    pub fn local_rows(&self) -> Vec<(VertexId, Vec<Dist>)> {
        self.local.iter().map(|&v| (v, self.dv.local_row(v).expect("local row").to_vec())).collect()
    }
}

/// The sparse improvements from `prev` to `cur`. Columns `prev` never had
/// (the row grew since the last send) count as `INF` — the receiver's copy
/// grew with `INF` fill too, so the bases agree.
fn delta_pairs(prev: &[Dist], cur: &[Dist]) -> Vec<(VertexId, Dist)> {
    let mut pairs = Vec::new();
    for (t, &d) in cur.iter().enumerate() {
        let before = prev.get(t).copied().unwrap_or(INF);
        if d < before {
            pairs.push((t as VertexId, d));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3 (unit weights) split as {0,1} | {2,3}.
    fn two_rank_path() -> (RankState, RankState) {
        let owner = vec![0, 0, 1, 1];
        let adj = |v: VertexId| -> Vec<(VertexId, Weight)> {
            match v {
                0 => vec![(1, 1)],
                1 => vec![(0, 1), (2, 1)],
                2 => vec![(1, 1), (3, 1)],
                3 => vec![(2, 1)],
                _ => vec![],
            }
        };
        (RankState::build(0, owner.clone(), adj), RankState::build(1, owner, adj))
    }

    #[test]
    fn build_assigns_locals_and_rows() {
        let (r0, r1) = two_rank_path();
        assert_eq!(r0.local_vertices(), &[0, 1]);
        assert_eq!(r1.local_vertices(), &[2, 3]);
        assert_eq!(r0.dv().row(0).unwrap()[0], 0);
        assert_eq!(r0.dv().row(0).unwrap()[3], INF);
    }

    #[test]
    fn ia_covers_local_subgraph_including_boundary() {
        let (mut r0, _) = two_rank_path();
        r0.initial_approximation();
        // Rank 0 sees 0,1 and boundary vertex 2 via the cut edge 1-2.
        let row0 = r0.dv().row(0).unwrap();
        assert_eq!(row0[1], 1);
        assert_eq!(row0[2], 2);
        assert_eq!(row0[3], INF); // 3 invisible to rank 0
    }

    #[test]
    fn rc_exchange_converges_on_path() {
        let (mut r0, mut r1) = two_rank_path();
        r0.initial_approximation();
        r1.initial_approximation();
        // Simulate RC steps by hand until quiet.
        for _ in 0..4 {
            let out0 = r0.produce_rc_messages(usize::MAX);
            let out1 = r1.produce_rc_messages(usize::MAX);
            let to1: Vec<(usize, RowMsg)> =
                out0.into_iter().filter(|&(q, _)| q == 1).map(|(_, m)| (0, m)).collect();
            let to0: Vec<(usize, RowMsg)> =
                out1.into_iter().filter(|&(q, _)| q == 0).map(|(_, m)| (1, m)).collect();
            r0.consume_rc_messages(to0);
            r1.consume_rc_messages(to1);
        }
        assert_eq!(r0.dv().row(0).unwrap(), &[0, 1, 2, 3]);
        assert_eq!(r1.dv().row(3).unwrap(), &[3, 2, 1, 0]);
        // Quiescent now: nothing left to send on either side.
        assert!(r0.produce_rc_messages(usize::MAX).is_empty());
        assert!(r1.produce_rc_messages(usize::MAX).is_empty());
    }

    #[test]
    fn produce_clears_dirty_and_chunks_to_cap() {
        let (mut r0, _) = two_rank_path();
        r0.initial_approximation();
        // Only vertex 1 is boundary (neighbor 2 owned by rank 1).
        let msgs = r0.produce_rc_messages(1); // tiny cap: one row per message
        assert!(msgs.iter().all(|(q, _)| *q == 1));
        let total_rows: usize = msgs.iter().map(|(_, m)| m.rows.len()).sum();
        assert_eq!(total_rows, 1);
        assert!(!r0.has_dirty());
        // Nothing new -> nothing to send.
        assert!(r0.produce_rc_messages(usize::MAX).is_empty());
        assert!(!r0.last_sent);
    }

    /// Same convergence as `rc_exchange_converges_on_path`, but over the
    /// delta wire: after the first full-row exchange, later sends are
    /// sparse deltas, and the fixed point is identical.
    #[test]
    fn delta_wire_converges_and_sends_sparse_after_sync() {
        let exchange = |r0: &mut RankState, r1: &mut RankState| -> Vec<(usize, RowMsg)> {
            let out0 = r0.produce_rc_messages(usize::MAX);
            let out1 = r1.produce_rc_messages(usize::MAX);
            let to0: Vec<(usize, RowMsg)> =
                out1.into_iter().filter(|&(q, _)| q == 0).map(|(_, m)| (1, m)).collect();
            let to1: Vec<(usize, RowMsg)> =
                out0.into_iter().filter(|&(q, _)| q == 1).map(|(_, m)| (0, m)).collect();
            r0.consume_rc_messages(to0);
            let all: Vec<(usize, RowMsg)> = to1.clone();
            r1.consume_rc_messages(to1);
            all
        };
        let (mut r0, mut r1) = two_rank_path();
        r0.set_wire(WireFormat::Delta);
        r1.set_wire(WireFormat::Delta);
        r0.initial_approximation();
        r1.initial_approximation();
        // First exchange: nothing synced yet, everything is a full row.
        let first = exchange(&mut r0, &mut r1);
        assert!(first
            .iter()
            .flat_map(|(_, m)| &m.rows)
            .all(|(_, p)| matches!(p, RowPayload::Full(_))));
        // Second exchange: rank 0's boundary row improved by one column
        // (it learned about vertex 3) — a sparse delta beats the full row.
        let second = exchange(&mut r0, &mut r1);
        assert!(second
            .iter()
            .flat_map(|(_, m)| &m.rows)
            .any(|(_, p)| matches!(p, RowPayload::Delta(_))));
        for _ in 0..2 {
            exchange(&mut r0, &mut r1);
        }
        assert_eq!(r0.dv().row(0).unwrap(), &[0, 1, 2, 3]);
        assert_eq!(r1.dv().row(3).unwrap(), &[3, 2, 1, 0]);
        assert!(r0.produce_rc_messages(usize::MAX).is_empty());
        assert!(r1.produce_rc_messages(usize::MAX).is_empty());
    }

    #[test]
    fn grow_extends_columns_and_adds_local_vertex() {
        let (mut r0, _) = two_rank_path();
        r0.initial_approximation();
        let msg = GrowMsg { base: 4, owners: vec![0], edges: vec![(4, 1, 2)] };
        r0.grow(&msg);
        assert_eq!(r0.n_global(), 5);
        assert_eq!(r0.local_vertices(), &[0, 1, 4]);
        assert_eq!(r0.dv().row(4).unwrap()[4], 0);
        assert_eq!(r0.dv().row(0).unwrap().len(), 5);
        // Edge recorded for both local endpoints.
        assert!(r0.adj[&4].contains(&(1, 2)));
        assert!(r0.adj[&1].contains(&(4, 2)));
    }

    #[test]
    fn record_edge_dedups_against_built_adjacency() {
        let (mut r0, _) = two_rank_path();
        // Edge 0-1 already exists from build(); re-recording must not
        // duplicate it, in either orientation.
        r0.record_edge(0, 1, 1);
        r0.record_edge(1, 0, 1);
        assert_eq!(r0.adj[&0].iter().filter(|&&(t, _)| t == 1).count(), 1);
        assert_eq!(r0.adj[&1].iter().filter(|&&(t, _)| t == 0).count(), 1);
        // Erase forgets the edge, so it can be recorded again.
        r0.erase_edge(0, 1);
        assert!(r0.adj[&0].is_empty());
        r0.record_edge(0, 1, 5);
        assert!(r0.adj[&0].contains(&(1, 5)));
        assert!(r0.adj[&1].contains(&(0, 5)));
    }

    #[test]
    fn edge_relax_uses_gathered_rows() {
        let (mut r0, _) = two_rank_path();
        r0.initial_approximation();
        // Pretend a new edge 0-3 of weight 1; rank 0 gathers row(3).
        r0.stash_row(3, &[INF, INF, 1, 0]);
        r0.stash_row(0, &r0.row_for_broadcast(0));
        r0.apply_edge_relax(0, 3, 1);
        // Row 0 learns d(0,3) = 1 and d(0,2) = 2 (via 3).
        let row0 = r0.dv().row(0).unwrap();
        assert_eq!(row0[3], 1);
        assert_eq!(row0[2], 2);
        // Row 1: d(1,3) ≤ d(1,0) + 1 + 0 = 2.
        assert_eq!(r0.dv().row(1).unwrap()[3], 2);
        r0.clear_gathered();
        r0.relax_pending();
    }

    #[test]
    fn relax_via_saturates_and_detects_change() {
        let mut row = vec![5, INF, 3];
        assert!(relax_via(&mut row, 1, &[3, 2, 9]));
        assert_eq!(row, vec![4, 3, 3]);
        assert!(!relax_via(&mut row, INF, &[0, 0, 0]));
        assert!(!relax_via(&mut row, 10, &[INF, INF, INF]));
    }

    #[test]
    fn migration_roundtrip() {
        let (mut r0, mut r1) = two_rank_path();
        r0.initial_approximation();
        r1.initial_approximation();
        // Move vertex 1 to rank 1.
        let new_owner = vec![0, 1, 1, 1];
        let adj = |v: VertexId| -> Vec<(VertexId, Weight)> {
            match v {
                0 => vec![(1, 1)],
                1 => vec![(0, 1), (2, 1)],
                2 => vec![(1, 1), (3, 1)],
                3 => vec![(2, 1)],
                _ => vec![],
            }
        };
        let out0 = r0.migrate_out(&new_owner);
        assert_eq!(out0.len(), 1);
        assert_eq!(out0[0].0, 1);
        let out1 = r1.migrate_out(&new_owner);
        assert!(out1.is_empty());
        r0.migrate_in(&new_owner, vec![], adj);
        r1.migrate_in(&new_owner, out0.into_iter().map(|(_, m)| (0, m)).collect(), adj);
        assert_eq!(r0.local_vertices(), &[0]);
        assert_eq!(r1.local_vertices(), &[1, 2, 3]);
        // Migrated row kept its partial results (d(1,2) = 1 from IA).
        assert_eq!(r1.dv().row(1).unwrap()[2], 1);
        assert!(r1.has_dirty());
    }

    #[test]
    fn budgeted_move_roundtrip_converges_to_same_fixed_point() {
        let adj = |v: VertexId| -> Vec<(VertexId, Weight)> {
            match v {
                0 => vec![(1, 1)],
                1 => vec![(0, 1), (2, 1)],
                2 => vec![(1, 1), (3, 1)],
                3 => vec![(2, 1)],
                _ => vec![],
            }
        };
        let (mut r0, mut r1) = two_rank_path();
        r0.initial_approximation();
        r1.initial_approximation();
        // Move vertex 1 to rank 1 via the budgeted path: reassign on every
        // rank, then exchange only the moved row.
        let moves = [(1, 1)];
        r0.apply_reassignment(&moves);
        r1.apply_reassignment(&moves);
        let out0 = r0.migrate_out_moved();
        assert_eq!(out0.len(), 1);
        assert_eq!(out0[0].0, 1);
        assert_eq!(out0[0].1.rows.len(), 1, "only the budgeted vertex ships");
        assert!(r1.migrate_out_moved().is_empty());
        r1.migrate_in_moved(&moves, out0.into_iter().map(|(_, m)| (0, m)).collect(), adj);
        r0.migrate_in_moved(&moves, vec![], adj);
        assert_eq!(r0.local_vertices(), &[0]);
        assert_eq!(r1.local_vertices(), &[1, 2, 3]);
        // The shipped row kept the old owner's partial results.
        assert_eq!(r1.dv().row(1).unwrap()[2], 1);
        // RC steps after the move reach the exact distances.
        for _ in 0..4 {
            let out0 = r0.produce_rc_messages(usize::MAX);
            let out1 = r1.produce_rc_messages(usize::MAX);
            let to1: Vec<(usize, RowMsg)> =
                out0.into_iter().filter(|&(q, _)| q == 1).map(|(_, m)| (0, m)).collect();
            let to0: Vec<(usize, RowMsg)> =
                out1.into_iter().filter(|&(q, _)| q == 0).map(|(_, m)| (1, m)).collect();
            r0.consume_rc_messages(to0);
            r1.consume_rc_messages(to1);
        }
        assert_eq!(r0.dv().row(0).unwrap(), &[0, 1, 2, 3]);
        assert_eq!(r1.dv().row(1).unwrap(), &[1, 0, 1, 2]);
        assert_eq!(r1.dv().row(3).unwrap(), &[3, 2, 1, 0]);
    }

    #[test]
    fn closeness_of_local_rows() {
        let (mut r0, _) = two_rank_path();
        r0.initial_approximation();
        let c = r0.local_closeness();
        assert_eq!(c.len(), 2);
        // Vertex 0: knows d=1 (v1), d=2 (v2) -> 1/3.
        let c0 = c.iter().find(|&&(v, _)| v == 0).unwrap().1;
        assert!((c0 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn edge_erase_and_reweight() {
        let (mut r0, _) = two_rank_path();
        r0.reweight_edge(0, 1, 9);
        assert!(r0.adj[&0].contains(&(1, 9)));
        assert!(r0.adj[&1].contains(&(0, 9)));
        r0.erase_edge(0, 1);
        assert!(r0.adj[&0].is_empty());
    }

    #[test]
    fn kernel_thread_count_does_not_change_results() {
        let build = |threads: usize| {
            let (mut r0, mut r1) = two_rank_path();
            r0.set_kernel_threads(threads);
            r1.set_kernel_threads(threads);
            r0.initial_approximation();
            r1.initial_approximation();
            for _ in 0..4 {
                let out0 = r0.produce_rc_messages(usize::MAX);
                let out1 = r1.produce_rc_messages(usize::MAX);
                let to1: Vec<(usize, RowMsg)> =
                    out0.into_iter().filter(|&(q, _)| q == 1).map(|(_, m)| (0, m)).collect();
                let to0: Vec<(usize, RowMsg)> =
                    out1.into_iter().filter(|&(q, _)| q == 0).map(|(_, m)| (1, m)).collect();
                r0.consume_rc_messages(to0);
                r1.consume_rc_messages(to1);
            }
            (r0.local_rows(), r1.local_rows())
        };
        assert_eq!(build(1), build(4));
    }
}
