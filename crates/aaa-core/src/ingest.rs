//! The **ingest layer**: a typed, coalescing change log in front of the
//! compute loop.
//!
//! Every dynamic mutation — edge additions/removals/reweights, vertex
//! batches, vertex removals — enters the engine through one door:
//! [`ChangeLog::submit`]. Submission validates the change against the
//! graph *as it will look* once everything already queued has applied
//! (the pending overlay), so a validated stream can always drain without
//! errors. Queued changes are coalesced where the net effect allows it:
//!
//! * `AddEdge` followed by `RemoveEdge` of the same pair **annihilate**
//!   (any `SetWeight`s of that pair in between are dropped too);
//! * `SetWeight` after `AddEdge`/`SetWeight` of the same pair **folds**
//!   into the earlier entry (last weight wins);
//! * consecutive `AddVertices` batches with the same assignment strategy
//!   **merge** into one batch (ids line up because batch targets are
//!   interpreted against the post-pending vertex base);
//! * consecutive `RemoveVertices` **merge** (deduplicated).
//!
//! `RemoveEdge` followed by `AddEdge` is *not* coalesced — removal forces
//! a partial restart at drain time, and eliding it would skip that
//! recomputation. Coalescing scans stop at `AddVertices`/`RemoveVertices`
//! barriers: those change which edges exist, so edge ops must not be
//! reordered across them.
//!
//! The compute layer drains the log at RC-step barriers
//! (`AnytimeEngine::drain_changes`), applying each change through the
//! same execution paths the old ad-hoc mutators used.

use crate::changes::{DynamicChange, VertexBatch};
use crate::error::CoreError;
use crate::strategies::AssignStrategy;
use aaa_graph::{AdjGraph, GraphError, VertexId};
use std::collections::VecDeque;

/// One queued change plus the vertex-assignment strategy it was submitted
/// with (`None` for non-batch changes, or a batch routed through the
/// engine's auto policy at drain time).
#[derive(Debug, Clone, PartialEq)]
pub struct PendingChange {
    pub change: DynamicChange,
    pub strategy: Option<AssignStrategy>,
}

/// Ingest counters. On a stream where every drain succeeds,
/// `submitted == coalesced + applied + pending`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Changes accepted by [`ChangeLog::submit`].
    pub submitted: u64,
    /// Entries absorbed by coalescing instead of (or after) queueing.
    pub coalesced: u64,
    /// Changes executed against the engine by drains.
    pub applied: u64,
    /// Drain batches that applied at least one change.
    pub drains: u64,
}

/// The coalescing change queue. See the module docs for semantics.
#[derive(Debug, Clone, Default)]
pub struct ChangeLog {
    queue: VecDeque<PendingChange>,
    stats: IngestStats,
}

impl ChangeLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Queued (not yet applied) changes, oldest first.
    pub fn pending(&self) -> &VecDeque<PendingChange> {
        &self.queue
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Pops the oldest pending change for execution. The caller (the
    /// engine's drain) records the outcome via [`ChangeLog::record_applied`].
    pub fn pop(&mut self) -> Option<PendingChange> {
        self.queue.pop_front()
    }

    /// Marks one popped change as executed.
    pub fn record_applied(&mut self) {
        self.stats.applied += 1;
    }

    /// Marks one drain batch complete.
    pub fn record_drain(&mut self) {
        self.stats.drains += 1;
    }

    /// Validates and enqueues (or coalesces) a change. `graph` is the
    /// engine's *current* graph; validation runs against it plus the
    /// pending overlay, mirroring the execution paths' own checks, so a
    /// change accepted here cannot fail at drain time.
    ///
    /// Empty batches and empty removal lists are accepted and discarded
    /// (they would be no-ops, exactly as the direct mutators treat them).
    pub fn submit(
        &mut self,
        graph: &AdjGraph,
        change: DynamicChange,
        strategy: Option<AssignStrategy>,
    ) -> Result<(), CoreError> {
        match change {
            DynamicChange::AddVertices(batch) => self.submit_batch(graph, batch, strategy),
            DynamicChange::RemoveVertices(victims) => self.submit_removal(graph, victims),
            DynamicChange::AddEdge { u, v, w } => self.submit_add_edge(graph, u, v, w),
            DynamicChange::RemoveEdge { u, v } => self.submit_remove_edge(graph, u, v),
            DynamicChange::SetWeight { u, v, w } => self.submit_set_weight(graph, u, v, w),
        }
    }

    // -----------------------------------------------------------------
    // Pending overlay
    // -----------------------------------------------------------------

    /// Vertex count once every queued change has applied. (Vertex removal
    /// is logical — ids stay valid — so only additions move the count.)
    pub fn projected_vertices(&self, graph: &AdjGraph) -> usize {
        graph.num_vertices()
            + self
                .queue
                .iter()
                .map(|pc| match &pc.change {
                    DynamicChange::AddVertices(b) => b.len(),
                    _ => 0,
                })
                .sum::<usize>()
    }

    /// Whether edge `(u, v)` will exist once the queue has drained:
    /// replays the queue, in order, over the graph's current answer.
    fn edge_will_exist(&self, graph: &AdjGraph, u: VertexId, v: VertexId) -> bool {
        let mut exists = graph.has_edge(u, v);
        let mut base = graph.num_vertices() as VertexId;
        let pair = (u.min(v), u.max(v));
        for pc in &self.queue {
            match &pc.change {
                DynamicChange::AddEdge { u: a, v: b, .. } => {
                    if (u32::min(*a, *b), u32::max(*a, *b)) == pair {
                        exists = true;
                    }
                }
                DynamicChange::RemoveEdge { u: a, v: b } => {
                    if (u32::min(*a, *b), u32::max(*a, *b)) == pair {
                        exists = false;
                    }
                }
                DynamicChange::RemoveVertices(vs) => {
                    if vs.contains(&u) || vs.contains(&v) {
                        exists = false;
                    }
                }
                DynamicChange::AddVertices(batch) => {
                    for (a, b, _) in batch.global_edges(base) {
                        if (u32::min(a, b), u32::max(a, b)) == pair {
                            exists = true;
                        }
                    }
                    base += batch.len() as VertexId;
                }
                DynamicChange::SetWeight { .. } => {}
            }
        }
        exists
    }

    /// Index one past the last `AddVertices`/`RemoveVertices` entry — the
    /// barrier edge-op coalescing must not scan across.
    fn barrier_index(&self) -> usize {
        self.queue
            .iter()
            .rposition(|pc| {
                matches!(
                    pc.change,
                    DynamicChange::AddVertices(_) | DynamicChange::RemoveVertices(_)
                )
            })
            .map(|i| i + 1)
            .unwrap_or(0)
    }

    // -----------------------------------------------------------------
    // Per-variant submit paths
    // -----------------------------------------------------------------

    fn check_vertex(&self, graph: &AdjGraph, v: VertexId) -> Result<(), CoreError> {
        let n = self.projected_vertices(graph);
        if (v as usize) < n {
            Ok(())
        } else {
            Err(CoreError::Graph(GraphError::VertexOutOfRange { vertex: v, len: n }))
        }
    }

    fn submit_add_edge(
        &mut self,
        graph: &AdjGraph,
        u: VertexId,
        v: VertexId,
        w: u32,
    ) -> Result<(), CoreError> {
        self.check_vertex(graph, u)?;
        self.check_vertex(graph, v)?;
        if u == v {
            return Err(CoreError::Graph(GraphError::SelfLoop { vertex: u }));
        }
        if w == 0 {
            return Err(CoreError::Graph(GraphError::ZeroWeight { u, v }));
        }
        if self.edge_will_exist(graph, u, v) {
            return Err(CoreError::Graph(GraphError::DuplicateEdge { u, v }));
        }
        self.stats.submitted += 1;
        // A RemoveEdge of the same pair may sit in the queue; the pair is
        // deliberately *not* annihilated in that direction (the removal
        // must still force its partial restart at drain time).
        self.queue.push_back(PendingChange {
            change: DynamicChange::AddEdge { u, v, w },
            strategy: None,
        });
        Ok(())
    }

    fn submit_set_weight(
        &mut self,
        graph: &AdjGraph,
        u: VertexId,
        v: VertexId,
        w: u32,
    ) -> Result<(), CoreError> {
        self.check_vertex(graph, u)?;
        self.check_vertex(graph, v)?;
        if w == 0 {
            return Err(CoreError::Graph(GraphError::ZeroWeight { u, v }));
        }
        if !self.edge_will_exist(graph, u, v) {
            return Err(CoreError::Graph(GraphError::MissingEdge { u, v }));
        }
        self.stats.submitted += 1;
        let pair = (u.min(v), u.max(v));
        let barrier = self.barrier_index();
        for i in (barrier..self.queue.len()).rev() {
            match &mut self.queue[i].change {
                DynamicChange::AddEdge { u: a, v: b, w: wq }
                | DynamicChange::SetWeight { u: a, v: b, w: wq }
                    if (u32::min(*a, *b), u32::max(*a, *b)) == pair =>
                {
                    *wq = w; // fold: last weight wins
                    self.stats.coalesced += 1;
                    return Ok(());
                }
                // A RemoveEdge of the pair cannot precede us here — the
                // edge exists post-queue, so any removal was already
                // superseded by a later AddEdge we would have hit first.
                _ => {}
            }
        }
        self.queue.push_back(PendingChange {
            change: DynamicChange::SetWeight { u, v, w },
            strategy: None,
        });
        Ok(())
    }

    fn submit_remove_edge(
        &mut self,
        graph: &AdjGraph,
        u: VertexId,
        v: VertexId,
    ) -> Result<(), CoreError> {
        self.check_vertex(graph, u)?;
        self.check_vertex(graph, v)?;
        if !self.edge_will_exist(graph, u, v) {
            return Err(CoreError::Graph(GraphError::MissingEdge { u, v }));
        }
        self.stats.submitted += 1;
        let pair = (u.min(v), u.max(v));
        let barrier = self.barrier_index();
        // Walk back to the barrier: SetWeights of the pair are dead (the
        // removal supersedes them); a queued AddEdge of the pair
        // annihilates with the submitted removal.
        let mut i = self.queue.len();
        while i > barrier {
            i -= 1;
            match &self.queue[i].change {
                DynamicChange::SetWeight { u: a, v: b, .. }
                    if (u32::min(*a, *b), u32::max(*a, *b)) == pair =>
                {
                    self.queue.remove(i);
                    self.stats.coalesced += 1;
                }
                DynamicChange::AddEdge { u: a, v: b, .. }
                    if (u32::min(*a, *b), u32::max(*a, *b)) == pair =>
                {
                    self.queue.remove(i);
                    self.stats.coalesced += 2;
                    return Ok(());
                }
                _ => {}
            }
        }
        self.queue.push_back(PendingChange {
            change: DynamicChange::RemoveEdge { u, v },
            strategy: None,
        });
        Ok(())
    }

    fn submit_batch(
        &mut self,
        graph: &AdjGraph,
        batch: VertexBatch,
        strategy: Option<AssignStrategy>,
    ) -> Result<(), CoreError> {
        if batch.is_empty() {
            return Ok(()); // no-op, same as the direct path
        }
        batch.validate(self.projected_vertices(graph))?;
        self.stats.submitted += 1;
        // Fold into an immediately preceding batch with the same strategy.
        // Safe because batch targets are global post-pending ids either
        // way; only the (heuristic) internal/external split for CutEdge
        // scoring can differ, never the resulting graph.
        if let Some(tail) = self.queue.back_mut() {
            if tail.strategy == strategy {
                if let DynamicChange::AddVertices(prev) = &mut tail.change {
                    prev.vertices.extend(batch.vertices);
                    self.stats.coalesced += 1;
                    return Ok(());
                }
            }
        }
        self.queue.push_back(PendingChange { change: DynamicChange::AddVertices(batch), strategy });
        Ok(())
    }

    fn submit_removal(
        &mut self,
        graph: &AdjGraph,
        victims: Vec<VertexId>,
    ) -> Result<(), CoreError> {
        if victims.is_empty() {
            return Ok(());
        }
        let n = self.projected_vertices(graph);
        for &v in &victims {
            if v as usize >= n {
                return Err(CoreError::InvalidChange(format!(
                    "cannot remove vertex {v}: graph has {n} vertices"
                )));
            }
        }
        self.stats.submitted += 1;
        if let Some(tail) = self.queue.back_mut() {
            if let DynamicChange::RemoveVertices(prev) = &mut tail.change {
                for v in victims {
                    if !prev.contains(&v) {
                        prev.push(v);
                    }
                }
                self.stats.coalesced += 1;
                return Ok(());
            }
        }
        self.queue.push_back(PendingChange {
            change: DynamicChange::RemoveVertices(victims),
            strategy: None,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::NewVertex;

    fn graph() -> AdjGraph {
        let mut g = AdjGraph::with_vertices(4);
        g.add_edge(0, 1, 2).unwrap();
        g.add_edge(1, 2, 3).unwrap();
        g
    }

    fn pending_kinds(log: &ChangeLog) -> Vec<&'static str> {
        log.pending()
            .iter()
            .map(|pc| match pc.change {
                DynamicChange::AddVertices(_) => "addv",
                DynamicChange::RemoveVertices(_) => "rmv",
                DynamicChange::AddEdge { .. } => "adde",
                DynamicChange::RemoveEdge { .. } => "rme",
                DynamicChange::SetWeight { .. } => "setw",
            })
            .collect()
    }

    #[test]
    fn validation_mirrors_the_execution_paths() {
        let g = graph();
        let mut log = ChangeLog::new();
        // Out of range / self-loop / zero weight / duplicate / missing.
        assert!(log.submit(&g, DynamicChange::AddEdge { u: 0, v: 9, w: 1 }, None).is_err());
        assert!(log.submit(&g, DynamicChange::AddEdge { u: 2, v: 2, w: 1 }, None).is_err());
        assert!(log.submit(&g, DynamicChange::AddEdge { u: 0, v: 2, w: 0 }, None).is_err());
        assert!(log.submit(&g, DynamicChange::AddEdge { u: 1, v: 0, w: 5 }, None).is_err());
        assert!(log.submit(&g, DynamicChange::RemoveEdge { u: 0, v: 3 }, None).is_err());
        assert!(log.submit(&g, DynamicChange::SetWeight { u: 0, v: 3, w: 2 }, None).is_err());
        assert!(log.submit(&g, DynamicChange::SetWeight { u: 0, v: 1, w: 0 }, None).is_err());
        assert!(log.submit(&g, DynamicChange::RemoveVertices(vec![99]), None).is_err());
        assert!(log.is_empty(), "rejected changes never queue");
        assert_eq!(log.stats().submitted, 0);
    }

    #[test]
    fn validation_sees_the_pending_overlay() {
        let g = graph();
        let mut log = ChangeLog::new();
        // Queue an edge: a duplicate submit must now fail even though the
        // graph itself does not have the edge yet.
        log.submit(&g, DynamicChange::AddEdge { u: 0, v: 3, w: 1 }, None).unwrap();
        assert!(log.submit(&g, DynamicChange::AddEdge { u: 3, v: 0, w: 2 }, None).is_err());
        // A queued removal makes the edge missing for SetWeight...
        log.submit(&g, DynamicChange::RemoveEdge { u: 1, v: 2 }, None).unwrap();
        assert!(log.submit(&g, DynamicChange::SetWeight { u: 1, v: 2, w: 9 }, None).is_err());
        // ...and re-adding it is legal again (remove→add not coalesced).
        log.submit(&g, DynamicChange::AddEdge { u: 1, v: 2, w: 7 }, None).unwrap();
        assert_eq!(pending_kinds(&log), vec!["adde", "rme", "adde"]);
        // Pending batches extend the id range.
        let batch = VertexBatch { vertices: vec![NewVertex { edges: vec![(0, 1)] }] };
        log.submit(&g, DynamicChange::AddVertices(batch), Some(AssignStrategy::RoundRobin))
            .unwrap();
        assert_eq!(log.projected_vertices(&g), 5);
        log.submit(&g, DynamicChange::AddEdge { u: 4, v: 2, w: 1 }, None).unwrap();
        assert!(log.submit(&g, DynamicChange::AddEdge { u: 5, v: 2, w: 1 }, None).is_err());
    }

    #[test]
    fn add_then_remove_annihilates_with_intervening_setweights() {
        let g = graph();
        let mut log = ChangeLog::new();
        log.submit(&g, DynamicChange::AddEdge { u: 0, v: 2, w: 4 }, None).unwrap();
        log.submit(&g, DynamicChange::AddEdge { u: 0, v: 3, w: 4 }, None).unwrap();
        log.submit(&g, DynamicChange::SetWeight { u: 0, v: 2, w: 6 }, None).unwrap();
        // SetWeight folded into the queued AddEdge, so only two entries.
        assert_eq!(pending_kinds(&log), vec!["adde", "adde"]);
        log.submit(&g, DynamicChange::RemoveEdge { u: 2, v: 0 }, None).unwrap();
        assert_eq!(pending_kinds(&log), vec!["adde"], "add+remove annihilated");
        let s = log.stats();
        assert_eq!(s.submitted, 4);
        assert_eq!(s.coalesced + log.len() as u64, s.submitted);
    }

    #[test]
    fn setweight_merging_keeps_the_last_weight() {
        let g = graph();
        let mut log = ChangeLog::new();
        log.submit(&g, DynamicChange::SetWeight { u: 0, v: 1, w: 5 }, None).unwrap();
        log.submit(&g, DynamicChange::SetWeight { u: 1, v: 0, w: 8 }, None).unwrap();
        assert_eq!(log.len(), 1);
        match log.pending()[0].change {
            DynamicChange::SetWeight { w, .. } => assert_eq!(w, 8),
            _ => panic!("expected SetWeight"),
        }
        assert_eq!(log.stats().coalesced, 1);
    }

    #[test]
    fn batches_fold_only_with_matching_strategy() {
        let g = graph();
        let mut log = ChangeLog::new();
        let nv = |t: VertexId| NewVertex { edges: vec![(t, 1)] };
        let b1 = VertexBatch { vertices: vec![nv(0)] };
        let b2 = VertexBatch { vertices: vec![nv(1)] };
        let b3 = VertexBatch { vertices: vec![nv(2)] };
        log.submit(&g, DynamicChange::AddVertices(b1), Some(AssignStrategy::RoundRobin)).unwrap();
        log.submit(&g, DynamicChange::AddVertices(b2), Some(AssignStrategy::RoundRobin)).unwrap();
        assert_eq!(log.len(), 1, "same strategy folds");
        log.submit(
            &g,
            DynamicChange::AddVertices(b3),
            Some(AssignStrategy::Repartition { seed: 1 }),
        )
        .unwrap();
        assert_eq!(log.len(), 2, "different strategy does not fold");
        match &log.pending()[0].change {
            DynamicChange::AddVertices(b) => assert_eq!(b.len(), 2),
            _ => panic!("expected AddVertices"),
        }
        // Empty batches are accepted and dropped.
        log.submit(&g, DynamicChange::AddVertices(VertexBatch::default()), None).unwrap();
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn removals_merge_and_dedupe() {
        let g = graph();
        let mut log = ChangeLog::new();
        log.submit(&g, DynamicChange::RemoveVertices(vec![1, 2]), None).unwrap();
        log.submit(&g, DynamicChange::RemoveVertices(vec![2, 3]), None).unwrap();
        assert_eq!(log.len(), 1);
        match &log.pending()[0].change {
            DynamicChange::RemoveVertices(vs) => assert_eq!(vs, &vec![1, 2, 3]),
            _ => panic!("expected RemoveVertices"),
        }
        log.submit(&g, DynamicChange::RemoveVertices(Vec::new()), None).unwrap();
        assert_eq!(log.stats().submitted, 2, "empty removal is a no-op");
    }

    #[test]
    fn barriers_stop_edge_coalescing() {
        let g = graph();
        let mut log = ChangeLog::new();
        log.submit(&g, DynamicChange::AddEdge { u: 0, v: 2, w: 4 }, None).unwrap();
        let batch = VertexBatch { vertices: vec![NewVertex { edges: vec![(0, 1)] }] };
        log.submit(&g, DynamicChange::AddVertices(batch), None).unwrap();
        // The edge op after the barrier must not fold into (or annihilate
        // with) the AddEdge before it.
        log.submit(&g, DynamicChange::SetWeight { u: 0, v: 2, w: 9 }, None).unwrap();
        assert_eq!(pending_kinds(&log), vec!["adde", "addv", "setw"]);
        log.submit(&g, DynamicChange::RemoveEdge { u: 0, v: 2 }, None).unwrap();
        assert_eq!(pending_kinds(&log), vec!["adde", "addv", "rme"], "setw died, adde survives");
    }
}
