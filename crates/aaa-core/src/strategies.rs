//! Processor-assignment strategies for dynamic vertex additions
//! (§IV.C.1a of the paper).
//!
//! * [`AssignStrategy::RoundRobin`] — RoundRobin-PS: distribute new vertices
//!   cyclically; O(k), ignores relationships between them.
//! * [`AssignStrategy::CutEdge`] — CutEdge-PS: treat the new vertices and
//!   the edges *among them* as an independent graph, partition it with the
//!   multilevel (METIS-substitute) partitioner, map part `i` → processor
//!   `i`. As in the paper, several seeded partitions are computed and the
//!   one with the fewest cut edges wins ("each processor computes the METIS
//!   partition … and the partition with the lower number of cut-edges is
//!   chosen", §V.A).
//! * [`AssignStrategy::Repartition`] — Repartition-S: repartition the whole
//!   graph instead (handled by the engine; see
//!   `AnytimeEngine::apply_vertex_additions`).

use crate::changes::VertexBatch;
use crate::error::CoreError;
use aaa_graph::{AdjGraph, PartId, VertexId};
use aaa_partition::{cut_edges, MultilevelPartitioner, Partition, Partitioner};

/// How newly added vertices are assigned to processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignStrategy {
    /// RoundRobin-PS.
    RoundRobin,
    /// CutEdge-PS. `tries` seeded partitions are scored; best cut wins.
    /// `tries = 0` defers to the engine's configured default.
    CutEdge { seed: u64, tries: usize },
    /// Repartition-S: repartition the entire graph (no per-vertex
    /// assignment; the engine migrates partial results).
    Repartition { seed: u64 },
}

impl AssignStrategy {
    /// Short human-readable name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            AssignStrategy::RoundRobin => "RoundRobin-PS",
            AssignStrategy::CutEdge { .. } => "CutEdge-PS",
            AssignStrategy::Repartition { .. } => "Repartition-S",
        }
    }
}

/// Round-robin assignment of `count` vertices over `p` processors,
/// starting at `start` (the engine carries the cursor across batches so
/// successive batches keep rotating).
pub fn round_robin_assign(count: usize, p: usize, start: usize) -> Vec<PartId> {
    (0..count).map(|i| ((start + i) % p) as PartId).collect()
}

/// CutEdge-PS assignment: partitions the batch-internal graph into `p`
/// parts minimizing cut edges; batch vertex `i` goes to the processor of
/// its part. Isolated batch vertices end up balanced by the partitioner.
pub fn cut_edge_assign(
    batch: &VertexBatch,
    base: VertexId,
    p: usize,
    seed: u64,
    tries: usize,
) -> Result<Vec<PartId>, CoreError> {
    let k = batch.len();
    let mut g = AdjGraph::with_vertices(k);
    for (a, b, w) in batch.internal_edges(base) {
        // Batch validation already rejects duplicates/self-loops; keep the
        // min on the defensive path anyway.
        g.add_or_min_edge(a, b, w)?;
    }
    let mut best: Option<(usize, Partition)> = None;
    for t in 0..tries.max(1) as u64 {
        let part = MultilevelPartitioner::seeded(seed.wrapping_add(t)).partition(&g, p)?;
        let cut = cut_edges(&g, &part);
        let improves = match &best {
            Some((bc, _)) => cut < *bc,
            None => true,
        };
        if improves {
            best = Some((cut, part));
        }
    }
    let (_, part) = best.expect("at least one try");
    Ok(part.assignment().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::NewVertex;

    #[test]
    fn round_robin_cycles_with_cursor() {
        assert_eq!(round_robin_assign(5, 3, 0), vec![0, 1, 2, 0, 1]);
        assert_eq!(round_robin_assign(4, 3, 2), vec![2, 0, 1, 2]);
        assert!(round_robin_assign(0, 3, 1).is_empty());
    }

    #[test]
    fn cut_edge_keeps_batch_communities_together() {
        // Two internal cliques of 4; CutEdge-PS over 2 procs should not
        // split them (0 internal cut edges achievable).
        let base = 100;
        let mut vertices: Vec<NewVertex> = (0..8).map(|_| NewVertex { edges: vec![] }).collect();
        for c in 0..2u32 {
            let ids: Vec<u32> = (0..4).map(|i| c * 4 + i).collect();
            for (ai, &a) in ids.iter().enumerate() {
                for &b in &ids[ai + 1..] {
                    vertices[b as usize].edges.push((base + a, 1));
                }
            }
        }
        let batch = VertexBatch { vertices };
        batch.validate(base as usize).unwrap();
        let assign = cut_edge_assign(&batch, base, 2, 0, 3).unwrap();
        assert_eq!(assign.len(), 8);
        // Each clique lands on a single processor.
        assert!(assign[0..4].iter().all(|&p| p == assign[0]));
        assert!(assign[4..8].iter().all(|&p| p == assign[4]));
        assert_ne!(assign[0], assign[4]);
    }

    #[test]
    fn cut_edge_handles_edgeless_batch() {
        let batch = VertexBatch { vertices: (0..6).map(|_| NewVertex { edges: vec![] }).collect() };
        let assign = cut_edge_assign(&batch, 10, 3, 1, 2).unwrap();
        assert_eq!(assign.len(), 6);
        assert!(assign.iter().all(|&p| p < 3));
    }

    #[test]
    fn strategy_names() {
        assert_eq!(AssignStrategy::RoundRobin.name(), "RoundRobin-PS");
        assert_eq!(AssignStrategy::CutEdge { seed: 0, tries: 1 }.name(), "CutEdge-PS");
        assert_eq!(AssignStrategy::Repartition { seed: 0 }.name(), "Repartition-S");
    }
}
