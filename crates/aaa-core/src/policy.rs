//! Constraint-driven strategy selection.
//!
//! Line 16 of the paper's recombination template (Fig. 1) is
//! "Choose Recombination strategy(ies) based on the constraints": the
//! framework is supposed to pick how to incorporate a change from a set of
//! constraints (user thresholds, system state, change magnitude) rather
//! than hard-coding one strategy. This module provides that chooser —
//! [`StrategyPolicy`] — encoding the decision rule the paper's §V.B.4
//! summary derives empirically:
//!
//! * small batches, or changes arriving continuously → anywhere vertex
//!   addition (CutEdge-PS when the batch has internal community structure,
//!   RoundRobin-PS otherwise);
//! * large single-step batches → Repartition-S.

use crate::changes::VertexBatch;
use crate::strategies::AssignStrategy;

/// Tunable constraints for strategy selection.
#[derive(Debug, Clone)]
pub struct StrategyPolicy {
    /// If `batch.len() / graph_vertices` exceeds this, repartition.
    /// The paper's crossovers (Figs. 5–6) sit around 3–6 k of 50 k
    /// vertices; 0.05 is the midpoint.
    pub repartition_fraction: f64,
    /// Minimum ratio of batch-internal edges to batch vertices for
    /// CutEdge-PS to be worth its partitioning overhead. Below it the
    /// batch has no exploitable community structure and RoundRobin-PS is
    /// strictly cheaper.
    pub cutedge_internal_ratio: f64,
    /// Seed for the partitioning strategies.
    pub seed: u64,
    /// CutEdge-PS seeded attempts.
    pub cutedge_tries: usize,
}

impl Default for StrategyPolicy {
    fn default() -> Self {
        Self { repartition_fraction: 0.05, cutedge_internal_ratio: 0.5, seed: 0, cutedge_tries: 4 }
    }
}

impl StrategyPolicy {
    /// Chooses the assignment strategy for `batch` arriving on a graph of
    /// `graph_vertices` vertices.
    pub fn choose(&self, batch: &VertexBatch, graph_vertices: usize) -> AssignStrategy {
        if graph_vertices > 0 {
            let fraction = batch.len() as f64 / graph_vertices as f64;
            if fraction > self.repartition_fraction {
                return AssignStrategy::Repartition { seed: self.seed };
            }
        }
        let base = graph_vertices as u32;
        let internal = batch.internal_edges(base).len();
        if !batch.is_empty() && internal as f64 / batch.len() as f64 >= self.cutedge_internal_ratio
        {
            AssignStrategy::CutEdge { seed: self.seed, tries: self.cutedge_tries }
        } else {
            AssignStrategy::RoundRobin
        }
    }
}

/// Retry/backoff policy for the supervised convergence loop
/// (`AnytimeEngine::run_supervised`).
///
/// Attempts count *consecutive* faulty barriers: a clean RC step resets the
/// counter, so a long run under a low fault rate is not starved by its
/// cumulative fault total. Backoff is charged to the **simulated** clock
/// (`sim_comm_us`) — it models the waiting a real supervised MPI runtime
/// would do, without slowing the in-process harness down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Consecutive faulty barriers tolerated before falling back to the
    /// last checkpoint (or degrading, if fallbacks are exhausted too).
    pub max_attempts: u32,
    /// Checkpoint fallbacks allowed before the loop gives up and returns a
    /// degraded-mode answer.
    pub max_fallbacks: u32,
    /// Simulated backoff charged for the first retry (µs).
    pub backoff_base_us: f64,
    /// Multiplier applied per further consecutive retry (exponential
    /// backoff).
    pub backoff_factor: f64,
    /// Extra simulated time charged when a rank stall is detected — the
    /// supervisor's per-superstep deadline that expired before it declared
    /// the rank slow (µs).
    pub deadline_us: f64,
    /// Jitter fraction applied to the backoff: each attempt's wait is
    /// scaled by a deterministic factor in `[1 − jitter, 1]` drawn by
    /// SplitMix64 from the chaos seed and the attempt number — so the
    /// schedule decorrelates retries across seeds without any RNG state,
    /// and is invariant across executors (the draw depends only on
    /// `(seed, attempt)`). `0.0` (the default) disables jitter and makes
    /// [`RetryPolicy::backoff_jittered_us`] equal [`RetryPolicy::backoff_us`]
    /// exactly.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            max_fallbacks: 1,
            backoff_base_us: 200.0,
            backoff_factor: 2.0,
            deadline_us: 5_000.0,
            jitter: 0.0,
        }
    }
}

impl RetryPolicy {
    /// Simulated backoff before retry number `attempt` (1-based):
    /// `base · factor^(attempt−1)`, with the exponent clamped so pathological
    /// policies cannot overflow to infinity.
    pub fn backoff_us(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(16);
        self.backoff_base_us * self.backoff_factor.powi(exp as i32)
    }

    /// [`RetryPolicy::backoff_us`] scaled by the deterministic jitter
    /// factor for `(seed, attempt)`. With `jitter == 0.0` the factor is
    /// exactly `1.0` and this returns `backoff_us(attempt)` bit-for-bit.
    pub fn backoff_jittered_us(&self, attempt: u32, seed: u64) -> f64 {
        if self.jitter <= 0.0 {
            return self.backoff_us(attempt);
        }
        let j = self.jitter.min(1.0);
        let u = aaa_runtime::unit_f64(aaa_runtime::mix64(seed, &[17, attempt as u64]));
        self.backoff_us(attempt) * (1.0 - j * u)
    }

    /// The supervisor's deadline for attempt number `attempt` (1-based):
    /// the base deadline stretched by the same clamped exponential as the
    /// backoff, so later retries — which wait longer — are also given
    /// longer to succeed before being declared failed.
    pub fn attempt_deadline_us(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(16);
        self.deadline_us * self.backoff_factor.powi(exp as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::NewVertex;

    #[allow(clippy::needless_range_loop)]
    fn batch_with_internal(count: usize, internal_edges: usize) -> VertexBatch {
        let base = 1000u32; // callers use graph_vertices = 1000
        let mut vertices: Vec<NewVertex> =
            (0..count).map(|_| NewVertex { edges: vec![] }).collect();
        let mut placed = 0;
        'outer: for i in 1..count {
            for j in 0..i {
                if placed >= internal_edges {
                    break 'outer;
                }
                vertices[i].edges.push((base + j as u32, 1));
                placed += 1;
            }
        }
        VertexBatch { vertices }
    }

    #[test]
    fn large_batches_repartition() {
        let policy = StrategyPolicy::default();
        let batch = batch_with_internal(100, 0);
        assert!(matches!(policy.choose(&batch, 1000), AssignStrategy::Repartition { .. }));
    }

    #[test]
    fn small_structured_batches_use_cutedge() {
        let policy = StrategyPolicy::default();
        let batch = batch_with_internal(20, 30);
        assert!(matches!(policy.choose(&batch, 1000), AssignStrategy::CutEdge { .. }));
    }

    #[test]
    fn small_unstructured_batches_use_round_robin() {
        let policy = StrategyPolicy::default();
        let batch = batch_with_internal(20, 2);
        assert!(matches!(policy.choose(&batch, 1000), AssignStrategy::RoundRobin));
    }

    #[test]
    fn empty_graph_never_divides_by_zero() {
        let policy = StrategyPolicy::default();
        let batch = batch_with_internal(5, 0);
        let _ = policy.choose(&batch, 0);
    }

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let p = RetryPolicy::default();
        assert!((p.backoff_us(1) - 200.0).abs() < 1e-9);
        assert!((p.backoff_us(2) - 400.0).abs() < 1e-9);
        assert!((p.backoff_us(4) - 1600.0).abs() < 1e-9);
        // Exponent clamps at 16: attempt 18 and attempt 100 cost the same.
        assert_eq!(p.backoff_us(18), p.backoff_us(100));
        assert!(p.backoff_us(100).is_finite());
        // attempt 0 is treated as the first retry.
        assert_eq!(p.backoff_us(0), p.backoff_us(1));
    }

    #[test]
    fn zero_jitter_matches_plain_backoff_bitwise() {
        let p = RetryPolicy::default();
        for attempt in 0..40 {
            for seed in [0u64, 1, 42, u64::MAX] {
                assert_eq!(
                    p.backoff_jittered_us(attempt, seed).to_bits(),
                    p.backoff_us(attempt).to_bits(),
                    "jitter 0.0 must be a bitwise no-op (attempt {attempt}, seed {seed})"
                );
            }
        }
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy { jitter: 0.5, ..RetryPolicy::default() };
        for attempt in 1..20 {
            let a = p.backoff_jittered_us(attempt, 7);
            let b = p.backoff_jittered_us(attempt, 7);
            assert_eq!(a.to_bits(), b.to_bits(), "same (seed, attempt) must redraw identically");
            let raw = p.backoff_us(attempt);
            assert!(
                a >= raw * 0.5 - 1e-9 && a <= raw,
                "jittered wait {a} outside [{}, {raw}]",
                raw * 0.5
            );
        }
        // Different seeds decorrelate somewhere in the schedule.
        assert!((1..20).any(|a| {
            p.backoff_jittered_us(a, 1).to_bits() != p.backoff_jittered_us(a, 2).to_bits()
        }));
        // Oversized jitter clamps to 1.0 and never goes negative.
        let wild = RetryPolicy { jitter: 5.0, ..RetryPolicy::default() };
        for attempt in 1..10 {
            assert!(wild.backoff_jittered_us(attempt, 3) >= 0.0);
        }
    }

    #[test]
    fn attempt_deadline_grows_with_backoff_and_saturates() {
        let p = RetryPolicy::default();
        assert!((p.attempt_deadline_us(1) - 5_000.0).abs() < 1e-9);
        assert!((p.attempt_deadline_us(2) - 10_000.0).abs() < 1e-9);
        assert!((p.attempt_deadline_us(3) - 20_000.0).abs() < 1e-9);
        assert_eq!(p.attempt_deadline_us(18), p.attempt_deadline_us(100));
        assert!(p.attempt_deadline_us(100).is_finite());
        assert_eq!(p.attempt_deadline_us(0), p.attempt_deadline_us(1));
    }

    #[test]
    fn thresholds_are_respected() {
        let strict = StrategyPolicy { repartition_fraction: 0.001, ..Default::default() };
        let batch = batch_with_internal(5, 0);
        assert!(matches!(strict.choose(&batch, 1000), AssignStrategy::Repartition { .. }));
        let lax = StrategyPolicy {
            repartition_fraction: 1.0,
            cutedge_internal_ratio: 0.0,
            ..Default::default()
        };
        assert!(matches!(lax.choose(&batch, 1000), AssignStrategy::CutEdge { .. }));
    }
}
