//! Constraint-driven strategy selection.
//!
//! Line 16 of the paper's recombination template (Fig. 1) is
//! "Choose Recombination strategy(ies) based on the constraints": the
//! framework is supposed to pick how to incorporate a change from a set of
//! constraints (user thresholds, system state, change magnitude) rather
//! than hard-coding one strategy. This module provides that chooser —
//! [`StrategyPolicy`] — encoding the decision rule the paper's §V.B.4
//! summary derives empirically:
//!
//! * small batches, or changes arriving continuously → anywhere vertex
//!   addition (CutEdge-PS when the batch has internal community structure,
//!   RoundRobin-PS otherwise);
//! * large single-step batches → Repartition-S.

use crate::changes::VertexBatch;
use crate::strategies::AssignStrategy;

/// Tunable constraints for strategy selection.
#[derive(Debug, Clone)]
pub struct StrategyPolicy {
    /// If `batch.len() / graph_vertices` exceeds this, repartition.
    /// The paper's crossovers (Figs. 5–6) sit around 3–6 k of 50 k
    /// vertices; 0.05 is the midpoint.
    pub repartition_fraction: f64,
    /// Minimum ratio of batch-internal edges to batch vertices for
    /// CutEdge-PS to be worth its partitioning overhead. Below it the
    /// batch has no exploitable community structure and RoundRobin-PS is
    /// strictly cheaper.
    pub cutedge_internal_ratio: f64,
    /// Seed for the partitioning strategies.
    pub seed: u64,
    /// CutEdge-PS seeded attempts.
    pub cutedge_tries: usize,
}

impl Default for StrategyPolicy {
    fn default() -> Self {
        Self { repartition_fraction: 0.05, cutedge_internal_ratio: 0.5, seed: 0, cutedge_tries: 4 }
    }
}

impl StrategyPolicy {
    /// Chooses the assignment strategy for `batch` arriving on a graph of
    /// `graph_vertices` vertices.
    pub fn choose(&self, batch: &VertexBatch, graph_vertices: usize) -> AssignStrategy {
        if graph_vertices > 0 {
            let fraction = batch.len() as f64 / graph_vertices as f64;
            if fraction > self.repartition_fraction {
                return AssignStrategy::Repartition { seed: self.seed };
            }
        }
        let base = graph_vertices as u32;
        let internal = batch.internal_edges(base).len();
        if !batch.is_empty() && internal as f64 / batch.len() as f64 >= self.cutedge_internal_ratio
        {
            AssignStrategy::CutEdge { seed: self.seed, tries: self.cutedge_tries }
        } else {
            AssignStrategy::RoundRobin
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::NewVertex;

    #[allow(clippy::needless_range_loop)]
    fn batch_with_internal(count: usize, internal_edges: usize) -> VertexBatch {
        let base = 1000u32; // callers use graph_vertices = 1000
        let mut vertices: Vec<NewVertex> =
            (0..count).map(|_| NewVertex { edges: vec![] }).collect();
        let mut placed = 0;
        'outer: for i in 1..count {
            for j in 0..i {
                if placed >= internal_edges {
                    break 'outer;
                }
                vertices[i].edges.push((base + j as u32, 1));
                placed += 1;
            }
        }
        VertexBatch { vertices }
    }

    #[test]
    fn large_batches_repartition() {
        let policy = StrategyPolicy::default();
        let batch = batch_with_internal(100, 0);
        assert!(matches!(policy.choose(&batch, 1000), AssignStrategy::Repartition { .. }));
    }

    #[test]
    fn small_structured_batches_use_cutedge() {
        let policy = StrategyPolicy::default();
        let batch = batch_with_internal(20, 30);
        assert!(matches!(policy.choose(&batch, 1000), AssignStrategy::CutEdge { .. }));
    }

    #[test]
    fn small_unstructured_batches_use_round_robin() {
        let policy = StrategyPolicy::default();
        let batch = batch_with_internal(20, 2);
        assert!(matches!(policy.choose(&batch, 1000), AssignStrategy::RoundRobin));
    }

    #[test]
    fn empty_graph_never_divides_by_zero() {
        let policy = StrategyPolicy::default();
        let batch = batch_with_internal(5, 0);
        let _ = policy.choose(&batch, 0);
    }

    #[test]
    fn thresholds_are_respected() {
        let strict = StrategyPolicy { repartition_fraction: 0.001, ..Default::default() };
        let batch = batch_with_internal(5, 0);
        assert!(matches!(strict.choose(&batch, 1000), AssignStrategy::Repartition { .. }));
        let lax = StrategyPolicy {
            repartition_fraction: 1.0,
            cutedge_internal_ratio: 0.0,
            ..Default::default()
        };
        assert!(matches!(lax.choose(&batch, 1000), AssignStrategy::CutEdge { .. }));
    }
}
