//! The distributed protocol: ranks as OS processes over a real transport.
//!
//! `aaa-runtime::net` provides the plumbing (framed, sequenced, chaos-aware
//! links); this module speaks the algorithm over it. The topology is a
//! coordinator-relayed star: the coordinator owns the graph, the partition
//! and the BSP clock, and every worker owns one rank's [`RankState`]. Each
//! recombination round is the familiar produce → relay → consume exchange,
//! driven by [`NetMsg`]s inside `Data` frames:
//!
//! ```text
//!  coordinator                      worker r
//!  ───────────                      ────────
//!  Produce{round}        ─────▶
//!                        ◀─────    Rows{round, dest, msg}  (×k)
//!                        ◀─────    RowsDone{round, sent}
//!  Rows{round, src, msg} ─────▶    (relayed from the other ranks)
//!  Consume{round}        ─────▶
//!                        ◀─────    StepDone{round, changed, dirty}
//! ```
//!
//! The run converges when a full round moves nothing: no rank sent, no
//! rank's merge changed anything, no rank holds dirty rows. Because the
//! recombination merge is an idempotent, commutative min-merge and the
//! relay preserves every message within a round, the fixed point is the
//! same one the in-process executor reaches — closeness comes out
//! bit-identical (the cross-transport equivalence test pins this).
//!
//! **Failure handling** (the supervision ladder over real faults): any
//! transport error or deadline miss on a worker's link first triggers a
//! heartbeat probe. A probe answered within its deadline means the fault
//! was transient — the round is aborted and every rank re-announces
//! ([`NetMsg::ResendAll`]), which is always safe. A dead probe escalates
//! to the [`WorkerSupervisor`], which may heal the link (same process
//! reconnected — state intact) or hand back a replacement for a respawned
//! process (fresh state — re-initialized, then min-merged with the last
//! gathered checkpoint via [`NetMsg::Absorb`]). When the supervisor gives
//! up, the run **degrades** instead of failing: surviving workers (and
//! checkpoints of dead ones) are gathered into a [`DegradedReport`] whose
//! certified bounds cover the exact answer.

use crate::quality::{degraded_closeness_bounds, DegradedReason, DegradedReport};
use crate::rank::{RankState, RowMsg, RowPayload, WireFormat};
use aaa_checkpoint::RankSnapshot;
use aaa_graph::apsp::DistMatrix;
use aaa_graph::closeness::closeness_from_row;
use aaa_graph::{AdjGraph, Dist, PartId, VertexId, Weight};
use aaa_observe::{EventSink, NoopSink, SpanEvent, SpanKind, DRIVER_LANE};
use aaa_partition::{
    LoadSignals, Partition, RebalanceConfig, RebalancePlan, RebalancePolicy, Rebalancer,
};
use aaa_runtime::net::{FrameKind, NetError, Transport};
use aaa_runtime::{ClusterError, FaultCounters, Rank};
use rustc_hash::FxHashMap;
use rustc_hash::FxHashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Wire codec for protocol messages
// ---------------------------------------------------------------------

/// Typed decode errors for [`NetMsg`] payloads. Like the frame codec, the
/// decoder never panics: every malformed byte sequence maps here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Payload ended before the field being read.
    Truncated { at: usize },
    /// First byte is not a known message tag.
    UnknownTag(u8),
    /// Wire-format byte is neither full nor delta.
    UnknownWire(u8),
    /// Row-payload kind byte is neither Full nor Delta.
    UnknownPayload(u8),
    /// Bytes left over after a complete message.
    TrailingBytes { extra: usize },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { at } => write!(f, "message truncated at byte {at}"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::UnknownWire(w) => write!(f, "unknown wire format byte {w}"),
            WireError::UnknownPayload(p) => write!(f, "unknown row payload kind {p}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian cursor with typed underflow errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated { at: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let end = self.pos + 4;
        let s = self.bytes.get(self.pos..end).ok_or(WireError::Truncated { at: self.pos })?;
        self.pos = end;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let end = self.pos + 8;
        let s = self.bytes.get(self.pos..end).ok_or(WireError::Truncated { at: self.pos })?;
        self.pos = end;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// A `u32` that will be used as an element count: additionally bounded
    /// by the bytes actually remaining (each element costs ≥ `min_elem`
    /// bytes), so a corrupted count cannot drive a huge allocation.
    fn count(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let left = self.bytes.len() - self.pos;
        if n.saturating_mul(min_elem.max(1)) > left {
            return Err(WireError::Truncated { at: self.pos });
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            Err(WireError::TrailingBytes { extra: self.bytes.len() - self.pos })
        } else {
            Ok(())
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_rowmsg(out: &mut Vec<u8>, msg: &RowMsg) {
    put_u32(out, msg.rows.len() as u32);
    for (v, payload) in &msg.rows {
        put_u32(out, *v);
        match payload {
            RowPayload::Full(row) => {
                out.push(0);
                put_u32(out, row.len() as u32);
                for &d in row {
                    put_u32(out, d);
                }
            }
            RowPayload::Delta(pairs) => {
                out.push(1);
                put_u32(out, pairs.len() as u32);
                for &(c, d) in pairs {
                    put_u32(out, c);
                    put_u32(out, d);
                }
            }
        }
    }
}

fn decode_rowmsg(r: &mut Reader<'_>) -> Result<RowMsg, WireError> {
    let n = r.count(9)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let v = r.u32()?;
        let kind = r.u8()?;
        let payload = match kind {
            0 => {
                let len = r.count(4)?;
                let mut row = Vec::with_capacity(len);
                for _ in 0..len {
                    row.push(r.u32()?);
                }
                RowPayload::Full(row)
            }
            1 => {
                let len = r.count(8)?;
                let mut pairs = Vec::with_capacity(len);
                for _ in 0..len {
                    let c = r.u32()?;
                    let d = r.u32()?;
                    pairs.push((c, d));
                }
                RowPayload::Delta(pairs)
            }
            other => return Err(WireError::UnknownPayload(other)),
        };
        rows.push((v, payload));
    }
    Ok(RowMsg { rows })
}

fn encode_rows(out: &mut Vec<u8>, rows: &[(VertexId, Vec<Dist>)]) {
    put_u32(out, rows.len() as u32);
    for (v, row) in rows {
        put_u32(out, *v);
        put_u32(out, row.len() as u32);
        for &d in row {
            put_u32(out, d);
        }
    }
}

fn decode_rows(r: &mut Reader<'_>) -> Result<Vec<(VertexId, Vec<Dist>)>, WireError> {
    let n = r.count(8)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let v = r.u32()?;
        let len = r.count(4)?;
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            row.push(r.u32()?);
        }
        rows.push((v, row));
    }
    Ok(rows)
}

/// The protocol messages carried inside `Data` frames. Everything the
/// coordinator and a worker say to each other is one of these; the codec
/// is little-endian, self-delimiting, and rejects malformed input with a
/// typed [`WireError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetMsg {
    /// Coordinator → worker: build rank `rank` of `procs` over the global
    /// graph (`owner` assigns every vertex; `edges` is the full undirected
    /// edge list), run the initial approximation, answer [`NetMsg::Ready`].
    Init {
        rank: u32,
        procs: u32,
        wire: WireFormat,
        cap_bytes: u64,
        owner: Vec<PartId>,
        edges: Vec<(VertexId, VertexId, Weight)>,
    },
    /// Worker → coordinator: generic completion ack (Init / Absorb /
    /// ResendAll).
    Ready { rank: u32 },
    /// Coordinator → worker: run the produce half of round `round`.
    Produce { round: u64 },
    /// Both directions: a row bundle. Worker → coordinator, `peer` is the
    /// destination rank; coordinator → worker, `peer` is the source rank.
    Rows { round: u64, peer: u32, msg: RowMsg },
    /// Worker → coordinator: produce finished; `sent` echoes whether
    /// anything was emitted this round.
    RowsDone { round: u64, sent: bool },
    /// Coordinator → worker: all rows for this round have been relayed
    /// (`expect` of them — a sanity check); min-merge and relax.
    Consume { round: u64, expect: u32 },
    /// Worker → coordinator: consume finished; `changed` is whether the
    /// merge improved anything, `dirty` whether rows await announcement.
    StepDone { round: u64, changed: bool, dirty: bool },
    /// Coordinator → worker: reply with local closeness.
    GatherClose,
    /// Worker → coordinator: closeness of every local vertex (f64 bits).
    CloseReply { pairs: Vec<(VertexId, u64)> },
    /// Coordinator → worker: reply with all local DV rows (checkpoint
    /// gather / degraded-mode salvage).
    GatherRows,
    /// Worker → coordinator: the local rows.
    RowsReply { rows: Vec<(VertexId, Vec<Dist>)> },
    /// Coordinator → worker: min-merge these rows into local state (the
    /// checkpoint-fallback path for a respawned worker). Answer `Ready`.
    Absorb { rows: Vec<(VertexId, Vec<Dist>)> },
    /// Coordinator → worker: mark every local row dirty and re-announce on
    /// the next produce (recovery kick after any disruption). Answer
    /// `Ready`.
    ResendAll,
    /// Coordinator → worker: orderly end of run.
    Bye,
    /// Coordinator → worker: the background rebalancer moved `moves`
    /// vertices to new owners. Every worker updates its replicated owner
    /// map, then ships the rows it lost as [`NetMsg::Rows`] bundles
    /// (relayed like a produce phase) and answers [`NetMsg::RowsDone`];
    /// the following [`NetMsg::Consume`] installs the gained rows. `adj`
    /// carries the adjacency of every moved vertex (deduped per
    /// undirected edge) so receivers can rebuild local structure.
    Reassign { round: u64, moves: Vec<(VertexId, PartId)>, adj: Vec<(VertexId, VertexId, Weight)> },
    /// Publisher → view replica: one published epoch as a change set (the
    /// wire form of `publish::ViewDelta`; replication lands in a later
    /// PR). `entries`/`bounds` pair vertex ids with `f64::to_bits` values
    /// so the message keeps `Eq` and round-trips exactly; `full` epochs
    /// re-state every vertex. Rides the same CRC-framed transport as
    /// every other message.
    ViewDelta {
        epoch: u64,
        rc_steps: u64,
        changes_applied: u64,
        n: u32,
        converged: bool,
        full: bool,
        entries: Vec<(VertexId, u64)>,
        bounds: Vec<(VertexId, u64)>,
    },
    /// [`NetMsg::ViewDelta`] extended with extra metric columns (S31):
    /// each element pairs a `MetricKind` wire id with that metric's
    /// changed `(vertex, f64-bits)` entries. Emitted only when the epoch
    /// carries extras — closeness-only runs still produce tag-16
    /// [`NetMsg::ViewDelta`] frames, byte for byte.
    ViewDeltaMulti {
        epoch: u64,
        rc_steps: u64,
        changes_applied: u64,
        n: u32,
        converged: bool,
        full: bool,
        entries: Vec<(VertexId, u64)>,
        bounds: Vec<(VertexId, u64)>,
        extras: Vec<(u8, Vec<(VertexId, u64)>)>,
    },
}

impl NetMsg {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            NetMsg::Init { rank, procs, wire, cap_bytes, owner, edges } => {
                out.push(1);
                put_u32(&mut out, *rank);
                put_u32(&mut out, *procs);
                out.push(match wire {
                    WireFormat::Full => 0,
                    WireFormat::Delta => 1,
                });
                put_u64(&mut out, *cap_bytes);
                put_u32(&mut out, owner.len() as u32);
                for &p in owner {
                    put_u32(&mut out, p);
                }
                put_u32(&mut out, edges.len() as u32);
                for &(a, b, w) in edges {
                    put_u32(&mut out, a);
                    put_u32(&mut out, b);
                    put_u32(&mut out, w);
                }
            }
            NetMsg::Ready { rank } => {
                out.push(2);
                put_u32(&mut out, *rank);
            }
            NetMsg::Produce { round } => {
                out.push(3);
                put_u64(&mut out, *round);
            }
            NetMsg::Rows { round, peer, msg } => {
                out.push(4);
                put_u64(&mut out, *round);
                put_u32(&mut out, *peer);
                encode_rowmsg(&mut out, msg);
            }
            NetMsg::RowsDone { round, sent } => {
                out.push(5);
                put_u64(&mut out, *round);
                out.push(u8::from(*sent));
            }
            NetMsg::Consume { round, expect } => {
                out.push(6);
                put_u64(&mut out, *round);
                put_u32(&mut out, *expect);
            }
            NetMsg::StepDone { round, changed, dirty } => {
                out.push(7);
                put_u64(&mut out, *round);
                out.push(u8::from(*changed));
                out.push(u8::from(*dirty));
            }
            NetMsg::GatherClose => out.push(8),
            NetMsg::CloseReply { pairs } => {
                out.push(9);
                put_u32(&mut out, pairs.len() as u32);
                for &(v, bits) in pairs {
                    put_u32(&mut out, v);
                    put_u64(&mut out, bits);
                }
            }
            NetMsg::GatherRows => out.push(10),
            NetMsg::RowsReply { rows } => {
                out.push(11);
                encode_rows(&mut out, rows);
            }
            NetMsg::Absorb { rows } => {
                out.push(12);
                encode_rows(&mut out, rows);
            }
            NetMsg::ResendAll => out.push(13),
            NetMsg::Bye => out.push(14),
            NetMsg::Reassign { round, moves, adj } => {
                out.push(15);
                put_u64(&mut out, *round);
                put_u32(&mut out, moves.len() as u32);
                for &(v, p) in moves {
                    put_u32(&mut out, v);
                    put_u32(&mut out, p);
                }
                put_u32(&mut out, adj.len() as u32);
                for &(a, b, w) in adj {
                    put_u32(&mut out, a);
                    put_u32(&mut out, b);
                    put_u32(&mut out, w);
                }
            }
            NetMsg::ViewDelta {
                epoch,
                rc_steps,
                changes_applied,
                n,
                converged,
                full,
                entries,
                bounds,
            } => {
                out.push(16);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *rc_steps);
                put_u64(&mut out, *changes_applied);
                put_u32(&mut out, *n);
                out.push(u8::from(*converged) | (u8::from(*full) << 1));
                put_u32(&mut out, entries.len() as u32);
                for &(v, bits) in entries {
                    put_u32(&mut out, v);
                    put_u64(&mut out, bits);
                }
                put_u32(&mut out, bounds.len() as u32);
                for &(v, bits) in bounds {
                    put_u32(&mut out, v);
                    put_u64(&mut out, bits);
                }
            }
            NetMsg::ViewDeltaMulti {
                epoch,
                rc_steps,
                changes_applied,
                n,
                converged,
                full,
                entries,
                bounds,
                extras,
            } => {
                out.push(17);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *rc_steps);
                put_u64(&mut out, *changes_applied);
                put_u32(&mut out, *n);
                out.push(u8::from(*converged) | (u8::from(*full) << 1));
                put_u32(&mut out, entries.len() as u32);
                for &(v, bits) in entries {
                    put_u32(&mut out, v);
                    put_u64(&mut out, bits);
                }
                put_u32(&mut out, bounds.len() as u32);
                for &(v, bits) in bounds {
                    put_u32(&mut out, v);
                    put_u64(&mut out, bits);
                }
                out.push(extras.len() as u8);
                for (kind, es) in extras {
                    out.push(*kind);
                    put_u32(&mut out, es.len() as u32);
                    for &(v, bits) in es {
                        put_u32(&mut out, v);
                        put_u64(&mut out, bits);
                    }
                }
            }
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let msg = match tag {
            1 => {
                let rank = r.u32()?;
                let procs = r.u32()?;
                let wire = match r.u8()? {
                    0 => WireFormat::Full,
                    1 => WireFormat::Delta,
                    other => return Err(WireError::UnknownWire(other)),
                };
                let cap_bytes = r.u64()?;
                let n = r.count(4)?;
                let mut owner = Vec::with_capacity(n);
                for _ in 0..n {
                    owner.push(r.u32()?);
                }
                let m = r.count(12)?;
                let mut edges = Vec::with_capacity(m);
                for _ in 0..m {
                    let a = r.u32()?;
                    let b = r.u32()?;
                    let w = r.u32()?;
                    edges.push((a, b, w));
                }
                NetMsg::Init { rank, procs, wire, cap_bytes, owner, edges }
            }
            2 => NetMsg::Ready { rank: r.u32()? },
            3 => NetMsg::Produce { round: r.u64()? },
            4 => {
                let round = r.u64()?;
                let peer = r.u32()?;
                let msg = decode_rowmsg(&mut r)?;
                NetMsg::Rows { round, peer, msg }
            }
            5 => NetMsg::RowsDone { round: r.u64()?, sent: r.u8()? != 0 },
            6 => NetMsg::Consume { round: r.u64()?, expect: r.u32()? },
            7 => {
                let round = r.u64()?;
                let changed = r.u8()? != 0;
                let dirty = r.u8()? != 0;
                NetMsg::StepDone { round, changed, dirty }
            }
            8 => NetMsg::GatherClose,
            9 => {
                let n = r.count(12)?;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let v = r.u32()?;
                    let bits = r.u64()?;
                    pairs.push((v, bits));
                }
                NetMsg::CloseReply { pairs }
            }
            10 => NetMsg::GatherRows,
            11 => NetMsg::RowsReply { rows: decode_rows(&mut r)? },
            12 => NetMsg::Absorb { rows: decode_rows(&mut r)? },
            13 => NetMsg::ResendAll,
            14 => NetMsg::Bye,
            15 => {
                let round = r.u64()?;
                let n = r.count(8)?;
                let mut moves = Vec::with_capacity(n);
                for _ in 0..n {
                    let v = r.u32()?;
                    let p = r.u32()?;
                    moves.push((v, p));
                }
                let m = r.count(12)?;
                let mut adj = Vec::with_capacity(m);
                for _ in 0..m {
                    let a = r.u32()?;
                    let b = r.u32()?;
                    let w = r.u32()?;
                    adj.push((a, b, w));
                }
                NetMsg::Reassign { round, moves, adj }
            }
            16 => {
                let epoch = r.u64()?;
                let rc_steps = r.u64()?;
                let changes_applied = r.u64()?;
                let n = r.u32()?;
                let flags = r.u8()?;
                let converged = flags & 1 != 0;
                let full = flags & 2 != 0;
                let e = r.count(12)?;
                let mut entries = Vec::with_capacity(e);
                for _ in 0..e {
                    let v = r.u32()?;
                    let bits = r.u64()?;
                    entries.push((v, bits));
                }
                let b = r.count(12)?;
                let mut bounds = Vec::with_capacity(b);
                for _ in 0..b {
                    let v = r.u32()?;
                    let bits = r.u64()?;
                    bounds.push((v, bits));
                }
                NetMsg::ViewDelta {
                    epoch,
                    rc_steps,
                    changes_applied,
                    n,
                    converged,
                    full,
                    entries,
                    bounds,
                }
            }
            17 => {
                let epoch = r.u64()?;
                let rc_steps = r.u64()?;
                let changes_applied = r.u64()?;
                let n = r.u32()?;
                let flags = r.u8()?;
                let converged = flags & 1 != 0;
                let full = flags & 2 != 0;
                let pair_list = |r: &mut Reader| -> Result<Vec<(VertexId, u64)>, WireError> {
                    let c = r.count(12)?;
                    let mut out = Vec::with_capacity(c);
                    for _ in 0..c {
                        let v = r.u32()?;
                        let bits = r.u64()?;
                        out.push((v, bits));
                    }
                    Ok(out)
                };
                let entries = pair_list(&mut r)?;
                let bounds = pair_list(&mut r)?;
                let k = r.u8()? as usize;
                let mut extras = Vec::with_capacity(k);
                for _ in 0..k {
                    let kind = r.u8()?;
                    extras.push((kind, pair_list(&mut r)?));
                }
                NetMsg::ViewDeltaMulti {
                    epoch,
                    rc_steps,
                    changes_applied,
                    n,
                    converged,
                    full,
                    entries,
                    bounds,
                    extras,
                }
            }
            other => return Err(WireError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(msg)
    }
}

fn protocol_err(peer: &str, what: impl std::fmt::Display) -> NetError {
    NetError::Protocol { peer: peer.to_string(), what: what.to_string() }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Runs one rank as a transport-driven reactor until the coordinator says
/// goodbye (clean `Ok`), the link dies past repair, or nothing arrives for
/// `idle_deadline` (a dead coordinator must not leave orphan processes —
/// the worker exits on its own).
///
/// The worker is a pure protocol follower: all control flow — rounds,
/// convergence, recovery — lives in the coordinator. That is what makes
/// blind re-execution safe: every state transition a worker performs
/// (min-merge, relaxation, resend marking) is idempotent, so a replayed
/// or repeated command converges to the same state.
pub fn run_worker<T: Transport>(link: &mut T, idle_deadline: Duration) -> Result<(), NetError> {
    let mut state: Option<RankState> = None;
    let mut inbox: Vec<(Rank, RowMsg)> = Vec::new();
    let mut cap_bytes = usize::MAX;
    // In-flight budgeted migration: the next Consume installs migrated
    // rows (using the adjacency shipped with the Reassign) instead of
    // running the normal min-merge.
    let mut migrating = false;
    let mut moved_adj: FxHashMap<VertexId, Vec<(VertexId, Weight)>> = FxHashMap::default();
    let mut pending_moves: Vec<(VertexId, PartId)> = Vec::new();
    loop {
        let frame = link.recv(Some(idle_deadline))?;
        match frame.kind {
            FrameKind::Shutdown => return Ok(()),
            FrameKind::Data => {}
            _ => continue,
        }
        let msg = NetMsg::decode(&frame.payload).map_err(|e| protocol_err(&link.peer(), e))?;
        match msg {
            NetMsg::Init { rank, procs: _, wire, cap_bytes: cap, owner, edges } => {
                let mut adj: FxHashMap<VertexId, Vec<(VertexId, Weight)>> = FxHashMap::default();
                for &(a, b, w) in &edges {
                    adj.entry(a).or_default().push((b, w));
                    adj.entry(b).or_default().push((a, w));
                }
                let mut s = RankState::build(rank as Rank, owner, |v| {
                    adj.get(&v).cloned().unwrap_or_default()
                });
                s.set_wire(wire);
                s.initial_approximation();
                cap_bytes = if cap == 0 { usize::MAX } else { cap as usize };
                state = Some(s);
                inbox.clear();
                link.send(FrameKind::Data, &NetMsg::Ready { rank }.encode())?;
            }
            NetMsg::Produce { round } => {
                let s = state
                    .as_mut()
                    .ok_or_else(|| protocol_err(&link.peer(), "Produce before Init"))?;
                inbox.clear();
                let outgoing = s.produce_rc_messages(cap_bytes);
                let sent = s.last_sent;
                for (dest, msg) in outgoing {
                    let wire = NetMsg::Rows { round, peer: dest as u32, msg };
                    link.send(FrameKind::Data, &wire.encode())?;
                }
                link.send(FrameKind::Data, &NetMsg::RowsDone { round, sent }.encode())?;
            }
            NetMsg::Rows { round: _, peer, msg } => {
                inbox.push((peer as Rank, msg));
            }
            NetMsg::Consume { round, expect } => {
                let s = state
                    .as_mut()
                    .ok_or_else(|| protocol_err(&link.peer(), "Consume before Init"))?;
                if inbox.len() != expect as usize {
                    // The link is ordered and replayed, so this can only be
                    // a coordinator bug — surface it loudly.
                    return Err(protocol_err(
                        &link.peer(),
                        format!(
                            "round {round}: expected {expect} row bundles, have {}",
                            inbox.len()
                        ),
                    ));
                }
                if migrating {
                    migrating = false;
                    let adj = std::mem::take(&mut moved_adj);
                    let moves = std::mem::take(&mut pending_moves);
                    s.migrate_in_moved(&moves, std::mem::take(&mut inbox), |v| {
                        adj.get(&v).cloned().unwrap_or_default()
                    });
                    // Gained rows are dirty; report conservatively so the
                    // coordinator keeps the run active until they flow.
                    let reply = NetMsg::StepDone { round, changed: true, dirty: s.has_dirty() };
                    link.send(FrameKind::Data, &reply.encode())?;
                } else {
                    s.consume_rc_messages(std::mem::take(&mut inbox));
                    let reply =
                        NetMsg::StepDone { round, changed: s.last_changed, dirty: s.has_dirty() };
                    link.send(FrameKind::Data, &reply.encode())?;
                }
            }
            NetMsg::GatherClose => {
                let s = state
                    .as_ref()
                    .ok_or_else(|| protocol_err(&link.peer(), "GatherClose before Init"))?;
                let pairs =
                    s.local_closeness().into_iter().map(|(v, c)| (v, c.to_bits())).collect();
                link.send(FrameKind::Data, &NetMsg::CloseReply { pairs }.encode())?;
            }
            NetMsg::GatherRows => {
                let s = state
                    .as_ref()
                    .ok_or_else(|| protocol_err(&link.peer(), "GatherRows before Init"))?;
                let reply = NetMsg::RowsReply { rows: s.local_rows() };
                link.send(FrameKind::Data, &reply.encode())?;
            }
            NetMsg::Absorb { rows } => {
                let s = state
                    .as_mut()
                    .ok_or_else(|| protocol_err(&link.peer(), "Absorb before Init"))?;
                let snap = RankSnapshot {
                    rank: s.rank() as u32,
                    local: rows,
                    cached: Vec::new(),
                    dirty: Vec::new(),
                    pending: Vec::new(),
                };
                s.absorb_snapshot(&snap);
                let rank = s.rank() as u32;
                link.send(FrameKind::Data, &NetMsg::Ready { rank }.encode())?;
            }
            NetMsg::ResendAll => {
                let s = state
                    .as_mut()
                    .ok_or_else(|| protocol_err(&link.peer(), "ResendAll before Init"))?;
                s.mark_all_for_resend();
                s.relax_pending();
                inbox.clear();
                // An aborted migration round resyncs like any other abort;
                // the coordinator will re-issue the Reassign if it still
                // wants the moves.
                migrating = false;
                moved_adj.clear();
                pending_moves.clear();
                let rank = s.rank() as u32;
                link.send(FrameKind::Data, &NetMsg::Ready { rank }.encode())?;
            }
            NetMsg::Bye => return Ok(()),
            NetMsg::Reassign { round, moves, adj } => {
                let s = state
                    .as_mut()
                    .ok_or_else(|| protocol_err(&link.peer(), "Reassign before Init"))?;
                inbox.clear();
                moved_adj.clear();
                for &(a, b, w) in &adj {
                    moved_adj.entry(a).or_default().push((b, w));
                    moved_adj.entry(b).or_default().push((a, w));
                }
                s.apply_reassignment(&moves);
                migrating = true;
                pending_moves = moves;
                let outgoing = s.migrate_out_moved();
                let sent = !outgoing.is_empty();
                for (dest, msg) in outgoing {
                    let wire = NetMsg::Rows { round, peer: dest as u32, msg };
                    link.send(FrameKind::Data, &wire.encode())?;
                }
                link.send(FrameKind::Data, &NetMsg::RowsDone { round, sent }.encode())?;
            }
            NetMsg::Ready { .. }
            | NetMsg::RowsDone { .. }
            | NetMsg::StepDone { .. }
            | NetMsg::CloseReply { .. }
            | NetMsg::RowsReply { .. } => {
                return Err(protocol_err(&link.peer(), "coordinator-bound message at worker"));
            }
            // View replication is reader-process traffic; compute workers
            // never consume it.
            NetMsg::ViewDelta { .. } | NetMsg::ViewDeltaMulti { .. } => {
                return Err(protocol_err(&link.peer(), "replica-bound message at worker"));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------

/// What the supervisor managed to do about a dead worker link.
pub enum Revive<T: Transport> {
    /// The same process reconnected (state intact): the link was healed in
    /// place and unacknowledged frames were replayed.
    Healed,
    /// A fresh process took the rank over: here is its link. The
    /// coordinator re-initializes it and min-merges the last checkpoint.
    Respawned(T),
    /// Nothing can be done (budget exhausted / policy says stop).
    Gone,
}

/// Supervision hook: the coordinator detects failures, the supervisor owns
/// the means of recovery (the listener, the child processes). `attempt`
/// counts revivals of this rank so the supervisor can enforce a budget.
pub trait WorkerSupervisor<T: Transport> {
    fn revive(&mut self, rank: Rank, link: &mut T, attempt: u32) -> Revive<T>;
}

/// A supervisor that never revives anyone — the first unrecoverable
/// failure degrades the run. Fine for deterministic in-process transports
/// where links cannot fail.
pub struct NoSupervisor;

impl<T: Transport> WorkerSupervisor<T> for NoSupervisor {
    fn revive(&mut self, _rank: Rank, _link: &mut T, _attempt: u32) -> Revive<T> {
        Revive::Gone
    }
}

/// Coordinator knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Wire format workers announce rows in.
    pub wire: WireFormat,
    /// Per-message row-bundle cap in bytes (0 = unbounded).
    pub message_cap_bytes: u64,
    /// Safety bound on rounds before degrading with
    /// [`DegradedReason::StepBudgetExhausted`].
    pub max_rounds: u64,
    /// How long to wait for any single protocol reply before suspecting
    /// the worker.
    pub reply_deadline: Duration,
    /// How long a suspected worker gets to answer the heartbeat probe.
    pub probe_deadline: Duration,
    /// Revivals allowed per rank before the run degrades.
    pub max_revivals: u32,
    /// Gather a checkpoint (all rows, per rank) every this many rounds
    /// (0 = never). The latest checkpoint seeds respawned workers.
    pub checkpoint_every: u64,
    /// Background rebalancer policy, evaluated at round barriers. Budgeted
    /// moves ride [`NetMsg::Reassign`] rounds; the wholesale repartition
    /// escalation is de-escalated to repeated budgeted moves over the wire
    /// (full graph redistribution is an Init-scale operation). Default:
    /// disabled.
    pub rebalance: RebalanceConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            wire: WireFormat::Full,
            message_cap_bytes: 0,
            max_rounds: 10_000,
            reply_deadline: Duration::from_secs(10),
            probe_deadline: Duration::from_secs(2),
            max_revivals: 3,
            checkpoint_every: 4,
            rebalance: RebalanceConfig::default(),
        }
    }
}

/// A successful distributed run.
#[derive(Debug, Clone)]
pub struct NetSummary {
    /// Closeness per global vertex — bit-identical to the in-process
    /// executor's fixed point.
    pub closeness: Vec<f64>,
    /// Recombination rounds driven (including aborted ones).
    pub rounds: u64,
    /// Worker revivals (heals + respawns) across the run.
    pub recoveries: u32,
    /// Transient incidents survived without supervisor involvement.
    pub probes_survived: u32,
}

/// How a distributed run ended: converged with exact closeness, or
/// degraded with certified bounds. (`Err` is reserved for coordinator-side
/// bugs — worker failures never surface as `Err`.)
#[derive(Debug)]
pub enum NetOutcome {
    Converged(NetSummary),
    Degraded(Box<DegradedReport>),
}

/// Gathered DV rows for one rank: the in-memory checkpoint payload.
type CheckpointRows = Vec<(VertexId, Vec<Dist>)>;

/// The coordinator: owns the graph, the partition, one link per rank, and
/// the BSP clock; drives rounds until quiescence, supervising failures.
pub struct NetRunner<'g, T: Transport> {
    graph: &'g AdjGraph,
    owner: Vec<PartId>,
    links: Vec<T>,
    config: NetConfig,
    sink: Arc<dyn EventSink>,
    /// Latest gathered rows per rank (the in-memory checkpoint).
    checkpoints: Vec<Option<CheckpointRows>>,
    /// Revival attempts per rank.
    revivals: Vec<u32>,
    /// Ranks the supervisor has given up on.
    dead: Vec<bool>,
    started: Instant,
    recoveries: u32,
    probes_survived: u32,
    round: u64,
    /// Moves from a migration round that aborted mid-flight; re-issued
    /// after the supervision resync (re-execution is idempotent).
    pending_moves: Option<Vec<(VertexId, PartId)>>,
}

impl<'g, T: Transport> NetRunner<'g, T> {
    /// `owner[v]` must index into `links` (one link per rank, already
    /// connected and handshaken).
    pub fn new(graph: &'g AdjGraph, owner: Vec<PartId>, links: Vec<T>, config: NetConfig) -> Self {
        let procs = links.len();
        Self {
            graph,
            owner,
            links,
            config,
            sink: Arc::new(NoopSink),
            checkpoints: vec![None; procs],
            revivals: vec![0; procs],
            dead: vec![false; procs],
            started: Instant::now(),
            recoveries: 0,
            probes_survived: 0,
            round: 0,
            pending_moves: None,
        }
    }

    /// Installs a span sink (connection / reconnect / heartbeat instants).
    pub fn set_sink(&mut self, sink: Arc<dyn EventSink>) {
        self.sink = sink;
    }

    /// The current vertex→rank ownership map (migrations update it).
    pub fn owner(&self) -> &[PartId] {
        &self.owner
    }

    fn wall_us(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e6
    }

    fn span(&self, kind: SpanKind, rank: Rank) {
        if self.sink.enabled() {
            self.sink.record(SpanEvent::instant(
                kind,
                rank as i64,
                self.round,
                0.0,
                self.wall_us(),
            ));
        }
    }

    fn init_msg(&self, rank: Rank) -> NetMsg {
        NetMsg::Init {
            rank: rank as u32,
            procs: self.links.len() as u32,
            wire: self.config.wire,
            cap_bytes: self.config.message_cap_bytes,
            owner: self.owner.clone(),
            edges: self.graph.edges().collect(),
        }
    }

    fn send_msg(&mut self, rank: Rank, msg: &NetMsg) -> Result<(), NetError> {
        self.links[rank].send(FrameKind::Data, &msg.encode())?;
        Ok(())
    }

    /// Receives the next protocol message from `rank` within the reply
    /// deadline.
    fn recv_msg(&mut self, rank: Rank) -> Result<NetMsg, NetError> {
        let deadline = self.config.reply_deadline;
        loop {
            let frame = self.links[rank].recv(Some(deadline))?;
            match frame.kind {
                FrameKind::Data => {
                    let peer = self.links[rank].peer();
                    return NetMsg::decode(&frame.payload).map_err(|e| protocol_err(&peer, e));
                }
                FrameKind::Shutdown => {
                    return Err(NetError::PeerDead { peer: self.links[rank].peer() })
                }
                _ => continue,
            }
        }
    }

    /// Waits for a [`NetMsg::Ready`] from `rank`.
    fn await_ready(&mut self, rank: Rank) -> Result<(), NetError> {
        match self.recv_msg(rank)? {
            NetMsg::Ready { .. } => Ok(()),
            other => Err(protocol_err(
                &self.links[rank].peer(),
                format!("expected Ready, got {other:?}"),
            )),
        }
    }

    /// Initializes every worker (Init → Ready). Must be called once before
    /// [`NetRunner::run`]; failures here climb the same supervision ladder
    /// as mid-run failures — probe, then revive under the revival budget —
    /// except that no global resync runs (later ranks have not been
    /// initialized yet, so there is nothing to resynchronize). Re-sending
    /// `Init` after a heal is safe: no rows have flowed, so resetting the
    /// rank's state is idempotent.
    pub fn init(&mut self, supervisor: &mut dyn WorkerSupervisor<T>) -> Result<(), NetOutcome> {
        for rank in 0..self.links.len() {
            let max_attempts = 2 * (self.config.max_revivals + 2);
            let mut attempts = 0u32;
            loop {
                attempts += 1;
                if attempts > max_attempts {
                    return Err(self.degraded(rank));
                }
                let msg = self.init_msg(rank);
                if self.send_msg(rank, &msg).and_then(|()| self.await_ready(rank)).is_ok() {
                    break;
                }
                self.span(SpanKind::Heartbeat, rank);
                if self.probe(rank).is_ok() {
                    // Link is alive — the Ready was lost in flight (e.g. a
                    // corrupted frame poisoned one stream); just re-issue.
                    self.probes_survived += 1;
                    continue;
                }
                self.revivals[rank] += 1;
                if self.revivals[rank] > self.config.max_revivals {
                    return Err(self.degraded(rank));
                }
                match supervisor.revive(rank, &mut self.links[rank], self.revivals[rank]) {
                    Revive::Healed => {
                        self.span(SpanKind::Reconnect, rank);
                        self.recoveries += 1;
                    }
                    Revive::Respawned(link) => {
                        self.span(SpanKind::Reconnect, rank);
                        self.recoveries += 1;
                        self.links[rank] = link;
                    }
                    Revive::Gone => return Err(self.degraded(rank)),
                }
            }
            self.span(SpanKind::Connection, rank);
        }
        Ok(())
    }

    /// Drives recombination rounds until a full round moves nothing, a
    /// failure degrades the run, or the round budget runs out.
    pub fn run(&mut self, supervisor: &mut dyn WorkerSupervisor<T>) -> NetOutcome {
        loop {
            if self.round >= self.config.max_rounds {
                return self.degrade_with(DegradedReason::StepBudgetExhausted);
            }
            self.round += 1;
            // Rebalance barrier: ship budgeted moves before the round so
            // the migrated rows flow with this round's exchange. A failed
            // migration round climbs the same supervision ladder; the
            // resync clears the workers' in-flight migration state.
            if let Some(moves) = self.pending_moves.take().or_else(|| self.plan_rebalance()) {
                if self.sink.enabled() {
                    self.sink.record(SpanEvent::instant(
                        SpanKind::Migration,
                        DRIVER_LANE,
                        self.round,
                        0.0,
                        self.wall_us(),
                    ));
                }
                if let Err((rank, err)) = self.migration_round(&moves) {
                    // Park the moves: the resync clears the workers'
                    // in-flight migration state, and the next round
                    // re-issues the same Reassign (idempotent — rows
                    // already shipped are simply absent at the old owner,
                    // lost ones self-heal at the new one).
                    self.pending_moves = Some(moves);
                    if let Err(out) = self.supervise(rank, err, supervisor) {
                        return out;
                    }
                    continue;
                }
            }
            match self.one_round() {
                Ok(active) => {
                    if !active {
                        return match self.gather_closeness() {
                            Ok(closeness) => NetOutcome::Converged(NetSummary {
                                closeness,
                                rounds: self.round,
                                recoveries: self.recoveries,
                                probes_survived: self.probes_survived,
                            }),
                            Err((rank, _)) => self.degraded(rank),
                        };
                    }
                    if self.config.checkpoint_every != 0
                        && self.round % self.config.checkpoint_every == 0
                    {
                        // Best-effort: a failed gather is caught next round.
                        let _ = self.gather_checkpoint();
                    }
                }
                Err((rank, err)) => {
                    if let Err(out) = self.supervise(rank, err, supervisor) {
                        return out;
                    }
                }
            }
        }
    }

    /// One BSP round over all live ranks. Returns whether anything moved.
    /// An `Err` names the rank whose link failed.
    fn one_round(&mut self) -> Result<bool, (Rank, NetError)> {
        let procs = self.links.len();
        let round = self.round;
        // Produce phase: ask everyone, then collect row bundles per rank
        // until its RowsDone arrives.
        let mut relay: Vec<Vec<NetMsg>> = (0..procs).map(|_| Vec::new()).collect();
        let mut any_sent = false;
        for rank in 0..procs {
            if self.dead[rank] {
                continue;
            }
            self.send_msg(rank, &NetMsg::Produce { round }).map_err(|e| (rank, e))?;
        }
        for rank in 0..procs {
            if self.dead[rank] {
                continue;
            }
            loop {
                match self.recv_msg(rank).map_err(|e| (rank, e))? {
                    NetMsg::Rows { round: r, peer, msg } if r == round => {
                        let dest = peer as usize;
                        if dest < procs {
                            relay[dest].push(NetMsg::Rows { round, peer: rank as u32, msg });
                        }
                    }
                    NetMsg::RowsDone { round: r, sent } if r == round => {
                        any_sent |= sent;
                        break;
                    }
                    // A stale reply from an aborted round: drop it.
                    NetMsg::Rows { .. } | NetMsg::RowsDone { .. } | NetMsg::StepDone { .. } => {}
                    NetMsg::Ready { .. } => {}
                    other => {
                        return Err((
                            rank,
                            protocol_err(
                                &self.links[rank].peer(),
                                format!("unexpected {other:?} in produce phase"),
                            ),
                        ))
                    }
                }
            }
        }
        // Relay + consume phase.
        let mut any_changed = false;
        let mut any_dirty = false;
        for (rank, bundle) in relay.into_iter().enumerate() {
            if self.dead[rank] {
                continue;
            }
            let expect = bundle.len() as u32;
            for msg in bundle {
                self.send_msg(rank, &msg).map_err(|e| (rank, e))?;
            }
            self.send_msg(rank, &NetMsg::Consume { round, expect }).map_err(|e| (rank, e))?;
        }
        for rank in 0..procs {
            if self.dead[rank] {
                continue;
            }
            loop {
                match self.recv_msg(rank).map_err(|e| (rank, e))? {
                    NetMsg::StepDone { round: r, changed, dirty } if r == round => {
                        any_changed |= changed;
                        any_dirty |= dirty;
                        break;
                    }
                    NetMsg::Rows { .. }
                    | NetMsg::RowsDone { .. }
                    | NetMsg::StepDone { .. }
                    | NetMsg::Ready { .. } => {}
                    other => {
                        return Err((
                            rank,
                            protocol_err(
                                &self.links[rank].peer(),
                                format!("unexpected {other:?} in consume phase"),
                            ),
                        ))
                    }
                }
            }
        }
        Ok(any_sent || any_changed || any_dirty)
    }

    /// Plans a budgeted migration for this round barrier, or `None`. The
    /// planner is the same one the in-process engine uses, run over the
    /// coordinator's owner map; the wholesale `Repartition` escalation is
    /// de-escalated to a PS budgeted pass (a full redistribution is an
    /// Init-scale operation, not a round-barrier one). Skipped while any
    /// rank is dead — moves toward a dead rank would strand rows.
    fn plan_rebalance(&mut self) -> Option<Vec<(VertexId, PartId)>> {
        let cfg = self.config.rebalance;
        if !cfg.due_at(self.round as usize) || self.dead.iter().any(|&d| d) {
            return None;
        }
        let partition = Partition::new(self.owner.clone(), self.links.len()).ok()?;
        let signals = LoadSignals::measure(self.graph, &partition);
        let moves = match Rebalancer::new(cfg).plan(self.graph, &partition, &signals) {
            RebalancePlan::Hold => Vec::new(),
            RebalancePlan::Migrate(moves) => moves,
            RebalancePlan::Repartition => {
                let ps = RebalanceConfig { policy: RebalancePolicy::Ps, ..cfg };
                match Rebalancer::new(ps).plan(self.graph, &partition, &signals) {
                    RebalancePlan::Migrate(moves) => moves,
                    _ => Vec::new(),
                }
            }
        };
        (!moves.is_empty()).then_some(moves)
    }

    /// One budgeted-migration round: broadcast the `Reassign` (the moves
    /// plus the moved vertices' adjacency, deduplicated), relay the
    /// migrated row bundles exactly like a recombination round, and wait
    /// for every rank to confirm installation. The owner map is updated
    /// up front so a re-issue after an abort replays against the already-
    /// updated map, which `apply_reassignment` handles idempotently.
    fn migration_round(&mut self, moves: &[(VertexId, PartId)]) -> Result<(), (Rank, NetError)> {
        let procs = self.links.len();
        let round = self.round;
        // New owners rebuild incident state from the shipped adjacency;
        // dedupe edges shared between two moved vertices.
        let mut seen: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
        let mut adj: Vec<(VertexId, VertexId, Weight)> = Vec::new();
        for &(v, _) in moves {
            for &(t, w) in self.graph.neighbors(v) {
                if seen.insert((v.min(t), v.max(t))) {
                    adj.push((v, t, w));
                }
            }
        }
        for &(v, p) in moves {
            self.owner[v as usize] = p;
        }
        let msg = NetMsg::Reassign { round, moves: moves.to_vec(), adj };
        let mut relay: Vec<Vec<NetMsg>> = (0..procs).map(|_| Vec::new()).collect();
        for rank in 0..procs {
            self.send_msg(rank, &msg).map_err(|e| (rank, e))?;
        }
        for rank in 0..procs {
            loop {
                match self.recv_msg(rank).map_err(|e| (rank, e))? {
                    NetMsg::Rows { round: r, peer, msg } if r == round => {
                        let dest = peer as usize;
                        if dest < procs {
                            relay[dest].push(NetMsg::Rows { round, peer: rank as u32, msg });
                        }
                    }
                    NetMsg::RowsDone { round: r, .. } if r == round => break,
                    NetMsg::Rows { .. }
                    | NetMsg::RowsDone { .. }
                    | NetMsg::StepDone { .. }
                    | NetMsg::Ready { .. } => {}
                    other => {
                        return Err((
                            rank,
                            protocol_err(
                                &self.links[rank].peer(),
                                format!("unexpected {other:?} while migrating out"),
                            ),
                        ))
                    }
                }
            }
        }
        for (rank, bundle) in relay.into_iter().enumerate() {
            let expect = bundle.len() as u32;
            for m in bundle {
                self.send_msg(rank, &m).map_err(|e| (rank, e))?;
            }
            self.send_msg(rank, &NetMsg::Consume { round, expect }).map_err(|e| (rank, e))?;
        }
        for rank in 0..procs {
            loop {
                match self.recv_msg(rank).map_err(|e| (rank, e))? {
                    NetMsg::StepDone { round: r, .. } if r == round => break,
                    NetMsg::Rows { .. }
                    | NetMsg::RowsDone { .. }
                    | NetMsg::StepDone { .. }
                    | NetMsg::Ready { .. } => {}
                    other => {
                        return Err((
                            rank,
                            protocol_err(
                                &self.links[rank].peer(),
                                format!("unexpected {other:?} while migrating in"),
                            ),
                        ))
                    }
                }
            }
        }
        Ok(())
    }

    /// The supervision ladder for a failed rank: probe (transient?) →
    /// revive (heal / respawn) → degrade. On success the whole cluster is
    /// kicked with `ResendAll` — blind re-announcement is always safe and
    /// re-floods whatever the aborted round lost.
    ///
    /// Faults during recovery itself (a chaotic link tearing mid-probe, a
    /// resync hitting a second failed rank) re-enter the ladder rather
    /// than degrading outright: each climb charges the failing rank's
    /// revival budget, so the loop is bounded and a run only degrades when
    /// some rank's budget is genuinely exhausted (or the supervisor says
    /// `Gone`).
    fn supervise(
        &mut self,
        rank: Rank,
        err: NetError,
        supervisor: &mut dyn WorkerSupervisor<T>,
    ) -> Result<(), NetOutcome> {
        drop(err);
        let mut rank = rank;
        // The probe-survived path does not charge the budget, so bound the
        // total ladder length separately to rule out a livelock against an
        // adversarial fault schedule.
        let max_climbs = self.links.len() as u32 * (self.config.max_revivals + 2).max(2);
        for _ in 0..max_climbs {
            // Step 1: probe. A worker that answers within the probe
            // deadline hit a transient fault (delayed frames, a reconnect
            // in progress) — no supervisor needed.
            self.span(SpanKind::Heartbeat, rank);
            if self.probe(rank).is_ok() {
                self.probes_survived += 1;
                match self.resync_all() {
                    Ok(()) => return Ok(()),
                    Err((r, _)) => {
                        rank = r;
                        continue;
                    }
                }
            }
            // Step 2: the supervisor. Heal or respawn, within budget.
            self.revivals[rank] += 1;
            if self.revivals[rank] > self.config.max_revivals {
                return Err(self.degraded(rank));
            }
            match supervisor.revive(rank, &mut self.links[rank], self.revivals[rank]) {
                Revive::Healed => {
                    self.span(SpanKind::Reconnect, rank);
                    self.recoveries += 1;
                    // Same process: state intact. Verify liveness (a
                    // failure climbs the ladder again), then kick.
                    if self.probe(rank).is_err() {
                        continue;
                    }
                }
                Revive::Respawned(link) => {
                    self.span(SpanKind::Reconnect, rank);
                    self.recoveries += 1;
                    self.links[rank] = link;
                    // Fresh process: full re-init, then min-merge the last
                    // checkpoint so work done before the kill is not lost.
                    let msg = self.init_msg(rank);
                    if self.send_msg(rank, &msg).and_then(|()| self.await_ready(rank)).is_err() {
                        continue;
                    }
                    if let Some(rows) = self.checkpoints[rank].clone() {
                        self.span(SpanKind::Restore, rank);
                        if self
                            .send_msg(rank, &NetMsg::Absorb { rows })
                            .and_then(|()| self.await_ready(rank))
                            .is_err()
                        {
                            continue;
                        }
                    }
                }
                Revive::Gone => return Err(self.degraded(rank)),
            }
            match self.resync_all() {
                Ok(()) => return Ok(()),
                Err((r, _)) => rank = r,
            }
        }
        Err(self.degraded(rank))
    }

    /// Heartbeat round-trip with a fresh nonce.
    fn probe(&mut self, rank: Rank) -> Result<(), NetError> {
        let nonce = (self.round << 16) ^ rank as u64 ^ 0x5a5a_5a5a;
        self.links[rank].send(FrameKind::Heartbeat, &nonce.to_le_bytes())?;
        let deadline = self.config.probe_deadline;
        let start = Instant::now();
        loop {
            if start.elapsed() >= deadline {
                return Err(NetError::Timeout { peer: self.links[rank].peer(), waited: deadline });
            }
            let frame = self.links[rank].recv(Some(deadline))?;
            if frame.kind == FrameKind::HeartbeatAck && frame.payload == nonce.to_le_bytes() {
                return Ok(());
            }
            // Anything else (stale round replies, old heartbeat acks) is
            // drained and discarded while we wait for our nonce.
        }
    }

    /// Post-recovery resync: every live rank re-announces everything. The
    /// aborted round may have applied partially — min-merge makes the
    /// overlap harmless and the re-flood restores whatever was lost.
    fn resync_all(&mut self) -> Result<(), (Rank, NetError)> {
        for rank in 0..self.links.len() {
            if self.dead[rank] {
                continue;
            }
            self.send_msg(rank, &NetMsg::ResendAll).map_err(|e| (rank, e))?;
        }
        for rank in 0..self.links.len() {
            if self.dead[rank] {
                continue;
            }
            loop {
                match self.recv_msg(rank).map_err(|e| (rank, e))? {
                    NetMsg::Ready { .. } => break,
                    // Drain whatever the aborted round left in flight.
                    NetMsg::Rows { .. } | NetMsg::RowsDone { .. } | NetMsg::StepDone { .. } => {}
                    other => {
                        return Err((
                            rank,
                            protocol_err(
                                &self.links[rank].peer(),
                                format!("unexpected {other:?} during resync"),
                            ),
                        ))
                    }
                }
            }
        }
        Ok(())
    }

    /// Gathers all rows from every live rank into the in-memory
    /// checkpoint.
    fn gather_checkpoint(&mut self) -> Result<(), (Rank, NetError)> {
        self.span(SpanKind::Checkpoint, 0);
        for rank in 0..self.links.len() {
            if self.dead[rank] {
                continue;
            }
            self.send_msg(rank, &NetMsg::GatherRows).map_err(|e| (rank, e))?;
            loop {
                match self.recv_msg(rank).map_err(|e| (rank, e))? {
                    NetMsg::RowsReply { rows } => {
                        self.checkpoints[rank] = Some(rows);
                        break;
                    }
                    NetMsg::Rows { .. } | NetMsg::RowsDone { .. } | NetMsg::StepDone { .. } => {}
                    other => {
                        return Err((
                            rank,
                            protocol_err(
                                &self.links[rank].peer(),
                                format!("unexpected {other:?} during gather"),
                            ),
                        ))
                    }
                }
            }
        }
        Ok(())
    }

    /// Collects closeness from every rank and assembles the global vector.
    fn gather_closeness(&mut self) -> Result<Vec<f64>, (Rank, NetError)> {
        let n = self.owner.len();
        let mut closeness = vec![0.0f64; n];
        for rank in 0..self.links.len() {
            if self.dead[rank] {
                continue;
            }
            self.send_msg(rank, &NetMsg::GatherClose).map_err(|e| (rank, e))?;
            loop {
                match self.recv_msg(rank).map_err(|e| (rank, e))? {
                    NetMsg::CloseReply { pairs } => {
                        for (v, bits) in pairs {
                            if (v as usize) < n {
                                closeness[v as usize] = f64::from_bits(bits);
                            }
                        }
                        break;
                    }
                    NetMsg::Rows { .. } | NetMsg::RowsDone { .. } | NetMsg::StepDone { .. } => {}
                    other => {
                        return Err((
                            rank,
                            protocol_err(
                                &self.links[rank].peer(),
                                format!("unexpected {other:?} during closeness gather"),
                            ),
                        ))
                    }
                }
            }
        }
        Ok(closeness)
    }

    /// Sends a best-effort goodbye to every live worker.
    pub fn shutdown(&mut self) {
        for rank in 0..self.links.len() {
            if !self.dead[rank] {
                let _ = self.send_msg(rank, &NetMsg::Bye);
                let _ = self.links[rank].send(FrameKind::Shutdown, &[]);
            }
        }
    }

    fn degraded(&mut self, failed_rank: Rank) -> NetOutcome {
        self.dead[failed_rank] = true;
        self.degrade_with(DegradedReason::RetriesExhausted {
            last: ClusterError::RankFailed { rank: failed_rank, superstep: self.round },
        })
    }

    /// Assembles the certified degraded answer: salvage rows from every
    /// surviving worker (checkpoints stand in for dead ones), compute the
    /// estimate, and bound the error against the graph structure.
    fn degrade_with(&mut self, reason: DegradedReason) -> NetOutcome {
        let n = self.owner.len();
        let mut matrix = DistMatrix::new(n);
        for rank in 0..self.links.len() {
            // Live workers give fresher rows than the checkpoint; fall back
            // to the checkpoint, and to nothing (INF rows → conservative
            // bounds) for ranks that are gone without one.
            let salvaged: Option<Vec<(VertexId, Vec<Dist>)>> = if self.dead[rank] {
                self.checkpoints[rank].clone()
            } else {
                match self.salvage_rows(rank) {
                    Some(rows) => Some(rows),
                    None => self.checkpoints[rank].clone(),
                }
            };
            if let Some(rows) = salvaged {
                for (v, row) in rows {
                    if (v as usize) < n {
                        for (t, &d) in row.iter().enumerate().take(n) {
                            if d < matrix.get(v, t as VertexId) {
                                matrix.set(v, t as VertexId, d);
                            }
                        }
                    }
                }
            }
        }
        let estimate: Vec<f64> =
            (0..n as VertexId).map(|v| closeness_from_row(matrix.row(v))).collect();
        let bound = degraded_closeness_bounds(self.graph, &matrix);
        let faults = FaultCounters {
            retransmits: self.recoveries as u64 + self.probes_survived as u64,
            ..FaultCounters::default()
        };
        NetOutcome::Degraded(Box::new(DegradedReport {
            reason,
            rc_steps: self.round as usize,
            faults,
            estimate,
            bound,
        }))
    }

    /// Best-effort row gather from one possibly-wounded worker.
    fn salvage_rows(&mut self, rank: Rank) -> Option<Vec<(VertexId, Vec<Dist>)>> {
        self.send_msg(rank, &NetMsg::GatherRows).ok()?;
        let deadline = Instant::now() + self.config.probe_deadline;
        loop {
            if Instant::now() >= deadline {
                return None;
            }
            match self.recv_msg(rank) {
                Ok(NetMsg::RowsReply { rows }) => return Some(rows),
                Ok(_) => continue,
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: NetMsg) {
        let bytes = msg.encode();
        let back = NetMsg::decode(&bytes).expect("decodes");
        assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    }

    #[test]
    fn netmsg_roundtrips_every_variant() {
        roundtrip(NetMsg::Init {
            rank: 2,
            procs: 4,
            wire: WireFormat::Delta,
            cap_bytes: 4096,
            owner: vec![0, 1, 2, 3, 0],
            edges: vec![(0, 1, 3), (1, 2, 1)],
        });
        roundtrip(NetMsg::Ready { rank: 1 });
        roundtrip(NetMsg::Produce { round: 9 });
        roundtrip(NetMsg::Rows {
            round: 9,
            peer: 3,
            msg: RowMsg {
                rows: vec![
                    (0, RowPayload::Full(vec![0, 5, u32::MAX])),
                    (1, RowPayload::Delta(vec![(2, 7), (4, 1)])),
                ],
            },
        });
        roundtrip(NetMsg::RowsDone { round: 9, sent: true });
        roundtrip(NetMsg::Consume { round: 9, expect: 2 });
        roundtrip(NetMsg::StepDone { round: 9, changed: false, dirty: true });
        roundtrip(NetMsg::GatherClose);
        roundtrip(NetMsg::CloseReply { pairs: vec![(0, 0.25f64.to_bits()), (7, 0u64)] });
        roundtrip(NetMsg::GatherRows);
        roundtrip(NetMsg::RowsReply { rows: vec![(3, vec![1, 2, 3])] });
        roundtrip(NetMsg::Absorb { rows: vec![(3, vec![1, 2, 3]), (4, vec![])] });
        roundtrip(NetMsg::ResendAll);
        roundtrip(NetMsg::Bye);
        roundtrip(NetMsg::Reassign { round: 4, moves: vec![(0, 1), (5, 0)], adj: vec![(0, 5, 2)] });
        roundtrip(NetMsg::ViewDelta {
            epoch: 12,
            rc_steps: 7,
            changes_applied: 3,
            n: 100,
            converged: true,
            full: false,
            entries: vec![(4, 0.25f64.to_bits()), (90, 0.75f64.to_bits())],
            bounds: vec![(4, 0.01f64.to_bits())],
        });
        roundtrip(NetMsg::ViewDeltaMulti {
            epoch: 13,
            rc_steps: 8,
            changes_applied: 3,
            n: 100,
            converged: false,
            full: true,
            entries: vec![(4, 0.25f64.to_bits())],
            bounds: Vec::new(),
            extras: vec![(1, vec![(4, 2.0f64.to_bits()), (9, 0u64)])],
        });
    }

    #[test]
    fn view_delta_multi_encoding_matches_declared_size() {
        let msg = NetMsg::ViewDeltaMulti {
            epoch: 3,
            rc_steps: 2,
            changes_applied: 1,
            n: 64,
            converged: true,
            full: false,
            entries: vec![(0, 1.0f64.to_bits()), (1, 0.5f64.to_bits())],
            bounds: vec![(1, 0.125f64.to_bits())],
            extras: vec![(1, vec![(0, 3.5f64.to_bits()), (2, 0u64), (5, 1.0f64.to_bits())])],
        };
        let bytes = msg.encode();
        // Base tag-16 layout plus: metric count byte + per metric a kind
        // byte and a counted (u32, u64-bits) list. Must stay in lockstep
        // with `ViewDelta::encoded_bytes` in publish.rs.
        assert_eq!(bytes.len(), (1 + 8 * 3 + 4 + 1 + 4 + 12 * 2 + 4 + 12) + 1 + (1 + 4 + 12 * 3));
        for cut in 0..bytes.len() {
            assert!(NetMsg::decode(&bytes[..cut]).is_err(), "truncation at {cut} decoded");
        }
    }

    #[test]
    fn view_delta_encoding_matches_declared_size_and_rejects_truncation() {
        let msg = NetMsg::ViewDelta {
            epoch: 3,
            rc_steps: 2,
            changes_applied: 1,
            n: 64,
            converged: false,
            full: true,
            entries: vec![(0, 1.0f64.to_bits()), (1, 0.5f64.to_bits()), (63, 0u64)],
            bounds: vec![(1, 0.125f64.to_bits())],
        };
        let bytes = msg.encode();
        // The publish layer's `ViewDelta::encoded_bytes` must stay in
        // lockstep with this codec: tag + 3×u64 + u32 + flags + two
        // counted (u32, u64-bits) lists.
        assert_eq!(bytes.len(), 1 + 8 * 3 + 4 + 1 + 4 + 12 * 3 + 4 + 12);
        for cut in 0..bytes.len() {
            assert!(NetMsg::decode(&bytes[..cut]).is_err(), "truncation at {cut} decoded");
        }
        // An inflated element count is a typed error, not an allocation.
        let mut bomb = bytes.clone();
        bomb[30..34].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(NetMsg::decode(&bomb).is_err());
    }

    #[test]
    fn view_delta_rides_crc_framed_transport() {
        use aaa_runtime::net::{decode_frame, encode_frame, Frame, FrameError, FrameKind};
        let msg = NetMsg::ViewDelta {
            epoch: 9,
            rc_steps: 4,
            changes_applied: 2,
            n: 32,
            converged: false,
            full: false,
            entries: vec![(3, 0.75f64.to_bits()), (17, 0.2f64.to_bits())],
            bounds: Vec::new(),
        };
        let frame = Frame { kind: FrameKind::Data, seq: 7, payload: msg.encode() };
        let wire = encode_frame(&frame);
        let (back, used) = decode_frame(&wire).expect("frame decodes");
        assert_eq!(used, wire.len());
        assert_eq!(NetMsg::decode(&back.payload).unwrap(), msg);
        // Any single corrupted byte is caught by the frame CRC before the
        // message codec ever sees the payload.
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            match decode_frame(&bad) {
                Ok((f, _)) => panic!("corruption at byte {i} decoded as {:?}", f.kind),
                Err(FrameError::BadCrc { .. }) => {}
                Err(_) => {} // header-field corruption surfaces as its own typed error
            }
        }
    }

    #[test]
    fn netmsg_decode_rejects_malformed_input() {
        assert!(matches!(NetMsg::decode(&[]), Err(WireError::Truncated { .. })));
        assert!(matches!(NetMsg::decode(&[200]), Err(WireError::UnknownTag(200))));
        // Trailing garbage after a complete message.
        let mut bytes = NetMsg::Bye.encode();
        bytes.push(0);
        assert!(matches!(NetMsg::decode(&bytes), Err(WireError::TrailingBytes { extra: 1 })));
        // Truncations of a structured message are always typed errors.
        let full = NetMsg::Rows {
            round: 3,
            peer: 1,
            msg: RowMsg { rows: vec![(0, RowPayload::Full(vec![1, 2, 3]))] },
        }
        .encode();
        for cut in 0..full.len() {
            match NetMsg::decode(&full[..cut]) {
                Err(_) => {}
                Ok(m) => panic!("truncation at {cut} decoded as {m:?}"),
            }
        }
        // A corrupted element count cannot demand a giant allocation.
        let mut bomb = vec![11u8]; // RowsReply
        bomb.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(NetMsg::decode(&bomb), Err(WireError::Truncated { .. })));
    }
}
