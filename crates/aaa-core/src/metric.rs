//! Pluggable centrality metrics over the anytime DV core.
//!
//! The paper's anytime-anywhere skeleton (DD → IA → RC over min-merge
//! distance rows) is metric-agnostic: any statistic derivable from the
//! per-source distance rows can ride the same incremental machinery. This
//! module is the seam that makes that true in code. A [`Metric`] consumes
//! the rows the engine already maintains and produces a per-vertex score
//! column; the engine publishes one epoch carrying every active metric's
//! column, and `aaa-serve` exposes them behind a [`MetricKind`] selector.
//!
//! Two implementations ship today:
//!
//! * [`ClosenessMetric`] — the original row-local closeness path. It is
//!   the *primary* metric: always present, scored worker-side straight
//!   from each changed row, and carrying the certified `c ∈ [c_lo, c_hi]`
//!   interval bounds.
//! * [`IncBetweenness`] — incremental betweenness per Kourtellis et al.
//!   (*Scalable Online Betweenness Centrality in Evolving Graphs*): a
//!   Brandes-style dependency vector is cached per source and recomputed
//!   only for sources whose rows changed in the epoch; the published
//!   column is re-summed fresh in source order so that at convergence it
//!   is **bit-identical** to the deterministic exact oracle
//!   (`aaa_store::algo::betweenness_exact`).

use aaa_graph::centrality::dependency_from_row;
use aaa_graph::closeness::closeness_from_row;
use aaa_graph::{AdjGraph, Dist, VertexId};
use aaa_store::algo;
use std::fmt;

/// Identifies one maintained centrality metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricKind {
    /// Harmonic-free classic closeness from DV rows (the primary metric;
    /// every view carries it).
    Closeness,
    /// Incremental Brandes betweenness maintained from the same rows.
    Betweenness,
}

impl MetricKind {
    /// Every kind, in wire-id order.
    pub const ALL: [MetricKind; 2] = [MetricKind::Closeness, MetricKind::Betweenness];

    /// Stable identifier used on the checkpoint and view-delta wire.
    pub const fn wire_id(self) -> u8 {
        match self {
            MetricKind::Closeness => 0,
            MetricKind::Betweenness => 1,
        }
    }

    /// Inverse of [`MetricKind::wire_id`].
    pub const fn from_wire_id(id: u8) -> Option<MetricKind> {
        match id {
            0 => Some(MetricKind::Closeness),
            1 => Some(MetricKind::Betweenness),
            _ => None,
        }
    }

    /// Human-readable name (also the CLI spelling for `--metrics`).
    pub const fn name(self) -> &'static str {
        match self {
            MetricKind::Closeness => "closeness",
            MetricKind::Betweenness => "betweenness",
        }
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for MetricKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "closeness" => Ok(MetricKind::Closeness),
            "betweenness" => Ok(MetricKind::Betweenness),
            other => Err(format!("unknown metric '{other}' (closeness|betweenness)")),
        }
    }
}

/// Compact copyable set of [`MetricKind`]s (bit per wire id). Lets
/// `EpochInfo` and view metadata stay `Copy` while reporting which
/// columns a view carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct MetricMask(u8);

impl MetricMask {
    /// The empty set.
    pub const EMPTY: MetricMask = MetricMask(0);

    /// Set containing exactly `kind`.
    pub const fn only(kind: MetricKind) -> MetricMask {
        MetricMask(1 << kind.wire_id())
    }

    /// This set plus `kind`.
    pub const fn with(self, kind: MetricKind) -> MetricMask {
        MetricMask(self.0 | (1 << kind.wire_id()))
    }

    /// Membership test.
    pub const fn contains(self, kind: MetricKind) -> bool {
        self.0 & (1 << kind.wire_id()) != 0
    }

    /// Number of kinds present.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no kind is present.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Kinds present, in wire-id order.
    pub fn kinds(self) -> impl Iterator<Item = MetricKind> {
        MetricKind::ALL.into_iter().filter(move |k| self.contains(*k))
    }
}

impl fmt::Display for MetricMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for k in self.kinds() {
            if !first {
                f.write_str("+")?;
            }
            first = false;
            f.write_str(k.name())?;
        }
        if first {
            f.write_str("none")?;
        }
        Ok(())
    }
}

/// Work counters one metric accumulates across publish epochs; surfaced
/// through `RunReport.metrics` so the perf gate can pin the incremental
/// win (sources recomputed ≪ n × epochs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricTally {
    /// Publish epochs in which the metric's `update` hook ran.
    pub epochs: u64,
    /// Per-source dependency recomputations performed (the unit of
    /// incremental work; a full rescan costs `n` of these per epoch).
    pub sources_recomputed: u64,
    /// Epochs that had to rebuild from scratch (post-drain invalidation).
    pub full_recomputes: u64,
    /// Score entries whose bits changed across all epochs.
    pub changed_entries: u64,
}

/// A maintained per-vertex centrality column over the engine's DV rows.
///
/// Lifecycle per publish epoch: the engine drains the epoch-dirty rows at
/// a barrier (all rows when [`Metric::wants_all_rows`] demands it), calls
/// [`Metric::update`], and publishes the returned changed entries (or the
/// [`Metric::full_column`] on a full epoch). [`Metric::invalidate`] fires
/// whenever drained graph changes are applied — structural change can
/// reshape shortest-path DAGs without moving any distance, so row-dirty
/// tracking alone is not a sound change signal for path-counting metrics.
pub trait Metric: Send {
    /// Which column this metric maintains.
    fn kind(&self) -> MetricKind;

    /// Row-local score, if the metric is a pure function of one vertex's
    /// row (closeness is; betweenness is not). The engine scores such
    /// metrics worker-side with zero extra state.
    fn score_from_row(&self, row: &[Dist]) -> Option<f64>;

    /// Graph structure changed (vertices/edges added, removed or
    /// reweighted): cached state derived from the old edge set is void.
    fn invalidate(&mut self);

    /// True when the next [`Metric::update`] needs every row, not just
    /// the epoch-dirty ones (e.g. rebuilding after [`Metric::invalidate`]).
    fn wants_all_rows(&self) -> bool;

    /// Consume this epoch's changed `(vertex, row)` pairs (sorted by id;
    /// all `n` rows when [`Metric::wants_all_rows`] was true) against the
    /// current adjacency, and return the score entries whose bits changed,
    /// sorted by vertex id.
    fn update(
        &mut self,
        n: usize,
        rows: &[(VertexId, Vec<Dist>)],
        adj: &AdjGraph,
    ) -> Vec<(VertexId, f64)>;

    /// The full maintained column (length `n`), if the metric keeps one;
    /// used by full publish epochs. Row-local metrics return `None` (the
    /// engine gathers their column from the rows directly).
    fn full_column(&self, n: usize) -> Option<Vec<f64>>;

    /// Exact from-scratch oracle for the current graph, for tests and
    /// quality tracking. Bit-comparable with the maintained column at
    /// convergence.
    fn recompute_exact(&self, adj: &AdjGraph) -> Vec<f64>;

    /// Human description of the error-bound form served for this metric
    /// (documentation + `ServeHandle` metadata).
    fn bounds_form(&self) -> &'static str;

    /// Work counters accumulated so far.
    fn tally(&self) -> MetricTally;
}

/// The primary metric: closeness scored row-locally, exactly as the
/// pre-refactor engine did — same function, same call sites, same bits.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClosenessMetric;

impl ClosenessMetric {
    /// Infallible closeness score. The trait's [`Metric::score_from_row`]
    /// returns `Option` because not every metric can score a row in
    /// isolation; closeness always can, and the engine's publish path
    /// relies on that.
    #[inline]
    pub fn score(&self, row: &[Dist]) -> f64 {
        closeness_from_row(row)
    }
}

impl Metric for ClosenessMetric {
    fn kind(&self) -> MetricKind {
        MetricKind::Closeness
    }

    fn score_from_row(&self, row: &[Dist]) -> Option<f64> {
        Some(closeness_from_row(row))
    }

    fn invalidate(&mut self) {}

    fn wants_all_rows(&self) -> bool {
        false
    }

    fn update(
        &mut self,
        _n: usize,
        rows: &[(VertexId, Vec<Dist>)],
        _adj: &AdjGraph,
    ) -> Vec<(VertexId, f64)> {
        rows.iter().map(|(v, row)| (*v, closeness_from_row(row))).collect()
    }

    fn full_column(&self, _n: usize) -> Option<Vec<f64>> {
        None
    }

    fn recompute_exact(&self, adj: &AdjGraph) -> Vec<f64> {
        algo::closeness_exact(adj)
    }

    fn bounds_form(&self) -> &'static str {
        "certified interval c ∈ [c_lo, c_hi] per vertex (Certified mode)"
    }

    fn tally(&self) -> MetricTally {
        MetricTally::default()
    }
}

/// Incremental betweenness: per-source Brandes dependency vectors cached
/// and recomputed only for sources whose rows changed.
///
/// Bit-identity contract: the published column is always a *fresh* sum of
/// the cached per-source vectors in increasing source order, halved —
/// never a float subtract-then-add patch — which is term-for-term the
/// computation `aaa_graph::centrality::betweenness_from_rows` performs.
/// At convergence (all rows exact, no pending invalidation) the column
/// therefore equals `algo::betweenness_exact` **exactly**, not just
/// approximately.
#[derive(Debug, Clone, Default)]
pub struct IncBetweenness {
    /// Per-source dependency vector (unhalved δ). A vector may be shorter
    /// than the current `n` when the graph grew since it was computed;
    /// missing entries are implicitly `+0.0`, which is bit-safe to skip in
    /// the sum. (In practice growth invalidates everything anyway.)
    deps: Vec<Vec<f64>>,
    /// The currently-published column (halved), for bit-diffing deltas.
    totals: Vec<f64>,
    /// Set on structural change; cleared after the next full rebuild.
    dirty_all: bool,
    tally: MetricTally,
    fresh: bool,
}

impl IncBetweenness {
    /// A metric with no cached state; the first update rebuilds fully.
    pub fn new() -> Self {
        Self {
            deps: Vec::new(),
            totals: Vec::new(),
            dirty_all: false,
            tally: MetricTally::default(),
            fresh: true,
        }
    }
}

impl Metric for IncBetweenness {
    fn kind(&self) -> MetricKind {
        MetricKind::Betweenness
    }

    fn score_from_row(&self, _row: &[Dist]) -> Option<f64> {
        None // path counting needs every source's row, not one vertex's
    }

    fn invalidate(&mut self) {
        self.dirty_all = true;
    }

    fn wants_all_rows(&self) -> bool {
        self.dirty_all || self.fresh
    }

    fn update(
        &mut self,
        n: usize,
        rows: &[(VertexId, Vec<Dist>)],
        adj: &AdjGraph,
    ) -> Vec<(VertexId, f64)> {
        self.tally.epochs += 1;
        if self.dirty_all || self.fresh {
            self.tally.full_recomputes += 1;
            self.deps.clear();
            self.deps.resize(n, Vec::new());
        } else if self.deps.len() < n {
            self.deps.resize(n, Vec::new());
        }
        for (v, row) in rows {
            self.deps[*v as usize] =
                dependency_from_row(*v, row, |u| adj.neighbors(u).iter().copied());
            self.tally.sources_recomputed += 1;
        }
        self.dirty_all = false;
        self.fresh = false;

        // Fresh in-source-order sum then halve: term-for-term the oracle's
        // summation, so converged state is bit-equal to it.
        let mut totals = vec![0.0f64; n];
        for dep in &self.deps {
            for (a, d) in totals.iter_mut().zip(dep) {
                *a += d;
            }
        }
        totals.iter_mut().for_each(|x| *x /= 2.0);

        let mut out = Vec::new();
        for (v, &new) in totals.iter().enumerate() {
            let old = self.totals.get(v).map(|o| o.to_bits());
            if old != Some(new.to_bits()) {
                out.push((v as VertexId, new));
            }
        }
        self.tally.changed_entries += out.len() as u64;
        self.totals = totals;
        out
    }

    fn full_column(&self, n: usize) -> Option<Vec<f64>> {
        let mut col = self.totals.clone();
        col.resize(n, 0.0);
        Some(col)
    }

    fn recompute_exact(&self, adj: &AdjGraph) -> Vec<f64> {
        algo::betweenness_exact(adj)
    }

    fn bounds_form(&self) -> &'static str {
        "no per-vertex interval; exact (bit-equal to Brandes) at convergence"
    }

    fn tally(&self) -> MetricTally {
        self.tally
    }
}

/// Constructs the maintained-state implementation of one kind.
pub fn new_metric(kind: MetricKind) -> Box<dyn Metric> {
    match kind {
        MetricKind::Closeness => Box::new(ClosenessMetric),
        MetricKind::Betweenness => Box::new(IncBetweenness::new()),
    }
}

/// The engine's active metric set: the always-on closeness primary plus
/// any configured extras (each a stateful [`Metric`]).
pub struct MetricSet {
    primary: ClosenessMetric,
    extras: Vec<Box<dyn Metric>>,
}

impl fmt::Debug for MetricSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricSet").field("mask", &self.mask()).finish()
    }
}

impl MetricSet {
    /// Builds the set for the configured kinds. Closeness is implicit
    /// (always the primary); duplicates are ignored; extras are ordered by
    /// wire id so every layer agrees on column order.
    pub fn from_kinds(kinds: &[MetricKind]) -> Self {
        let mut wanted: Vec<MetricKind> =
            kinds.iter().copied().filter(|k| *k != MetricKind::Closeness).collect();
        wanted.sort_unstable_by_key(|k| k.wire_id());
        wanted.dedup();
        Self { primary: ClosenessMetric, extras: wanted.into_iter().map(new_metric).collect() }
    }

    /// The always-present row-local primary (closeness).
    pub fn primary(&self) -> &ClosenessMetric {
        &self.primary
    }

    /// The configured extra metrics, in wire-id order.
    pub fn extras(&self) -> &[Box<dyn Metric>] {
        &self.extras
    }

    /// Mutable extras, for the engine's update hook.
    pub fn extras_mut(&mut self) -> &mut [Box<dyn Metric>] {
        &mut self.extras
    }

    /// True when only the closeness primary is active (the legacy
    /// single-metric fast path — bit-identical to the pre-refactor engine).
    pub fn closeness_only(&self) -> bool {
        self.extras.is_empty()
    }

    /// All carried kinds (primary + extras) as a mask.
    pub fn mask(&self) -> MetricMask {
        let mut m = MetricMask::only(MetricKind::Closeness);
        for e in &self.extras {
            m = m.with(e.kind());
        }
        m
    }

    /// Extra kinds in wire-id order (what the checkpoint records).
    pub fn extra_kinds(&self) -> Vec<MetricKind> {
        self.extras.iter().map(|e| e.kind()).collect()
    }

    /// Signals structural change to every stateful metric.
    pub fn invalidate_all(&mut self) {
        for e in &mut self.extras {
            e.invalidate();
        }
    }

    /// True when any extra needs the full row set next update.
    pub fn wants_all_rows(&self) -> bool {
        self.extras.iter().any(|e| e.wants_all_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_graph::centrality::betweenness_exact_det;
    use aaa_graph::Csr;

    fn sample() -> AdjGraph {
        let mut g = AdjGraph::with_vertices(6);
        for (u, v, w) in [(0, 1, 1), (1, 2, 1), (0, 2, 5), (2, 3, 2), (3, 4, 1), (4, 5, 2)] {
            g.add_edge(u, v, w).unwrap();
        }
        g
    }

    fn all_rows(g: &AdjGraph) -> Vec<(VertexId, Vec<Dist>)> {
        (0..g.num_vertices() as VertexId).map(|s| (s, algo::dijkstra(g, s))).collect()
    }

    #[test]
    fn kind_wire_ids_round_trip() {
        for k in MetricKind::ALL {
            assert_eq!(MetricKind::from_wire_id(k.wire_id()), Some(k));
            assert_eq!(k.name().parse::<MetricKind>().unwrap(), k);
        }
        assert_eq!(MetricKind::from_wire_id(77), None);
        assert!("degree".parse::<MetricKind>().is_err());
    }

    #[test]
    fn mask_semantics() {
        let m = MetricMask::only(MetricKind::Closeness).with(MetricKind::Betweenness);
        assert!(m.contains(MetricKind::Closeness));
        assert!(m.contains(MetricKind::Betweenness));
        assert_eq!(m.len(), 2);
        assert_eq!(m.kinds().collect::<Vec<_>>(), MetricKind::ALL.to_vec());
        assert_eq!(m.to_string(), "closeness+betweenness");
        assert!(MetricMask::EMPTY.is_empty());
        assert_eq!(MetricMask::EMPTY.to_string(), "none");
    }

    #[test]
    fn closeness_metric_is_the_legacy_function() {
        let g = sample();
        let m = ClosenessMetric;
        for (_, row) in all_rows(&g) {
            assert_eq!(m.score_from_row(&row), Some(closeness_from_row(&row)));
        }
        assert_eq!(m.recompute_exact(&g), algo::closeness_exact(&g));
    }

    #[test]
    fn inc_betweenness_full_rebuild_matches_oracle_bitwise() {
        let g = sample();
        let mut m = IncBetweenness::new();
        assert!(m.wants_all_rows());
        let changed = m.update(6, &all_rows(&g), &g);
        let oracle = betweenness_exact_det(&Csr::from_adj(&g));
        assert_eq!(m.full_column(6), Some(oracle.clone()));
        assert_eq!(m.recompute_exact(&g), oracle);
        // First build reports every nonzero entry as changed.
        for (v, s) in changed {
            assert_eq!(s, oracle[v as usize]);
        }
        // A second update with no changed rows is a no-op delta.
        assert!(!m.wants_all_rows());
        assert!(m.update(6, &[], &g).is_empty());
        assert_eq!(m.tally().epochs, 2);
        assert_eq!(m.tally().full_recomputes, 1);
        assert_eq!(m.tally().sources_recomputed, 6);
    }

    #[test]
    fn inc_betweenness_incremental_source_update_tracks_oracle() {
        // Start from a stale row set (edge 4-5 missing), then converge.
        let mut g0 = sample();
        g0.remove_edge(4, 5).unwrap();
        let mut m = IncBetweenness::new();
        m.update(6, &all_rows(&g0), &g0);

        let g1 = sample();
        m.invalidate(); // structural change
        assert!(m.wants_all_rows());
        m.update(6, &all_rows(&g1), &g1);
        let oracle = betweenness_exact_det(&Csr::from_adj(&g1));
        assert_eq!(m.full_column(6), Some(oracle));
        assert_eq!(m.tally().full_recomputes, 2);
    }

    #[test]
    fn inc_betweenness_partial_row_update_recomputes_only_those_sources() {
        let g = sample();
        let mut m = IncBetweenness::new();
        m.update(6, &all_rows(&g), &g);
        let before = m.tally().sources_recomputed;
        // Re-hand two (already exact) rows: only those sources recompute,
        // and the column must not move.
        let rows: Vec<_> = all_rows(&g).into_iter().filter(|(v, _)| *v == 1 || *v == 3).collect();
        let delta = m.update(6, &rows, &g);
        assert!(delta.is_empty());
        assert_eq!(m.tally().sources_recomputed, before + 2);
    }

    #[test]
    fn metric_set_dedupes_and_masks() {
        let s = MetricSet::from_kinds(&[
            MetricKind::Betweenness,
            MetricKind::Closeness,
            MetricKind::Betweenness,
        ]);
        assert_eq!(s.extras().len(), 1);
        assert!(!s.closeness_only());
        assert!(s.wants_all_rows()); // fresh betweenness wants a rebuild
        assert_eq!(s.extra_kinds(), vec![MetricKind::Betweenness]);
        assert!(s.mask().contains(MetricKind::Closeness));
        let empty = MetricSet::from_kinds(&[]);
        assert!(empty.closeness_only());
        assert!(!empty.wants_all_rows());
        assert_eq!(empty.mask(), MetricMask::only(MetricKind::Closeness));
    }
}
