//! # aaa-core — the anytime anywhere closeness-centrality engine
//!
//! Reproduction of the primary contribution of *"Efficient Anytime Anywhere
//! Algorithms for Vertex Additions in Large and Dynamic Graphs"*
//! (Santos, Korah, Murugappan, Subramanian — IPDPSW 2017):
//!
//! * the three-phase **anytime anywhere** methodology — domain
//!   decomposition ([`EngineConfig::dd`]), initial approximation
//!   (per-rank multithreaded Dijkstra), and the recombination loop
//!   ([`AnytimeEngine::rc_step`]) built on distance-vector-routing-style
//!   boundary exchange;
//! * the **anywhere vertex-addition strategy** (Fig. 3) with the
//!   **RoundRobin-PS** and **CutEdge-PS** processor-assignment strategies
//!   and the **Repartition-S** alternative ([`AssignStrategy`]);
//! * the **Baseline Restart** comparator ([`baseline`]);
//! * the companion dynamic-edge strategies (additions [9], deletions [10],
//!   weight changes [7]) as engine methods;
//! * anytime-quality instrumentation ([`quality`]);
//! * **anytime persistence** — [`AnytimeEngine::checkpoint`] /
//!   [`AnytimeEngine::restore`] snapshots at superstep barriers, policies
//!   ([`CheckpointPolicy`]), and rank-failure recovery
//!   ([`AnytimeEngine::recover_rank`]) built on the `aaa-checkpoint`
//!   snapshot format;
//! * **chaos-tolerant communication** — seeded message-fault injection
//!   ([`ChaosPlan`]), the supervised retry/backoff/fallback convergence
//!   loop ([`AnytimeEngine::run_supervised`], [`RetryPolicy`]), and
//!   degraded-mode answers with certified error bounds
//!   ([`DegradedReport`]).
//!
//! ```
//! use aaa_core::{AnytimeEngine, EngineConfig, AssignStrategy};
//! use aaa_core::changes::preferential_batch;
//! use aaa_graph::generators::{barabasi_albert, WeightModel};
//!
//! let g = barabasi_albert(120, 2, WeightModel::Unit, 7).unwrap();
//! let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(4)).unwrap();
//! engine.run_to_convergence();
//!
//! // A change arrives mid-analysis: ten new actors join.
//! let batch = preferential_batch(engine.graph(), 10, 2, 1);
//! engine.apply_vertex_additions(&batch, AssignStrategy::RoundRobin).unwrap();
//! engine.run_to_convergence();
//! assert_eq!(engine.closeness().len(), 130);
//! ```

pub mod baseline;
pub mod changes;
pub mod dv;
pub mod engine;
pub mod error;
pub mod ingest;
pub mod metric;
pub mod net;
pub mod policy;
pub mod publish;
pub mod quality;
pub mod rank;
pub mod strategies;

pub use aaa_checkpoint::{CheckpointError, CheckpointPolicy, Snapshot};
pub use aaa_observe::{EventSink, MemorySink, NoopSink, SpanEvent, SpanKind};
pub use aaa_partition::{RebalanceConfig, RebalancePlan, RebalancePolicy};
pub use aaa_runtime::{ChannelFault, ChaosPlan, ClusterError, FaultCounters, FaultPlan};
pub use changes::{DynamicChange, NewVertex, VertexBatch};
pub use engine::{AnytimeEngine, ConvergenceSummary, DdPartitioner, EngineConfig, SupervisedRun};
pub use error::CoreError;
pub use ingest::{ChangeLog, IngestStats, PendingChange};
pub use metric::{
    ClosenessMetric, IncBetweenness, Metric, MetricKind, MetricMask, MetricSet, MetricTally,
};
pub use net::{
    run_worker, NetConfig, NetMsg, NetOutcome, NetRunner, NetSummary, NoSupervisor, Revive,
    WireError, WorkerSupervisor,
};
pub use policy::{RetryPolicy, StrategyPolicy};
pub use publish::{
    BoundsMode, PublishStats, PublishedView, Publisher, ViewCell, ViewDelta, TOPK_SERVE_CAP,
};
pub use quality::{
    degraded_closeness_bounds, CertifiedBoundsCache, DegradedReason, DegradedReport, QualitySample,
    QualityTracker,
};
pub use rank::WireFormat;
pub use strategies::AssignStrategy;
