//! The anytime anywhere engine: domain decomposition, initial
//! approximation, the recombination loop, and the dynamic-update
//! orchestration (§III–IV of the paper) — structured as an
//! **ingest → compute → publish** pipeline:
//!
//! * **ingest** — dynamic changes enter through [`AnytimeEngine::submit`]
//!   into a coalescing [`ChangeLog`] and are validated immediately against
//!   the projected graph;
//! * **compute** — one unified driver loop ([`AnytimeEngine::rc_step`] and
//!   the `run_*` wrappers over the internal `drive`) drains the log at
//!   RC-step barriers and advances the BSP recombination;
//! * **publish** — after every state change the engine swaps an immutable,
//!   epoch-stamped [`PublishedView`] into a shared [`ViewCell`], so any
//!   number of concurrent readers (see the `aaa-serve` crate) query
//!   without touching the engine.

use crate::changes::{DynamicChange, VertexBatch};
use crate::error::CoreError;
use crate::ingest::{ChangeLog, IngestStats};
use crate::metric::{MetricKind, MetricMask, MetricSet, MetricTally};
use crate::policy::{RetryPolicy, StrategyPolicy};
use crate::publish::{BoundsMode, PublishStats, PublishedView, Publisher, ViewCell, ViewDelta};
use crate::quality::{degraded_closeness_bounds, DegradedReason, DegradedReport};
use crate::rank::{GrowMsg, RankState, RowMsg, WireFormat};
use crate::strategies::{cut_edge_assign, round_robin_assign, AssignStrategy};
use aaa_checkpoint::{
    CheckpointError, CheckpointPolicy, EngineMeta, GraphSnapshot, PartitionSnapshot, RankSnapshot,
    Snapshot,
};
use aaa_graph::apsp::DistMatrix;
use aaa_graph::{AdjGraph, Dist, PartId, VertexId, Weight};
use aaa_observe::{EventSink, NoopSink, SpanEvent, SpanKind, DRIVER_LANE};
use aaa_partition::simple::{
    BlockPartitioner, HashPartitioner, RandomPartitioner, RoundRobinPartitioner,
};
use aaa_partition::{
    LoadSignals, MultilevelPartitioner, Partition, Partitioner, RebalanceConfig, RebalancePlan,
    Rebalancer,
};
use aaa_runtime::{ChaosPlan, Cluster, ClusterConfig, ClusterError, FaultPlan, RunStats};
use std::io::{Read, Write};
use std::sync::Arc;

/// Which partitioner the domain-decomposition phase uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdPartitioner {
    /// Multilevel k-way (the METIS-substitute; the paper's choice).
    Multilevel {
        seed: u64,
    },
    Block,
    RoundRobin,
    Hash,
    Random {
        seed: u64,
    },
}

impl DdPartitioner {
    fn partition(&self, g: &AdjGraph, k: usize) -> Result<Partition, CoreError> {
        let p = match *self {
            DdPartitioner::Multilevel { seed } => {
                MultilevelPartitioner::seeded(seed).partition(g, k)
            }
            DdPartitioner::Block => BlockPartitioner.partition(g, k),
            DdPartitioner::RoundRobin => RoundRobinPartitioner.partition(g, k),
            DdPartitioner::Hash => HashPartitioner.partition(g, k),
            DdPartitioner::Random { seed } => RandomPartitioner { seed }.partition(g, k),
        }?;
        Ok(p)
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of logical processors (the paper uses 16).
    pub procs: usize,
    /// Domain-decomposition partitioner.
    pub dd: DdPartitioner,
    /// Runtime configuration (execution mode, LogP model, schedule).
    pub cluster: ClusterConfig,
    /// Maximum message size `M` in bytes (§IV.C); DV bundles are chunked to
    /// this cap.
    pub message_cap_bytes: usize,
    /// Safety bound on recombination steps per convergence run.
    pub max_rc_steps: usize,
    /// Seeded attempts for CutEdge-PS (the paper scores one partition per
    /// processor and keeps the best).
    pub cutedge_tries: usize,
    /// Wire format for RC row exchanges (full rows vs sparse deltas).
    pub wire: WireFormat,
    /// What each published epoch carries: closeness only (default) or
    /// closeness plus certified per-vertex error bounds.
    pub publish_bounds: BoundsMode,
    /// Background rebalancer policy, evaluated at RC-step barriers. The
    /// default is [`RebalancePolicy::Static`](aaa_partition::RebalancePolicy),
    /// i.e. disabled.
    pub rebalance: RebalanceConfig,
    /// Centrality metrics each published epoch carries *in addition to*
    /// closeness, which is always present. Empty (the default) keeps the
    /// engine on the legacy closeness-only publish path, which is
    /// bit-identical — views, deltas, wire bytes, and counters — to the
    /// pre-metric-abstraction engine. Listing [`MetricKind::Closeness`]
    /// here is a harmless no-op; duplicates are deduplicated.
    pub metrics: Vec<MetricKind>,
}

impl EngineConfig {
    /// Default configuration for `p` processors: multilevel DD, parallel
    /// execution, 1 Gb/s-Ethernet LogP pricing, 1 MiB message cap.
    pub fn with_procs(p: usize) -> Self {
        Self {
            procs: p,
            dd: DdPartitioner::Multilevel { seed: 0 },
            cluster: ClusterConfig::default(),
            message_cap_bytes: 1 << 20,
            max_rc_steps: 10_000,
            cutedge_tries: 4,
            wire: WireFormat::Full,
            publish_bounds: BoundsMode::None,
            rebalance: RebalanceConfig::default(),
            metrics: Vec::new(),
        }
    }

    /// Deterministic variant (sequential rank execution) for tests.
    pub fn deterministic(p: usize) -> Self {
        let mut c = Self::with_procs(p);
        c.cluster.mode = aaa_runtime::ExecutionMode::Sequential;
        c
    }

    /// Relaxation-kernel worker threads matching the execution mode: the
    /// sequential executor models single-threaded ranks, the parallel one
    /// uses the host's cores. The kernel is bit-identical either way.
    fn kernel_threads(&self) -> usize {
        match self.cluster.mode {
            aaa_runtime::ExecutionMode::Sequential => 1,
            aaa_runtime::ExecutionMode::Parallel => {
                std::thread::available_parallelism().map_or(1, |p| p.get())
            }
        }
    }

    /// Applies the per-rank knobs this config carries (wire format, kernel
    /// threads) to a freshly built state.
    fn configure_state(&self, state: &mut RankState) {
        state.set_wire(self.wire);
        state.set_kernel_threads(self.kernel_threads());
    }
}

/// Summary of a convergence run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceSummary {
    /// RC steps executed by this call.
    pub steps: usize,
    /// Whether the run reached quiescence (vs. hitting `max_rc_steps`).
    pub converged: bool,
}

/// Outcome of a supervised convergence run
/// ([`AnytimeEngine::run_supervised`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedRun {
    /// Steps executed and whether quiescence was reached.
    pub summary: ConvergenceSummary,
    /// Fault incidents the supervisor retried (resend + backoff).
    pub retries: u64,
    /// Checkpoint fallbacks performed.
    pub fallbacks: u32,
    /// Quiescence-time verification passes triggered by silently injected
    /// faults (drops/delays leave no incident — only the counters move).
    pub verification_passes: u64,
    /// `Some` iff the run gave up and returned a degraded-mode answer.
    pub degraded: Option<DegradedReport>,
}

impl SupervisedRun {
    /// True iff the run reached a verified fixed point (not degraded).
    pub fn converged(&self) -> bool {
        self.summary.converged && self.degraded.is_none()
    }
}

/// Snapshot consumer handed to the driver by the checkpointing entry point.
type CheckpointHook<'a> = &'a mut dyn FnMut(&[u8]);

/// Policy bundle for the unified convergence driver (`drive`). Each of the
/// public `run_*` entry points is a fixed choice of these knobs.
struct DriveSpec<'a> {
    /// Poll fault/chaos at every barrier (`rc_step_checked` stepping) vs.
    /// the unchecked fast path.
    checked: bool,
    /// When to hand serialized snapshots to `on_checkpoint`.
    checkpoint: CheckpointPolicy,
    /// Snapshot consumer; only called when `checkpoint` says one is due.
    on_checkpoint: Option<CheckpointHook<'a>>,
    /// `Some` arms the retry/backoff/fallback supervisor and the
    /// quiescence verification ladder; `None` propagates errors directly.
    supervised: Option<&'a RetryPolicy>,
}

/// The anytime anywhere closeness-centrality engine.
///
/// Construction runs the DD and IA phases; [`AnytimeEngine::rc_step`]
/// advances the RC phase one step at a time (the *anytime* interface — the
/// engine can be queried for closeness between any two steps); dynamic
/// changes enter through [`AnytimeEngine::submit`] (or the `apply_*`
/// convenience wrappers) and are drained at RC-step barriers (the
/// *anywhere* interface). After every state change the engine publishes an
/// immutable epoch-stamped view readable concurrently via
/// [`AnytimeEngine::view_cell`].
pub struct AnytimeEngine {
    graph: AdjGraph,
    partition: Partition,
    cluster: Cluster<RankState>,
    config: EngineConfig,
    rc_steps: usize,
    rr_cursor: usize,
    changes_applied: u64,
    /// Ingest layer: validated, coalesced changes awaiting the next drain.
    changes: ChangeLog,
    /// Publish layer: mints epochs into the shared view cell.
    publisher: Publisher,
    /// Metric layer: closeness (always) plus the extra per-epoch centrality
    /// columns from [`EngineConfig::metrics`]. Extra-metric state lives at
    /// the driver and is updated at publish barriers from drained DV rows.
    metrics: MetricSet,
}

impl AnytimeEngine {
    /// Domain decomposition + initial approximation.
    pub fn new(graph: AdjGraph, config: EngineConfig) -> Result<Self, CoreError> {
        Self::with_sink(graph, config, Arc::new(NoopSink))
    }

    /// [`AnytimeEngine::new`] with an event sink installed from the start,
    /// so even the construction phases (DD, IA) are traced.
    pub fn with_sink(
        graph: AdjGraph,
        config: EngineConfig,
        sink: Arc<dyn EventSink>,
    ) -> Result<Self, CoreError> {
        Self::build(graph, None, config, sink)
    }

    /// [`AnytimeEngine::new`] with an externally computed partition: the
    /// domain-decomposition phase ran out-of-band — typically directly on a
    /// compressed on-disk [`aaa_store::GraphStore`] backend, where the
    /// partitioners operate without materializing an in-memory adjacency —
    /// and the engine adopts its assignment instead of running
    /// [`EngineConfig::dd`]. The partition must cover exactly the graph's
    /// vertices with `k == config.procs`.
    pub fn with_partition(
        graph: AdjGraph,
        partition: Partition,
        config: EngineConfig,
    ) -> Result<Self, CoreError> {
        Self::build(graph, Some(partition), config, Arc::new(NoopSink))
    }

    fn build(
        graph: AdjGraph,
        external: Option<Partition>,
        config: EngineConfig,
        sink: Arc<dyn EventSink>,
    ) -> Result<Self, CoreError> {
        if config.procs == 0 {
            return Err(CoreError::Config("procs must be ≥ 1".into()));
        }
        let dd_started = std::time::Instant::now();
        let partition = match external {
            Some(p) => {
                if p.len() != graph.num_vertices() {
                    return Err(CoreError::Config(format!(
                        "external partition covers {} vertices, graph has {}",
                        p.len(),
                        graph.num_vertices()
                    )));
                }
                if p.k() != config.procs {
                    return Err(CoreError::Config(format!(
                        "external partition has k = {}, config.procs = {}",
                        p.k(),
                        config.procs
                    )));
                }
                p
            }
            None => config.dd.partition(&graph, config.procs)?,
        };
        let dd_us = dd_started.elapsed().as_secs_f64() * 1e6;
        let owner: Vec<PartId> = partition.assignment().to_vec();
        let states: Vec<RankState> = (0..config.procs)
            .map(|r| {
                let mut s = RankState::build(r, owner.clone(), |v| graph.neighbors(v).to_vec());
                config.configure_state(&mut s);
                s
            })
            .collect();
        let mut cluster = Cluster::new(states, config.cluster);
        cluster.set_sink(sink);
        if cluster.observing() {
            cluster.emit(SpanEvent {
                kind: SpanKind::DomainDecomposition,
                rank: DRIVER_LANE,
                superstep: 0,
                sim_start_us: cluster.sim_now_us(),
                sim_dur_us: dd_us,
                wall_start_us: 0.0,
                wall_dur_us: dd_us,
                messages: 0,
                bytes: 0,
            });
        }
        // The DD partitioner runs once at the orchestrator; on the paper's
        // testbed it is parallel ParMETIS on the cluster — charge its time.
        cluster.charge_compute_us(dd_us);
        // IA phase: per-source Dijkstra inside every rank's sub-graph.
        cluster.step(|_, s| s.initial_approximation());
        let publish_bounds = config.publish_bounds;
        let metrics = MetricSet::from_kinds(&config.metrics);
        let mut engine = Self {
            graph,
            partition,
            cluster,
            config,
            rc_steps: 0,
            rr_cursor: 0,
            changes_applied: 0,
            changes: ChangeLog::new(),
            publisher: Publisher::new(publish_bounds),
            metrics,
        };
        // The anytime contract starts at construction: the IA answer is the
        // first published epoch.
        engine.publish_view(false);
        Ok(engine)
    }

    /// Installs an event sink on the engine's cluster; spans flow to it
    /// from the next superstep on. A disabled sink (e.g. [`NoopSink`])
    /// disarms recording.
    pub fn set_sink(&mut self, sink: Arc<dyn EventSink>) {
        self.cluster.set_sink(sink);
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.config.procs
    }

    /// The engine's current view of the full graph.
    pub fn graph(&self) -> &AdjGraph {
        &self.graph
    }

    /// The current vertex→processor assignment.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// RC steps executed so far (across convergence runs and injections).
    pub fn rc_steps_done(&self) -> usize {
        self.rc_steps
    }

    /// Dynamic changes successfully applied so far — the change-stream
    /// cursor captured in snapshots, so a resumed consumer knows where to
    /// continue in its change log.
    pub fn changes_applied(&self) -> u64 {
        self.changes_applied
    }

    /// Accumulated runtime statistics (traffic, simulated time, wall time).
    pub fn stats(&self) -> RunStats {
        *self.cluster.stats()
    }

    // ----------------------------------------------------------------
    // Publish: epoch-stamped immutable views
    // ----------------------------------------------------------------

    /// The shared handle to the latest published view. Clone it (cheap) and
    /// hand it to reader threads — every `load` returns a complete,
    /// immutable epoch while the engine keeps running. The `aaa-serve`
    /// crate wraps this in a query API.
    pub fn view_cell(&self) -> Arc<ViewCell> {
        self.publisher.cell()
    }

    /// The latest published view.
    pub fn published(&self) -> Arc<PublishedView> {
        self.publisher.latest()
    }

    /// Epochs published so far (strictly increasing from construction).
    pub fn epochs_published(&self) -> u64 {
        self.publisher.epochs_minted()
    }

    /// Builds and publishes a fresh epoch from current rank state. This is
    /// driver-side work (the orchestrator reading rank memory it co-hosts,
    /// exactly like checkpointing): no supersteps, messages, or simulated
    /// time are charged, so publishing never perturbs the priced metrics.
    ///
    /// The hot path is `O(changed)`: each rank drains its epoch-dirty row
    /// set (values changed since the last publish) and the publisher
    /// applies the resulting `ViewDelta` by structural sharing. The full
    /// `O(n)` rebuild runs only when the publisher demands it — first
    /// epoch, certified-bounds invalidation, forced-full override — or
    /// when a restore rewound the vertex count below the published view's
    /// (the chunked store never shrinks in place).
    fn publish_view(&mut self, converged: bool) {
        let observing = self.cluster.observing();
        let wall0 = if observing { self.cluster.wall_now_us() } else { 0.0 };
        let n = self.graph.num_vertices();
        match self.publisher.mode() {
            BoundsMode::None if self.metrics.closeness_only() => {
                // Legacy closeness-only path, kept verbatim: bit-identical
                // views, deltas, wire bytes, and counters to the
                // pre-metric-abstraction engine.
                let full =
                    self.publisher.wants_full() || self.publisher.latest().num_vertices() > n;
                // Epoch-dirty tracking is drained on every publish — the
                // full path resets it too, so the next delta is relative
                // to what this epoch actually published.
                let per_rank =
                    self.cluster.barrier_read_mut(|_, s: &mut RankState| s.take_epoch_closeness());
                if full {
                    let mut closeness = vec![0.0; n];
                    for list in self.cluster.barrier_read(|_, s| s.local_closeness()) {
                        for (v, c) in list {
                            closeness[v as usize] = c;
                        }
                    }
                    self.publisher.publish(
                        self.rc_steps,
                        self.changes_applied,
                        converged,
                        closeness,
                        Vec::new(),
                    );
                } else {
                    let mut entries: Vec<(VertexId, f64)> =
                        per_rank.into_iter().flatten().collect();
                    entries.sort_unstable_by_key(|e| e.0);
                    self.publisher.publish_changes(
                        self.rc_steps,
                        self.changes_applied,
                        converged,
                        n,
                        entries,
                        Vec::new(),
                    );
                }
            }
            BoundsMode::None => {
                let full =
                    self.publisher.wants_full() || self.publisher.latest().num_vertices() > n;
                // One drain of the epoch-dirty sets feeds both the
                // closeness delta and the extra metrics' row hand-off.
                let changed =
                    self.cluster.barrier_read_mut(|_, s: &mut RankState| s.take_epoch_changed());
                let extra_deltas = self.update_extra_metrics(full, &changed);
                let primary = self.metrics.primary();
                if full {
                    let mut closeness = vec![0.0; n];
                    for list in
                        self.cluster.barrier_read(|_, s| s.local_scores(|row| primary.score(row)))
                    {
                        for (v, c) in list {
                            closeness[v as usize] = c;
                        }
                    }
                    let extras = self.extra_full_columns(n);
                    self.publisher.publish_with(
                        self.rc_steps,
                        self.changes_applied,
                        converged,
                        closeness,
                        Vec::new(),
                        extras,
                    );
                } else {
                    let mut entries: Vec<(VertexId, f64)> = self
                        .cluster
                        .barrier_read(|r, s| {
                            changed[r]
                                .iter()
                                .map(|&v| {
                                    let row = s.dv().local_row(v).expect("local row");
                                    (v, primary.score(row))
                                })
                                .collect::<Vec<_>>()
                        })
                        .into_iter()
                        .flatten()
                        .collect();
                    entries.sort_unstable_by_key(|e| e.0);
                    self.publisher.publish_changes_with(
                        self.rc_steps,
                        self.changes_applied,
                        converged,
                        n,
                        entries,
                        Vec::new(),
                        extra_deltas,
                    );
                }
            }
            BoundsMode::Certified => {
                // `cache_for` may rebuild (structural change), which moves
                // every vertex's bound and forces the full path below.
                self.publisher.cache_for(&self.graph);
                let full =
                    self.publisher.wants_full() || self.publisher.latest().num_vertices() > n;
                let changed =
                    self.cluster.barrier_read_mut(|_, s: &mut RankState| s.take_epoch_changed());
                let extra_deltas = self.update_extra_metrics(full, &changed);
                let primary = self.metrics.primary();
                let cache = self.publisher.cache_for(&self.graph);
                if full {
                    let mut closeness = vec![0.0; n];
                    let mut bounds = vec![0.0; n];
                    let per_rank = self.cluster.barrier_read(|_, s| {
                        s.local_vertices()
                            .iter()
                            .map(|&v| {
                                let row = s.dv().local_row(v).expect("local row");
                                let (lo, hi) = cache.interval(v, row);
                                // Partial rows can overestimate closeness
                                // (fewer finite terms); the certified
                                // interval is sound, so clamp into it.
                                (v, primary.score(row).clamp(lo, hi), hi - lo)
                            })
                            .collect::<Vec<_>>()
                    });
                    for list in per_rank {
                        for (v, c, b) in list {
                            closeness[v as usize] = c;
                            bounds[v as usize] = b;
                        }
                    }
                    let extras = self.extra_full_columns(n);
                    self.publisher.publish_with(
                        self.rc_steps,
                        self.changes_applied,
                        converged,
                        closeness,
                        bounds,
                        extras,
                    );
                } else {
                    let per_rank = self.cluster.barrier_read(|r, s| {
                        changed[r]
                            .iter()
                            .map(|&v| {
                                let row = s.dv().local_row(v).expect("local row");
                                let (lo, hi) = cache.interval(v, row);
                                (v, primary.score(row).clamp(lo, hi), hi - lo)
                            })
                            .collect::<Vec<_>>()
                    });
                    let mut entries = Vec::new();
                    let mut bound_entries = Vec::new();
                    for (v, c, b) in per_rank.into_iter().flatten() {
                        entries.push((v, c));
                        bound_entries.push((v, b));
                    }
                    entries.sort_unstable_by_key(|e| e.0);
                    bound_entries.sort_unstable_by_key(|e| e.0);
                    self.publisher.publish_changes_with(
                        self.rc_steps,
                        self.changes_applied,
                        converged,
                        n,
                        entries,
                        bound_entries,
                        extra_deltas,
                    );
                }
            }
        }
        if observing {
            // Zero simulated duration (renders as an instant, like
            // checkpoints); the real cost rides in wall_dur. The payload
            // fields carry the delta this epoch shipped: `messages` is
            // the re-stated row count, `bytes` its `NetMsg::ViewDelta`
            // wire size (what replication would put on the wire).
            let (rows, delta_bytes) = self
                .publisher
                .last_delta()
                .map(|d| (d.rows() as u64, d.encoded_bytes() as u64))
                .unwrap_or((0, 0));
            self.cluster.emit(SpanEvent {
                kind: SpanKind::Publish,
                rank: DRIVER_LANE,
                superstep: self.rc_steps as u64,
                sim_start_us: self.cluster.sim_now_us(),
                sim_dur_us: 0.0,
                wall_start_us: wall0,
                wall_dur_us: self.cluster.wall_now_us() - wall0,
                messages: rows,
                bytes: delta_bytes,
            });
        }
    }

    /// Hands this epoch's DV rows to the extra metrics and collects each
    /// one's changed-entry delta. `changed` is the per-rank epoch-dirty
    /// vertex list the caller already drained; when the publisher is doing
    /// a full rebuild or a metric was invalidated by a structural change,
    /// every local row is gathered instead. Driver-side and unpriced, like
    /// the rest of the publish barrier. No-op on closeness-only engines.
    fn update_extra_metrics(
        &mut self,
        full: bool,
        changed: &[Vec<VertexId>],
    ) -> Vec<(MetricKind, Vec<(VertexId, f64)>)> {
        if self.metrics.closeness_only() {
            return Vec::new();
        }
        let want_all = full || self.metrics.wants_all_rows();
        let mut rows: Vec<(VertexId, Vec<Dist>)> = if want_all {
            self.cluster.barrier_read(|_, s| s.local_rows()).into_iter().flatten().collect()
        } else {
            self.cluster
                .barrier_read(|r, s| {
                    changed[r]
                        .iter()
                        .map(|&v| (v, s.dv().local_row(v).expect("local row").to_vec()))
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect()
        };
        rows.sort_unstable_by_key(|e| e.0);
        let n = self.graph.num_vertices();
        let graph = &self.graph;
        self.metrics
            .extras_mut()
            .iter_mut()
            .map(|m| (m.kind(), m.update(n, &rows, graph)))
            .collect()
    }

    /// Full columns for every extra metric, for full (re)publishes. Must
    /// run after [`Self::update_extra_metrics`] so each column reflects
    /// this epoch's rows.
    fn extra_full_columns(&self, n: usize) -> Vec<(MetricKind, Vec<f64>)> {
        self.metrics
            .extras()
            .iter()
            .map(|m| (m.kind(), m.full_column(n).expect("stateful metric keeps a full column")))
            .collect()
    }

    /// The metrics every published epoch carries (closeness always).
    pub fn metric_mask(&self) -> MetricMask {
        self.metrics.mask()
    }

    /// Update-effort counters for an extra metric, or `None` if the engine
    /// is not maintaining it. Closeness is row-local (scored straight off
    /// DV rows) and keeps no tally.
    pub fn metric_tally(&self, kind: MetricKind) -> Option<MetricTally> {
        self.metrics.extras().iter().find(|m| m.kind() == kind).map(|m| m.tally())
    }

    /// Executes one recombination step: drains the ingest log at the
    /// barrier, then boundary DV exchange under the personalized all-to-all
    /// schedule, min-merge, and the local min-plus refinement (Fig. 1), and
    /// finally publishes a fresh view. Returns `true` while more work
    /// remains.
    pub fn rc_step(&mut self) -> bool {
        // Changes were validated at `submit`; on this unchecked path a
        // drain failure is a programming error, not a runtime condition.
        self.drain_changes().expect("queued change failed to apply at the RC barrier");
        self.maybe_rebalance().expect("rebalance failed at the RC barrier");
        let observing = self.cluster.observing();
        let (sim0, wall0) = if observing {
            (self.cluster.sim_now_us(), self.cluster.wall_now_us())
        } else {
            (0.0, 0.0)
        };
        let cap = self.config.message_cap_bytes;
        self.cluster.exchange(
            move |_, s: &mut RankState| s.produce_rc_messages(cap),
            RowMsg::size_bytes,
            |_, s, inbox| s.consume_rc_messages(inbox),
        );
        self.rc_steps += 1;
        let more = self.cluster.allreduce_or(|_, s| s.last_sent || s.last_changed || s.has_dirty());
        if observing {
            // One span bracketing the whole step (exchange + quiescence
            // reduction), on the driver lane; `superstep` carries the
            // RC-step index.
            self.cluster.emit(SpanEvent {
                kind: SpanKind::RcStep,
                rank: DRIVER_LANE,
                superstep: (self.rc_steps - 1) as u64,
                sim_start_us: sim0,
                sim_dur_us: self.cluster.sim_now_us() - sim0,
                wall_start_us: wall0,
                wall_dur_us: self.cluster.wall_now_us() - wall0,
                messages: 0,
                bytes: 0,
            });
        }
        self.publish_view(!more);
        more
    }

    /// Runs RC steps until no processor has updates left (or the safety
    /// bound is hit). For a static graph this takes at most P−1 productive
    /// steps plus one quiescence-detection step.
    ///
    /// Panics if a queued change fails to apply at a barrier (impossible
    /// for changes that passed [`AnytimeEngine::submit`] validation); use
    /// [`AnytimeEngine::run_to_convergence_checked`] for a fallible run.
    pub fn run_to_convergence(&mut self) -> ConvergenceSummary {
        self.drive(DriveSpec {
            checked: false,
            checkpoint: CheckpointPolicy::Manual,
            on_checkpoint: None,
            supervised: None,
        })
        .expect("unchecked convergence cannot fail")
        .summary
    }

    /// Closeness centrality of every vertex from the **latest published
    /// view** — the anytime query. Monotonically improving across RC
    /// steps; exact at convergence. Never blocks the compute loop: this is
    /// a lock-free read of the last epoch, also available to other threads
    /// through [`AnytimeEngine::view_cell`].
    pub fn closeness(&self) -> Vec<f64> {
        self.publisher.latest().closeness()
    }

    /// Publish-layer counters: full vs delta epochs, re-stated rows,
    /// chunk copy/share tallies, top-k index rebuilds.
    pub fn publish_stats(&self) -> PublishStats {
        self.publisher.stats()
    }

    /// The delta describing the most recent published epoch (what
    /// `NetMsg::ViewDelta` replication would ship).
    pub fn last_view_delta(&self) -> Option<&ViewDelta> {
        self.publisher.last_delta()
    }

    /// Disables (`true`) or re-enables (`false`) the delta publish path —
    /// the full-rebuild baseline for equivalence tests and benches.
    pub fn set_force_full_publish(&mut self, on: bool) {
        self.publisher.set_force_full(on);
    }

    /// Recomputes closeness with a priced gather superstep (every rank
    /// reports its local values through the BSP fabric) instead of reading
    /// the published view. This is the pre-pipeline query path, kept as an
    /// escape hatch for oracles and perf baselines that price the gather;
    /// it does **not** publish an epoch.
    pub fn recompute_exact(&mut self) -> Vec<f64> {
        let per_rank = self.cluster.step(|_, s| s.local_closeness());
        let mut out = vec![0.0; self.graph.num_vertices()];
        for list in per_rank {
            for (v, c) in list {
                out[v as usize] = c;
            }
        }
        out
    }

    /// Gathers the full distance matrix (testing / small graphs only —
    /// this is Θ(n²) memory at the driver). Driver-side barrier read; not
    /// priced.
    pub fn distances(&self) -> DistMatrix {
        let per_rank = self.cluster.barrier_read(|_, s| s.local_rows());
        let n = self.graph.num_vertices();
        let mut m = DistMatrix::new(n);
        for list in per_rank {
            for (v, row) in list {
                for (t, d) in row.into_iter().enumerate() {
                    m.set(v, t as VertexId, d);
                }
            }
        }
        m
    }

    // ----------------------------------------------------------------
    // Ingest: the change log
    // ----------------------------------------------------------------

    /// Submits a dynamic change to the ingest layer. The change is
    /// validated *now* (against the graph as it will look when the queue
    /// ahead of it has been applied) and coalesced with queued changes
    /// where safe; it takes effect at the next RC-step barrier or explicit
    /// [`AnytimeEngine::drain_changes`]. Vertex batches submitted this way
    /// get their assignment strategy chosen by [`StrategyPolicy`] at drain
    /// time; use [`AnytimeEngine::submit_with_strategy`] to pin one.
    pub fn submit(&mut self, change: DynamicChange) -> Result<(), CoreError> {
        self.changes.submit(&self.graph, change, None)
    }

    /// [`AnytimeEngine::submit`] with a pinned processor-assignment
    /// strategy for vertex batches (ignored by edge changes).
    pub fn submit_with_strategy(
        &mut self,
        change: DynamicChange,
        strategy: AssignStrategy,
    ) -> Result<(), CoreError> {
        self.changes.submit(&self.graph, change, Some(strategy))
    }

    /// Changes queued and not yet drained.
    pub fn pending_changes(&self) -> usize {
        self.changes.len()
    }

    /// Ingest-layer counters (submitted / coalesced / applied / drains).
    pub fn ingest_stats(&self) -> IngestStats {
        self.changes.stats()
    }

    /// Applies every queued change in submission order at the current
    /// barrier — the compute layer's ingest drain. Runs automatically at
    /// the top of every RC step; callable explicitly to force changes in
    /// between. Publishes a fresh view when anything was applied and
    /// returns the number of changes applied.
    ///
    /// On an execution error the failing change is discarded, the changes
    /// behind it stay queued, and the error propagates (unreachable for
    /// streams that passed `submit` validation).
    pub fn drain_changes(&mut self) -> Result<usize, CoreError> {
        if self.changes.is_empty() {
            return Ok(0);
        }
        let observing = self.cluster.observing();
        let wall0 = if observing { self.cluster.wall_now_us() } else { 0.0 };
        let mut applied = 0usize;
        let mut outcome = Ok(());
        while let Some(pc) = self.changes.pop() {
            let res = match pc.change {
                DynamicChange::AddVertices(batch) => {
                    let strategy = pc.strategy.unwrap_or_else(|| {
                        StrategyPolicy::default().choose(&batch, self.graph.num_vertices())
                    });
                    self.exec_vertex_additions(&batch, strategy)
                }
                DynamicChange::RemoveVertices(victims) => self.exec_remove_vertices(&victims),
                DynamicChange::AddEdge { u, v, w } => self.exec_add_edge(u, v, w),
                DynamicChange::RemoveEdge { u, v } => self.exec_remove_edge(u, v),
                DynamicChange::SetWeight { u, v, w } => self.exec_set_edge_weight(u, v, w),
            };
            match res {
                Ok(()) => {
                    applied += 1;
                    self.changes.record_applied();
                    // The graph changed; certified bounds must be rebuilt
                    // and path-dependent metric state (e.g. cached
                    // betweenness dependency vectors — shortest-path
                    // counts can shift even where distances do not) is
                    // stale everywhere.
                    self.publisher.invalidate_cache();
                    self.metrics.invalidate_all();
                }
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        if applied > 0 {
            self.changes.record_drain();
            if observing {
                // `messages` carries the number of changes applied.
                self.cluster.emit(SpanEvent {
                    kind: SpanKind::Drain,
                    rank: DRIVER_LANE,
                    superstep: self.rc_steps as u64,
                    sim_start_us: self.cluster.sim_now_us(),
                    sim_dur_us: 0.0,
                    wall_start_us: wall0,
                    wall_dur_us: self.cluster.wall_now_us() - wall0,
                    messages: applied as u64,
                    bytes: 0,
                });
            }
            self.publish_view(false);
        }
        outcome.map(|()| applied)
    }

    // ----------------------------------------------------------------
    // Anywhere: dynamic changes
    // ----------------------------------------------------------------

    /// Applies a dynamic change mid-analysis: submit + immediate drain.
    /// Vertex additions honour the given strategy; edge changes use the
    /// companion algorithms.
    pub fn apply_change(
        &mut self,
        change: &DynamicChange,
        strategy: AssignStrategy,
    ) -> Result<(), CoreError> {
        self.submit_with_strategy(change.clone(), strategy)?;
        self.drain_changes().map(|_| ())
    }

    /// Incorporates a batch of new vertices using the chosen processor
    /// assignment strategy (the paper's core contribution; Fig. 2 + Fig. 3).
    /// Routed through the ingest log (submit + immediate drain) so every
    /// mutation shares one path; the caller decides when to continue RC
    /// stepping.
    pub fn apply_vertex_additions(
        &mut self,
        batch: &VertexBatch,
        strategy: AssignStrategy,
    ) -> Result<(), CoreError> {
        self.submit_with_strategy(DynamicChange::AddVertices(batch.clone()), strategy)?;
        self.drain_changes().map(|_| ())
    }

    /// Vertex additions with constraint-driven strategy selection
    /// (Fig. 1 line 16): the policy picks RoundRobin-PS, CutEdge-PS or
    /// Repartition-S from the batch's size and structure. Returns the
    /// strategy it chose.
    pub fn apply_vertex_additions_auto(
        &mut self,
        batch: &VertexBatch,
        policy: &StrategyPolicy,
    ) -> Result<AssignStrategy, CoreError> {
        let strategy = policy.choose(batch, self.graph.num_vertices());
        self.apply_vertex_additions(batch, strategy)?;
        Ok(strategy)
    }

    /// Executes a vertex-addition batch at a barrier (drain path).
    fn exec_vertex_additions(
        &mut self,
        batch: &VertexBatch,
        strategy: AssignStrategy,
    ) -> Result<(), CoreError> {
        if batch.is_empty() {
            return Ok(());
        }
        batch.validate(self.graph.num_vertices())?;
        let base = self.graph.num_vertices() as VertexId;
        match strategy {
            AssignStrategy::Repartition { seed } => self.apply_repartition(batch, seed)?,
            AssignStrategy::RoundRobin => {
                let owners = round_robin_assign(batch.len(), self.config.procs, self.rr_cursor);
                self.rr_cursor = (self.rr_cursor + batch.len()) % self.config.procs;
                self.apply_anywhere(batch, base, owners)?;
            }
            AssignStrategy::CutEdge { seed, tries } => {
                // CutEdge-PS partitions the new-vertex graph (serial METIS
                // in the paper); charge that compute to the cluster clock.
                // `tries = 0` defers to the engine-wide default.
                let tries = if tries == 0 { self.config.cutedge_tries } else { tries };
                let started = std::time::Instant::now();
                let owners = cut_edge_assign(batch, base, self.config.procs, seed, tries)?;
                self.cluster.charge_compute_us(started.elapsed().as_secs_f64() * 1e6);
                self.apply_anywhere(batch, base, owners)?;
            }
        }
        self.changes_applied += 1;
        Ok(())
    }

    /// The anywhere vertex-addition strategy (Fig. 3): grow DVs, then per
    /// new edge broadcast both endpoint rows and relax every local row.
    fn apply_anywhere(
        &mut self,
        batch: &VertexBatch,
        base: VertexId,
        owners: Vec<PartId>,
    ) -> Result<(), CoreError> {
        // Driver-side graph and partition bookkeeping. `validate` ruled out
        // every failure mode, so these cannot error.
        self.graph.add_vertices(batch.len());
        let edges = batch.global_edges(base);
        for &(a, b, w) in &edges {
            self.graph.add_edge(a, b, w)?;
        }
        self.partition.extend(owners.iter().copied())?;

        // Announce the batch (owners + edges) to every rank.
        let msg = GrowMsg { base, owners, edges: edges.clone() };
        self.cluster.broadcast(0, move |_| msg, GrowMsg::size_bytes, |_, s, m| s.grow(m));

        // Fig. 3 main loop: per edge, broadcast the endpoint rows from
        // their owners (tree broadcast) and run the add-edge relaxation on
        // every rank.
        for &(x, y, w) in &edges {
            let ox = self.partition.part_of(x) as usize;
            let oy = self.partition.part_of(y) as usize;
            self.cluster.broadcast(
                ox,
                move |s: &mut RankState| (x, s.row_for_broadcast(x)),
                |(_, r): &(VertexId, Vec<_>)| 8 + 4 * r.len(),
                |_, s, m| s.stash_row(m.0, &m.1),
            );
            self.cluster.broadcast(
                oy,
                move |s: &mut RankState| (y, s.row_for_broadcast(y)),
                |(_, r): &(VertexId, Vec<_>)| 8 + 4 * r.len(),
                |_, s, m| s.stash_row(m.0, &m.1),
            );
            self.cluster.step(move |_, s| s.apply_edge_relax(x, y, w));
        }
        // Propagate the batch's effects to rank-local fixed points; changed
        // rows are now dirty and flow out on the next RC step.
        self.cluster.step(|_, s| {
            s.relax_pending();
            s.clear_gathered();
        });
        Ok(())
    }

    /// Repartition-S (§IV.C.1b): repartition the whole graph (including the
    /// new vertices), migrate the partial results to their new owners, and
    /// let subsequent RC steps absorb the change. No per-edge relaxation is
    /// performed — the paper trades that for the repartition.
    fn apply_repartition(&mut self, batch: &VertexBatch, seed: u64) -> Result<(), CoreError> {
        let base = self.graph.num_vertices() as VertexId;
        self.graph.add_vertices(batch.len());
        for &(a, b, w) in &batch.global_edges(base) {
            self.graph.add_edge(a, b, w)?;
        }
        self.repartition_and_migrate(seed)
    }

    /// Repartitions the *current* graph and migrates partial results to the
    /// new owners. Also usable on its own as the load-rebalancing operation
    /// the paper lists as future work ("graph rebalancing strategies to
    /// deal with load imbalances").
    pub fn rebalance(&mut self, seed: u64) -> Result<(), CoreError> {
        self.repartition_and_migrate(seed)?;
        self.publish_view(false);
        Ok(())
    }

    fn repartition_and_migrate(&mut self, seed: u64) -> Result<(), CoreError> {
        let observing = self.cluster.observing();
        let (sim0, wall0) = if observing {
            (self.cluster.sim_now_us(), self.cluster.wall_now_us())
        } else {
            (0.0, 0.0)
        };
        let before = *self.cluster.stats();
        // The whole-graph repartitioning is the strategy's main cost
        // (parallel ParMETIS in the paper) — charge its compute time.
        let started = std::time::Instant::now();
        let new_part =
            MultilevelPartitioner::seeded(seed).partition(&self.graph, self.config.procs)?;
        self.cluster.charge_compute_us(started.elapsed().as_secs_f64() * 1e6);
        let assignment: Vec<PartId> = new_part.assignment().to_vec();

        // Price the assignment broadcast (every rank must learn the map).
        let payload = assignment.clone();
        self.cluster.broadcast(0, move |_| payload, |a| 4 * a.len(), |_, _, _| {});

        // Migrate rows to their new owners; each rank rebuilds its local
        // structures from the new map. The closures only need disjoint
        // parts of `self`.
        let graph = &self.graph;
        let owner_ref: &[PartId] = &assignment;
        self.cluster.exchange(
            move |_, s: &mut RankState| s.migrate_out(owner_ref),
            RowMsg::size_bytes,
            move |_, s, inbox| {
                s.migrate_in(owner_ref, inbox, |v| graph.neighbors(v).to_vec());
            },
        );
        let moved = assignment
            .iter()
            .enumerate()
            .filter(|&(v, &p)| {
                v < self.partition.len() && self.partition.part_of(v as VertexId) != p
            })
            .count() as u64;
        self.partition = new_part;
        let delta = self.cluster.stats().delta_since(&before);
        self.cluster.record_migration(moved, delta.bytes);
        if observing {
            self.cluster.emit(SpanEvent {
                kind: SpanKind::Migration,
                rank: DRIVER_LANE,
                superstep: self.rc_steps as u64,
                sim_start_us: sim0,
                sim_dur_us: self.cluster.sim_now_us() - sim0,
                wall_start_us: wall0,
                wall_dur_us: self.cluster.wall_now_us() - wall0,
                messages: moved,
                bytes: delta.bytes,
            });
        }
        Ok(())
    }

    /// Evaluates the background rebalancer at an RC-step barrier (the
    /// tentpole of adaptive repartitioning): reads the load/cut signals,
    /// asks the policy for a plan, and executes it — a budgeted row
    /// migration for moderate skew, or a policy-escalated full repartition.
    ///
    /// Deferred while fault or chaos injection is armed: migration ships
    /// each row exactly once over the faultable exchange path, and a
    /// dropped row would orphan its vertex permanently.
    fn maybe_rebalance(&mut self) -> Result<(), CoreError> {
        let cfg = self.config.rebalance;
        if !cfg.due_at(self.rc_steps) {
            return Ok(());
        }
        if self.cluster.chaos_plan().is_some() || self.cluster.fault_plan().is_some() {
            return Ok(());
        }
        let mut signals = LoadSignals::measure(&self.graph, &self.partition);
        if cfg.use_measured {
            signals = signals.with_measured_skew(rank_skew(self.cluster.rank_busy_us()));
        }
        match Rebalancer::new(cfg).plan(&self.graph, &self.partition, &signals) {
            RebalancePlan::Hold => Ok(()),
            RebalancePlan::Migrate(moves) => self.migrate_vertices(&moves),
            RebalancePlan::Repartition => self.repartition_and_migrate(cfg.seed),
        }
    }

    /// Applies a budgeted set of ownership moves: broadcasts the move list
    /// so every rank updates its replicated owner map (and drops delta-wire
    /// tracking — boundary destinations changed everywhere), then ships
    /// only the moved rows over the LogP-priced exchange and counts the
    /// event in the run stats so the perf gate sees the traffic.
    fn migrate_vertices(&mut self, moves: &[(VertexId, PartId)]) -> Result<(), CoreError> {
        if moves.is_empty() {
            return Ok(());
        }
        let observing = self.cluster.observing();
        let (sim0, wall0) = if observing {
            (self.cluster.sim_now_us(), self.cluster.wall_now_us())
        } else {
            (0.0, 0.0)
        };
        let before = *self.cluster.stats();
        for &(v, p) in moves {
            self.partition.set_part(v, p)?;
        }
        let payload: Vec<(VertexId, PartId)> = moves.to_vec();
        self.cluster.broadcast(
            0,
            move |_| payload,
            |m| 8 * m.len(),
            |_, s: &mut RankState, m| s.apply_reassignment(m),
        );
        let graph = &self.graph;
        self.cluster.exchange(
            |_, s: &mut RankState| s.migrate_out_moved(),
            RowMsg::size_bytes,
            move |_, s, inbox| s.migrate_in_moved(moves, inbox, |v| graph.neighbors(v).to_vec()),
        );
        let delta = self.cluster.stats().delta_since(&before);
        self.cluster.record_migration(moves.len() as u64, delta.bytes);
        if observing {
            self.cluster.emit(SpanEvent {
                kind: SpanKind::Migration,
                rank: DRIVER_LANE,
                superstep: self.rc_steps as u64,
                sim_start_us: sim0,
                sim_dur_us: self.cluster.sim_now_us() - sim0,
                wall_start_us: wall0,
                wall_dur_us: self.cluster.wall_now_us() - wall0,
                messages: moves.len() as u64,
                bytes: delta.bytes,
            });
        }
        Ok(())
    }

    /// Dynamic **vertex deletion** — the extension the paper lists as
    /// future work (§VI). Deletion is *logical*: the vertex keeps its id
    /// (global ids are stable across the cluster's DV columns) but loses
    /// every incident edge, making it isolated and giving it closeness 0.
    /// Shortest paths through it are invalidated, so the engine performs the
    /// same partial restart as edge deletion. Routed through the ingest log.
    pub fn remove_vertices(&mut self, victims: &[VertexId]) -> Result<(), CoreError> {
        self.submit(DynamicChange::RemoveVertices(victims.to_vec()))?;
        self.drain_changes().map(|_| ())
    }

    fn exec_remove_vertices(&mut self, victims: &[VertexId]) -> Result<(), CoreError> {
        if victims.is_empty() {
            return Ok(());
        }
        let n = self.graph.num_vertices();
        for &v in victims {
            if v as usize >= n {
                return Err(CoreError::InvalidChange(format!(
                    "cannot remove vertex {v}: graph has {n} vertices"
                )));
            }
        }
        // Collect and remove all incident edges at the driver.
        let mut removed_edges: Vec<(VertexId, VertexId)> = Vec::new();
        for &v in victims {
            let nbrs: Vec<VertexId> = self.graph.neighbors(v).iter().map(|&(t, _)| t).collect();
            for t in nbrs {
                // A batch may list both endpoints; the edge is gone after
                // the first removal.
                if self.graph.has_edge(v, t) {
                    self.graph.remove_edge(v, t)?;
                    removed_edges.push((v, t));
                }
            }
        }
        let payload = removed_edges.clone();
        self.cluster.broadcast(
            0,
            move |_| payload,
            |edges| 8 * edges.len(),
            |_, s, edges| {
                for &(a, b) in edges {
                    s.erase_edge(a, b);
                }
            },
        );
        self.partial_restart();
        self.changes_applied += 1;
        Ok(())
    }

    /// Dynamic edge addition (the authors' algorithm [9]): record the edge
    /// everywhere, broadcast both endpoint rows, relax. Routed through the
    /// ingest log (submit + immediate drain).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), CoreError> {
        self.submit(DynamicChange::AddEdge { u, v, w })?;
        self.drain_changes().map(|_| ())
    }

    fn exec_add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), CoreError> {
        self.graph.add_edge(u, v, w)?;
        self.cluster.broadcast(
            0,
            move |_| (u, v, w),
            |_| 12,
            |_, s, &(a, b, w)| s.record_edge(a, b, w),
        );
        self.relax_single_edge(u, v, w);
        self.changes_applied += 1;
        Ok(())
    }

    /// Dynamic edge-weight change (companion algorithm [7]). A decrease is
    /// a relaxation; an increase invalidates shortest paths and triggers
    /// the partial restart shared with deletion. Routed through the ingest
    /// log.
    pub fn set_edge_weight(
        &mut self,
        u: VertexId,
        v: VertexId,
        w: Weight,
    ) -> Result<(), CoreError> {
        self.submit(DynamicChange::SetWeight { u, v, w })?;
        self.drain_changes().map(|_| ())
    }

    fn exec_set_edge_weight(
        &mut self,
        u: VertexId,
        v: VertexId,
        w: Weight,
    ) -> Result<(), CoreError> {
        let old = self
            .graph
            .edge_weight(u, v)
            .ok_or(CoreError::Graph(aaa_graph::GraphError::MissingEdge { u, v }))?;
        self.graph.set_weight(u, v, w)?;
        self.cluster.broadcast(
            0,
            move |_| (u, v, w),
            |_| 12,
            |_, s, &(a, b, w)| s.reweight_edge(a, b, w),
        );
        if w < old {
            self.relax_single_edge(u, v, w);
        } else if w > old {
            self.partial_restart();
        }
        self.changes_applied += 1;
        Ok(())
    }

    /// Dynamic edge deletion (simplified variant of the authors' deletion
    /// algorithm [10]): the decomposition and DV columns are kept, but
    /// every rank recomputes its rows from its local sub-graph and the RC
    /// phase re-converges — a partial restart that reuses the anytime
    /// structure rather than the stale distances. Routed through the
    /// ingest log.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), CoreError> {
        self.submit(DynamicChange::RemoveEdge { u, v })?;
        self.drain_changes().map(|_| ())
    }

    fn exec_remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), CoreError> {
        self.graph.remove_edge(u, v)?;
        self.cluster.broadcast(0, move |_| (u, v), |_| 8, |_, s, &(a, b)| s.erase_edge(a, b));
        self.partial_restart();
        self.changes_applied += 1;
        Ok(())
    }

    fn relax_single_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        let ou = self.partition.part_of(u) as usize;
        let ov = self.partition.part_of(v) as usize;
        self.cluster.broadcast(
            ou,
            move |s: &mut RankState| (u, s.row_for_broadcast(u)),
            |(_, r): &(VertexId, Vec<_>)| 8 + 4 * r.len(),
            |_, s, m| s.stash_row(m.0, &m.1),
        );
        self.cluster.broadcast(
            ov,
            move |s: &mut RankState| (v, s.row_for_broadcast(v)),
            |(_, r): &(VertexId, Vec<_>)| 8 + 4 * r.len(),
            |_, s, m| s.stash_row(m.0, &m.1),
        );
        self.cluster.step(move |_, s| {
            s.apply_edge_relax(u, v, w);
            s.relax_pending();
            s.clear_gathered();
        });
    }

    fn partial_restart(&mut self) {
        self.cluster.step(|_, s| s.recompute_from_scratch());
    }

    // ----------------------------------------------------------------
    // Checkpoint & recovery (anytime persistence)
    // ----------------------------------------------------------------

    /// Captures the engine's complete state as an in-memory [`Snapshot`]:
    /// graph, partition, per-rank DV matrices with dirty masks, RC step
    /// counter, change-stream cursor, and run statistics. Must be called
    /// at a superstep barrier (i.e. between `rc_step`s / `apply_*`s),
    /// which every public entry point guarantees. Pending (undrained)
    /// ingest changes are **not** persisted — drain first if they must
    /// survive the snapshot.
    pub fn snapshot(&mut self) -> Snapshot {
        let observing = self.cluster.observing();
        let wall0 = if observing { self.cluster.wall_now_us() } else { 0.0 };
        self.cluster.record_checkpoint();
        let ranks: Vec<RankSnapshot> =
            self.cluster.ranks_mut().iter().map(|s| s.to_snapshot()).collect();
        if observing {
            // An instant on the simulated clock (snapshotting is driver
            // work, not priced cluster time); real cost rides in wall_dur.
            self.cluster.emit(SpanEvent {
                kind: SpanKind::Checkpoint,
                rank: DRIVER_LANE,
                superstep: self.rc_steps as u64,
                sim_start_us: self.cluster.sim_now_us(),
                sim_dur_us: 0.0,
                wall_start_us: wall0,
                wall_dur_us: self.cluster.wall_now_us() - wall0,
                messages: 0,
                bytes: 0,
            });
        }
        Snapshot {
            meta: EngineMeta {
                procs: self.config.procs as u32,
                rc_steps: self.rc_steps as u64,
                rr_cursor: self.rr_cursor as u64,
                changes_applied: self.changes_applied,
            },
            graph: GraphSnapshot {
                num_vertices: self.graph.num_vertices() as u64,
                edges: self.graph.edges().collect(),
            },
            partition: PartitionSnapshot {
                k: self.config.procs as u32,
                assignment: self.partition.assignment().to_vec(),
            },
            stats: *self.cluster.stats(),
            ranks,
            metrics: self.metrics.extra_kinds().iter().map(|k| k.wire_id()).collect(),
        }
    }

    /// Serializes a snapshot of the engine into `w` using the versioned
    /// binary format (see the `aaa-checkpoint` crate docs).
    pub fn checkpoint(&mut self, w: impl Write) -> Result<(), CoreError> {
        self.snapshot().write_to(w)?;
        Ok(())
    }

    /// [`AnytimeEngine::checkpoint`] into a byte buffer.
    pub fn checkpoint_bytes(&mut self) -> Result<Vec<u8>, CoreError> {
        Ok(self.snapshot().to_bytes()?)
    }

    /// Reconstructs an engine from a serialized snapshot. The DD and IA
    /// phases are *not* re-run: ownership and adjacency are rebuilt
    /// deterministically from the snapshot's graph + partition sections,
    /// and DV rows come straight from the snapshot, so the restored
    /// engine resumes exactly where [`AnytimeEngine::checkpoint`] left
    /// off. `config.procs` must match the snapshot.
    pub fn restore(r: impl Read, config: EngineConfig) -> Result<Self, CoreError> {
        let snap = Snapshot::read_from(r)?;
        Self::from_snapshot(&snap, config)
    }

    /// [`AnytimeEngine::restore`] from an in-memory [`Snapshot`]. The
    /// restored engine starts with a fresh (empty) ingest log and a fresh
    /// publish cell whose first epoch is the snapshot's answer.
    pub fn from_snapshot(snap: &Snapshot, config: EngineConfig) -> Result<Self, CoreError> {
        if config.procs != snap.meta.procs as usize {
            return Err(CoreError::Config(format!(
                "snapshot was taken with {} procs but config requests {}",
                snap.meta.procs, config.procs
            )));
        }
        if snap.partition.assignment.len() as u64 != snap.graph.num_vertices {
            return Err(CoreError::Checkpoint(CheckpointError::Malformed(format!(
                "partition covers {} vertices but graph has {}",
                snap.partition.assignment.len(),
                snap.graph.num_vertices
            ))));
        }
        let mut graph = AdjGraph::with_vertices(snap.graph.num_vertices as usize);
        for &(u, v, w) in &snap.graph.edges {
            graph.add_edge(u, v, w)?;
        }
        let partition =
            Partition::new(snap.partition.assignment.clone(), snap.partition.k as usize)?;
        let owner: Vec<PartId> = partition.assignment().to_vec();
        let mut states: Vec<RankState> = (0..config.procs)
            .map(|r| RankState::build(r, owner.clone(), |v| graph.neighbors(v).to_vec()))
            .collect();
        for (r, s) in states.iter_mut().enumerate() {
            config.configure_state(s);
            if let Some(rs) = snap.rank(r) {
                s.restore_from_snapshot(rs);
            }
        }
        let mut cluster = Cluster::new(states, config.cluster);
        cluster.restore_stats(snap.stats);
        cluster.record_restore();
        let publish_bounds = config.publish_bounds;
        // Union of the config's metrics and what the snapshot was
        // maintaining: restoring never silently drops a metric the
        // checkpointed engine carried. Unknown wire ids (from a future
        // format revision) are rejected rather than ignored.
        let mut kinds = config.metrics.clone();
        for &id in &snap.metrics {
            kinds.push(MetricKind::from_wire_id(id).ok_or_else(|| {
                CoreError::Checkpoint(CheckpointError::Malformed(format!(
                    "snapshot lists unknown metric wire id {id}"
                )))
            })?);
        }
        // Extra-metric state is not persisted; MetricSet starts fresh, so
        // the first publish below rebuilds it from the restored DV rows.
        let metrics = MetricSet::from_kinds(&kinds);
        let mut engine = Self {
            graph,
            partition,
            cluster,
            config,
            rc_steps: snap.meta.rc_steps as usize,
            rr_cursor: snap.meta.rr_cursor as usize,
            changes_applied: snap.meta.changes_applied,
            changes: ChangeLog::new(),
            publisher: Publisher::new(publish_bounds),
            metrics,
        };
        engine.publish_view(false);
        Ok(engine)
    }

    /// Arms the fault injector: the chosen rank "dies" at the barrier
    /// before the chosen superstep, surfacing as
    /// [`aaa_runtime::ClusterError::RankFailed`] from the `_checked`
    /// stepping entry points.
    pub fn inject_fault(&mut self, plan: FaultPlan) {
        self.cluster.inject_fault(plan);
    }

    /// The armed fault, if any (it is consumed when it fires).
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.cluster.fault_plan()
    }

    /// Arms the chaos layer: every subsequent cross-rank message is subject
    /// to the plan's seeded drop/duplicate/delay/corrupt/stall faults (see
    /// `aaa_runtime::chaos`). [`ChaosPlan::none`] disarms it — the cluster
    /// then takes its original fast routing path, so an unarmed engine pays
    /// nothing for this feature.
    pub fn set_chaos(&mut self, plan: ChaosPlan) {
        self.cluster.set_chaos(plan);
    }

    /// The armed chaos plan, if any.
    pub fn chaos_plan(&self) -> Option<ChaosPlan> {
        self.cluster.chaos_plan()
    }

    /// [`AnytimeEngine::rc_step`] with fault detection: returns
    /// `Err(CoreError::Cluster(RankFailed))` if the armed fault fires at
    /// this barrier, or a chaos incident (`MessageCorrupted`,
    /// `RankStalled`) if the chaos layer injected a *detectable* fault
    /// during the step. Either way the engine stays intact: the caller can
    /// recover the failed rank via [`AnytimeEngine::recover_rank`], or
    /// retry the step — which [`AnytimeEngine::run_supervised`] automates.
    /// Drains the ingest log first, propagating its errors.
    pub fn rc_step_checked(&mut self) -> Result<bool, CoreError> {
        self.drain_changes()?;
        self.cluster.poll_fault()?;
        let more = self.rc_step();
        self.cluster.poll_chaos()?;
        Ok(more)
    }

    /// Fault-aware [`AnytimeEngine::run_to_convergence`].
    pub fn run_to_convergence_checked(&mut self) -> Result<ConvergenceSummary, CoreError> {
        Ok(self
            .drive(DriveSpec {
                checked: true,
                checkpoint: CheckpointPolicy::Manual,
                on_checkpoint: None,
                supervised: None,
            })?
            .summary)
    }

    /// Runs RC to convergence, handing serialized snapshots to `sink`
    /// whenever `policy` says one is due. Snapshots are taken at the
    /// superstep barrier after an RC step, where rank state is globally
    /// consistent. Fault-aware like [`AnytimeEngine::rc_step_checked`].
    pub fn run_to_convergence_checkpointed(
        &mut self,
        policy: CheckpointPolicy,
        mut sink: impl FnMut(&[u8]),
    ) -> Result<ConvergenceSummary, CoreError> {
        Ok(self
            .drive(DriveSpec {
                checked: true,
                checkpoint: policy,
                on_checkpoint: Some(&mut sink),
                supervised: None,
            })?
            .summary)
    }

    /// Supervised convergence: [`AnytimeEngine::run_to_convergence`] under
    /// a retry/backoff/fallback supervisor, with a **degraded-mode answer**
    /// instead of an error when recovery is impossible.
    ///
    /// The loop reacts to the three ways the chaos layer can hurt a run:
    ///
    /// * **Detected incidents** (`MessageCorrupted`, `RankStalled`) — charge
    ///   the policy's simulated backoff (plus the stall-detection deadline),
    ///   mark every row for resend, and retry. Min-merge is idempotent, so
    ///   re-announcing rows is always safe. `max_attempts` bounds
    ///   *consecutive* faulty barriers; a clean step resets the counter.
    /// * **Silent faults** (drops, delays) — invisible at the barrier, so
    ///   quiescence cannot be trusted on its word. At quiescence the
    ///   supervisor first drains any still-delayed messages, then compares
    ///   the injected-fault counters against the last verified total; if
    ///   they moved, it runs a **verification pass** (full resend) before
    ///   accepting the fixed point. Convergence is declared only after a
    ///   quiescent round with no new faults and nothing in flight.
    /// * **Exhausted retries** — fall back to the snapshot taken at entry
    ///   (`max_fallbacks` times), rebuilding the engine and re-arming the
    ///   chaos/fault plans. When that budget is gone too, give up and
    ///   return `Ok` with a [`DegradedReport`]: the current closeness
    ///   estimate plus certified per-vertex error bounds — the anytime
    ///   answer under unrecoverable faults.
    ///
    /// Injected **rank failures** ([`FaultPlan`]) still surface as
    /// `Err(RankFailed)` — crash recovery needs the caller's checkpoint
    /// and stays on the [`AnytimeEngine::recover_rank`] path.
    pub fn run_supervised(&mut self, retry: &RetryPolicy) -> Result<SupervisedRun, CoreError> {
        self.drive(DriveSpec {
            checked: true,
            checkpoint: CheckpointPolicy::Manual,
            on_checkpoint: None,
            supervised: Some(retry),
        })
    }

    /// The unified convergence driver behind every `run_*` entry point:
    /// one loop, parameterized by [`DriveSpec`], that drains the ingest
    /// log, steps RC, takes due checkpoints, and (when supervised) runs
    /// the retry/verification/fallback ladder.
    fn drive(&mut self, mut spec: DriveSpec<'_>) -> Result<SupervisedRun, CoreError> {
        // Drain before the fallback snapshot below: applied changes land in
        // the snapshot, so a restore cannot silently lose them. `submit`
        // needs `&mut self`, so nothing can enqueue mid-run — the log stays
        // empty for the rest of the loop.
        self.drain_changes()?;
        // The fallback snapshot is only worth its cost under chaos; an
        // unarmed run must behave exactly like `run_to_convergence`.
        let fallback = match spec.supervised {
            Some(retry) if self.cluster.chaos_plan().is_some() && retry.max_fallbacks > 0 => {
                Some(self.snapshot())
            }
            _ => None,
        };
        let mut attempts: u32 = 0;
        let mut retries: u64 = 0;
        let mut fallbacks: u32 = 0;
        let mut verification_passes: u64 = 0;
        let mut faults_seen = self.stats().faults.injected();
        let mut steps = 0usize;
        loop {
            if steps >= self.config.max_rc_steps {
                return Ok(if spec.supervised.is_some() {
                    self.degraded_run(
                        steps,
                        retries,
                        fallbacks,
                        verification_passes,
                        DegradedReason::StepBudgetExhausted,
                    )
                } else {
                    SupervisedRun {
                        summary: ConvergenceSummary { steps, converged: false },
                        retries,
                        fallbacks,
                        verification_passes,
                        degraded: None,
                    }
                });
            }
            steps += 1;
            let stepped = if spec.checked { self.rc_step_checked() } else { Ok(self.rc_step()) };
            match stepped {
                Ok(more) => {
                    attempts = 0;
                    if spec.checkpoint.due_after_rc_step(self.rc_steps) {
                        let bytes = self.checkpoint_bytes()?;
                        if let Some(sink) = spec.on_checkpoint.as_mut() {
                            sink(&bytes);
                        }
                    }
                    if more {
                        continue;
                    }
                    if spec.supervised.is_some() {
                        // Quiescence claimed. Delayed messages still in
                        // flight can reopen work — keep stepping until the
                        // queue drains (each step advances the delay clock).
                        if self.cluster.has_undelivered() {
                            continue;
                        }
                        // Silent drops leave no incident; only the counters
                        // move. Verify the fixed point with a full resend if
                        // anything was injected since the last verified
                        // total.
                        let injected_now = self.stats().faults.injected();
                        if injected_now != faults_seen {
                            faults_seen = injected_now;
                            verification_passes += 1;
                            if self.cluster.observing() {
                                self.cluster.emit(SpanEvent::instant(
                                    SpanKind::Verification,
                                    DRIVER_LANE,
                                    steps as u64,
                                    self.cluster.sim_now_us(),
                                    self.cluster.wall_now_us(),
                                ));
                            }
                            self.resend_all();
                            continue;
                        }
                    }
                    return Ok(SupervisedRun {
                        summary: ConvergenceSummary { steps, converged: true },
                        retries,
                        fallbacks,
                        verification_passes,
                        degraded: None,
                    });
                }
                Err(CoreError::Cluster(
                    incident @ (ClusterError::MessageCorrupted { .. }
                    | ClusterError::RankStalled { .. }),
                )) if spec.supervised.is_some() => {
                    let retry = spec.supervised.expect("guarded by is_some");
                    attempts += 1;
                    retries += 1;
                    let seed = self.cluster.chaos_plan().map_or(0, |p| p.seed);
                    let mut wait = retry.backoff_jittered_us(attempts, seed);
                    if matches!(incident, ClusterError::RankStalled { .. }) {
                        wait += retry.deadline_us;
                    }
                    if self.cluster.observing() {
                        // The backoff is real simulated network time: a span
                        // of exactly the charged wait.
                        self.cluster.emit(SpanEvent {
                            kind: SpanKind::Retry,
                            rank: DRIVER_LANE,
                            superstep: steps as u64,
                            sim_start_us: self.cluster.sim_now_us(),
                            sim_dur_us: wait,
                            wall_start_us: self.cluster.wall_now_us(),
                            wall_dur_us: 0.0,
                            messages: 0,
                            bytes: 0,
                        });
                    }
                    self.cluster.charge_comm_us(wait);
                    if attempts > retry.max_attempts {
                        if fallbacks < retry.max_fallbacks {
                            if let Some(snap) = &fallback {
                                self.fallback_restore(snap)?;
                                fallbacks += 1;
                                attempts = 0;
                                // Stats were rewound to the snapshot.
                                faults_seen = self.stats().faults.injected();
                                continue;
                            }
                        }
                        return Ok(self.degraded_run(
                            steps,
                            retries,
                            fallbacks,
                            verification_passes,
                            DegradedReason::RetriesExhausted { last: incident },
                        ));
                    }
                    self.resend_all();
                }
                // Rank failures (and everything else) are not retryable
                // here — they need the caller's checkpoint.
                Err(e) => return Err(e),
            }
        }
    }

    /// Marks every row on every rank for resend and accounts the repair
    /// traffic as retransmissions.
    fn resend_all(&mut self) {
        let per_rank = self.cluster.step(|_, s| {
            s.mark_all_for_resend();
            s.local_vertices().len() as u64
        });
        self.cluster.record_retransmits(per_rank.into_iter().sum());
    }

    /// Rebuilds the engine from `snap` and re-arms the chaos and fault
    /// plans — and the event sink — none of which live in the snapshot
    /// (they belong to the replaced cluster). The publish cell and ingest
    /// log survive the rebuild: readers keep their handle, epochs keep
    /// increasing, and pending changes stay queued.
    fn fallback_restore(&mut self, snap: &Snapshot) -> Result<(), CoreError> {
        let chaos = self.cluster.chaos_plan();
        let fault = self.cluster.fault_plan();
        let sink = self.cluster.sink();
        let mut publisher =
            std::mem::replace(&mut self.publisher, Publisher::new(BoundsMode::None));
        // The graph is about to be rewound; certified bounds must rebuild.
        publisher.invalidate_cache();
        let changes = std::mem::take(&mut self.changes);
        *self = Self::from_snapshot(snap, self.config.clone())?;
        self.publisher = publisher;
        // The kept publisher still holds the pre-rewind extra-metric
        // columns, while `from_snapshot` already synced its fresh metric
        // state to a publisher we just discarded. Start the metric state
        // over so the publish below restates every extra column in full
        // against the surviving view.
        self.metrics = MetricSet::from_kinds(&self.metrics.extra_kinds());
        self.changes = changes;
        self.cluster.set_sink(sink);
        if let Some(c) = chaos {
            self.cluster.set_chaos(c);
        }
        if let Some(f) = fault {
            self.cluster.inject_fault(f);
        }
        if self.cluster.observing() {
            self.cluster.emit(SpanEvent::instant(
                SpanKind::Restore,
                DRIVER_LANE,
                self.rc_steps as u64,
                self.cluster.sim_now_us(),
                self.cluster.wall_now_us(),
            ));
        }
        // Restart announcement flow from the restored rows, and let readers
        // see the rewound answer as a fresh epoch.
        self.resend_all();
        self.publish_view(false);
        Ok(())
    }

    /// Assembles the degraded-mode answer from the engine's current state.
    fn degraded_run(
        &mut self,
        steps: usize,
        retries: u64,
        fallbacks: u32,
        verification_passes: u64,
        reason: DegradedReason,
    ) -> SupervisedRun {
        let estimate = self.closeness();
        let rows = self.distances();
        let bound = degraded_closeness_bounds(&self.graph, &rows);
        SupervisedRun {
            summary: ConvergenceSummary { steps, converged: false },
            retries,
            fallbacks,
            verification_passes,
            degraded: Some(DegradedReport {
                reason,
                rc_steps: self.rc_steps,
                faults: self.stats().faults,
                estimate,
                bound,
            }),
        }
    }

    /// Rebuilds a failed rank from the last checkpoint and re-enters RC.
    ///
    /// The failed rank's state is reconstructed from the *current* graph
    /// and partition (ownership/adjacency are derivable), re-seeded with
    /// the local-subgraph Dijkstra bounds, and then overlaid with the
    /// snapshot's rows for that rank — each an upper bound on the true
    /// distance, since DV entries only ever decrease. Every rank then
    /// marks all rows for resend, so subsequent RC steps min-merge the
    /// recovered rank back to the same unique fixed point (replay
    /// safety). The snapshot may be older than the failure point (j ≤ k):
    /// monotonicity makes replaying the gap safe, just not free.
    pub fn recover_rank(&mut self, rank: usize, snap: &Snapshot) -> Result<(), CoreError> {
        if rank >= self.config.procs {
            return Err(CoreError::Config(format!(
                "cannot recover rank {rank}: engine has {} ranks",
                self.config.procs
            )));
        }
        if snap.meta.procs as usize != self.config.procs {
            return Err(CoreError::Config(format!(
                "snapshot has {} ranks but engine has {}",
                snap.meta.procs, self.config.procs
            )));
        }
        let started = std::time::Instant::now();
        let owner: Vec<PartId> = self.partition.assignment().to_vec();
        let graph = &self.graph;
        let mut fresh = RankState::build(rank, owner, |v| graph.neighbors(v).to_vec());
        self.config.configure_state(&mut fresh);
        fresh.initial_approximation();
        if let Some(rs) = snap.rank(rank) {
            // Merge, don't replace: the snapshot may predate edges the IA
            // pass just learned about (see `absorb_snapshot`).
            fresh.absorb_snapshot(rs);
        }
        let rebuild_us = started.elapsed().as_secs_f64() * 1e6;
        self.cluster.ranks_mut()[rank] = fresh;
        if self.cluster.observing() {
            // The rebuild runs on the recovered rank's lane.
            self.cluster.emit(SpanEvent {
                kind: SpanKind::Recovery,
                rank: rank as i64,
                superstep: self.rc_steps as u64,
                sim_start_us: self.cluster.sim_now_us(),
                sim_dur_us: rebuild_us,
                wall_start_us: self.cluster.wall_now_us() - rebuild_us,
                wall_dur_us: rebuild_us,
                messages: 0,
                bytes: 0,
            });
        }
        // The rebuild is real recovery work — charge it to the cluster
        // clock — and the resend pass below is a priced superstep.
        self.cluster.charge_compute_us(rebuild_us);
        self.cluster.step(|_, s| s.mark_all_for_resend());
        self.cluster.record_restore();
        // The recovered rank's rows were rewound to the snapshot; cached
        // per-source metric state derived from the old rows is stale.
        self.metrics.invalidate_all();
        self.publish_view(false);
        Ok(())
    }
}

/// Max/mean busy-time ratio over ranks — the measured-load skew the
/// rebalancer can opt into ([`RebalanceConfig::use_measured`]). `None`
/// until any busy time has accrued (e.g. before the first superstep).
fn rank_skew(busy_us: &[f64]) -> Option<f64> {
    let total: f64 = busy_us.iter().sum();
    if busy_us.is_empty() || total <= 0.0 {
        return None;
    }
    let mean = total / busy_us.len() as f64;
    let max = busy_us.iter().cloned().fold(0.0, f64::max);
    Some(max / mean)
}
