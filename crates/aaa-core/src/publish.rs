//! The **publish layer**: immutable, epoch-stamped views of the engine's
//! current answer, behind an atomically swappable handle.
//!
//! The anytime contract (§III) promises a usable answer *at every moment*
//! while the compute loop runs. The engine delivers that by publishing a
//! fresh [`PublishedView`] — closeness values plus optional certified
//! per-vertex error bounds — after construction, every RC step, every
//! drain, and every restore. Views are immutable once published and are
//! handed to readers as `Arc` clones out of a [`ViewCell`], so any number
//! of concurrent readers can query without locking the engine and can
//! never observe a torn (partially written) answer: a reader holds either
//! the complete previous epoch or the complete new one.
//!
//! Publishing is *driver-side* work (the orchestrator reading rank memory
//! it co-hosts, like checkpointing): it charges no supersteps, messages,
//! or simulated time, which is what keeps the pinned perf-gate metrics
//! at +0.00% across the pipeline split.

use crate::quality::CertifiedBoundsCache;
use aaa_graph::closeness::top_k;
use aaa_graph::{AdjGraph, VertexId};
use std::sync::{Arc, RwLock};

/// What quality label each published epoch carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundsMode {
    /// Publish closeness only (no per-vertex bounds). The default: zero
    /// extra cost per epoch.
    #[default]
    None,
    /// Publish certified per-vertex error bounds alongside closeness, via
    /// [`CertifiedBoundsCache`] (n BFS per graph version, amortized over
    /// epochs). Bounds are sound at every epoch and non-increasing across
    /// epochs on a quiescing run.
    Certified,
}

/// One immutable published answer. Readers obtain views via
/// [`ViewCell::load`] and keep them alive as long as they like; the engine
/// never mutates a view after publishing it.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishedView {
    /// Strictly-increasing epoch id (0 = the pre-construction empty view).
    pub epoch: u64,
    /// RC steps the engine had completed when this view was published.
    pub rc_steps: usize,
    /// Dynamic changes applied when this view was published.
    pub changes_applied: u64,
    /// Whether the engine had reached quiescence at publish time.
    pub converged: bool,
    closeness: Vec<f64>,
    /// Per-vertex certified bound on `|exact − closeness|`; empty under
    /// [`BoundsMode::None`].
    bounds: Vec<f64>,
}

impl PublishedView {
    /// The empty epoch-0 view (what a cell holds before first publish).
    pub fn empty() -> Self {
        Self {
            epoch: 0,
            rc_steps: 0,
            changes_applied: 0,
            converged: false,
            closeness: Vec::new(),
            bounds: Vec::new(),
        }
    }

    /// Number of vertices covered by this view.
    pub fn num_vertices(&self) -> usize {
        self.closeness.len()
    }

    /// Point lookup: closeness of `v`, or `None` out of range.
    pub fn point(&self, v: VertexId) -> Option<f64> {
        self.closeness.get(v as usize).copied()
    }

    /// The full closeness vector.
    pub fn closeness(&self) -> &[f64] {
        &self.closeness
    }

    /// The `k` most central vertices with their closeness, ties broken by
    /// vertex id.
    pub fn top_k(&self, k: usize) -> Vec<(VertexId, f64)> {
        top_k(&self.closeness, k).into_iter().map(|v| (v, self.closeness[v as usize])).collect()
    }

    /// Whether this view carries certified per-vertex bounds.
    pub fn has_bounds(&self) -> bool {
        !self.bounds.is_empty()
    }

    /// Certified bound on `|exact − closeness|` for `v`. `None` when the
    /// view was published without bounds or `v` is out of range.
    pub fn error_bound(&self, v: VertexId) -> Option<f64> {
        self.bounds.get(v as usize).copied()
    }

    /// The full bounds vector (empty under [`BoundsMode::None`]).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

/// The swappable handle readers share: an `ArcSwap`-style cell holding the
/// latest [`PublishedView`].
///
/// `load` takes a read lock only long enough to clone the inner `Arc`
/// (~tens of nanoseconds), so unbounded concurrent readers scale; `store`
/// swaps the whole `Arc` under the write lock, so a reader sees either
/// the old complete view or the new complete view — never a mix.
#[derive(Debug)]
pub struct ViewCell {
    slot: RwLock<Arc<PublishedView>>,
}

impl ViewCell {
    pub fn new(initial: PublishedView) -> Self {
        Self { slot: RwLock::new(Arc::new(initial)) }
    }

    /// The latest published view. Never blocks on the compute loop — only
    /// on the instant of an `Arc` swap.
    pub fn load(&self) -> Arc<PublishedView> {
        self.slot.read().expect("view lock poisoned").clone()
    }

    /// Atomically replaces the published view.
    pub fn store(&self, view: Arc<PublishedView>) {
        *self.slot.write().expect("view lock poisoned") = view;
    }
}

impl Default for ViewCell {
    fn default() -> Self {
        Self::new(PublishedView::empty())
    }
}

/// The engine-side writer half of the publish layer: mints epochs, owns
/// the bounds cache, and swaps finished views into the shared [`ViewCell`].
#[derive(Debug)]
pub struct Publisher {
    cell: Arc<ViewCell>,
    epoch: u64,
    mode: BoundsMode,
    /// Lazily (re)built per graph version under [`BoundsMode::Certified`];
    /// invalidated by the engine on any structural change.
    cache: Option<CertifiedBoundsCache>,
}

impl Publisher {
    pub fn new(mode: BoundsMode) -> Self {
        Self { cell: Arc::new(ViewCell::default()), epoch: 0, mode, cache: None }
    }

    /// The shared handle readers should clone.
    pub fn cell(&self) -> Arc<ViewCell> {
        self.cell.clone()
    }

    /// The latest published view (what `cell().load()` would return).
    pub fn latest(&self) -> Arc<PublishedView> {
        self.cell.load()
    }

    /// Bounds mode in effect.
    pub fn mode(&self) -> BoundsMode {
        self.mode
    }

    /// Epochs minted so far (== the epoch of the latest published view).
    pub fn epochs_minted(&self) -> u64 {
        self.epoch
    }

    /// Drops the bounds cache; the next certified publish rebuilds it.
    /// Called by the engine whenever the graph structure changes.
    pub fn invalidate_cache(&mut self) {
        self.cache = None;
    }

    /// The bounds cache for the current graph, building it if needed.
    pub fn cache_for(&mut self, graph: &AdjGraph) -> &CertifiedBoundsCache {
        if self.cache.as_ref().map(|c| c.n()) != Some(graph.num_vertices()) {
            self.cache = None;
        }
        self.cache.get_or_insert_with(|| CertifiedBoundsCache::new(graph))
    }

    /// Publishes a new epoch. `bounds` must be empty under
    /// [`BoundsMode::None`] and vertex-aligned under `Certified`.
    pub fn publish(
        &mut self,
        rc_steps: usize,
        changes_applied: u64,
        converged: bool,
        closeness: Vec<f64>,
        bounds: Vec<f64>,
    ) -> Arc<PublishedView> {
        self.epoch += 1;
        let view = Arc::new(PublishedView {
            epoch: self.epoch,
            rc_steps,
            changes_applied,
            converged,
            closeness,
            bounds,
        });
        self.cell.store(view.clone());
        view
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_strictly_increasing_and_views_immutable() {
        let mut p = Publisher::new(BoundsMode::None);
        let cell = p.cell();
        assert_eq!(cell.load().epoch, 0);
        let v1 = p.publish(1, 0, false, vec![0.5, 0.25], Vec::new());
        let held = cell.load();
        assert_eq!(held.epoch, 1);
        let v2 = p.publish(2, 0, true, vec![0.6, 0.25], Vec::new());
        assert_eq!(v2.epoch, 2);
        // The reader's old handle is untouched by the new publish.
        assert_eq!(held.point(0), Some(0.5));
        assert_eq!(cell.load().point(0), Some(0.6));
        assert!(v1.epoch < v2.epoch);
        assert_eq!(p.epochs_minted(), 2);
    }

    #[test]
    fn view_queries() {
        let mut p = Publisher::new(BoundsMode::Certified);
        let v = p.publish(3, 2, false, vec![0.1, 0.9, 0.4], vec![0.05, 0.0, 0.2]);
        assert_eq!(v.num_vertices(), 3);
        assert_eq!(v.point(1), Some(0.9));
        assert_eq!(v.point(9), None);
        assert_eq!(v.top_k(2), vec![(1, 0.9), (2, 0.4)]);
        assert!(v.has_bounds());
        assert_eq!(v.error_bound(2), Some(0.2));
        assert_eq!(v.error_bound(7), None);
        assert_eq!(v.rc_steps, 3);
        assert_eq!(v.changes_applied, 2);
        let empty = PublishedView::empty();
        assert!(!empty.has_bounds());
        assert_eq!(empty.point(0), None);
        assert!(empty.top_k(3).is_empty());
    }

    #[test]
    fn cache_rebuilds_on_size_change_and_invalidation() {
        use aaa_graph::AdjGraph;
        let mut g = AdjGraph::with_vertices(3);
        g.add_edge(0, 1, 1).unwrap();
        let mut p = Publisher::new(BoundsMode::Certified);
        assert_eq!(p.cache_for(&g).n(), 3);
        let g2 = AdjGraph::with_vertices(5);
        assert_eq!(p.cache_for(&g2).n(), 5, "size mismatch must rebuild");
        p.invalidate_cache();
        assert_eq!(p.cache_for(&g2).n(), 5);
    }

    #[test]
    fn concurrent_readers_never_see_a_torn_view() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut p = Publisher::new(BoundsMode::None);
        let cell = p.cell();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut last_epoch = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = cell.load();
                        // Epoch k publishes a constant vector of k's value;
                        // a torn view would mix values from two epochs.
                        assert!(v.closeness().iter().all(|&c| c == v.epoch as f64));
                        assert!(v.epoch >= last_epoch, "epoch went backwards");
                        last_epoch = v.epoch;
                    }
                })
            })
            .collect();
        for e in 1..=200u64 {
            p.publish(e as usize, 0, false, vec![e as f64; 64], Vec::new());
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
        assert_eq!(cell.load().epoch, 200);
    }
}
