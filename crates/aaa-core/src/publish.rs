//! The **publish layer**: immutable, epoch-stamped views of the engine's
//! current answer, behind an atomically swappable handle.
//!
//! The anytime contract (§III) promises a usable answer *at every moment*
//! while the compute loop runs. The engine delivers that by publishing a
//! fresh [`PublishedView`] — closeness values plus optional certified
//! per-vertex error bounds — after construction, every RC step, every
//! drain, and every restore. Views are immutable once published and are
//! handed to readers as `Arc` clones out of a [`ViewCell`], so any number
//! of concurrent readers can query without locking the engine and can
//! never observe a torn (partially written) answer: a reader holds either
//! the complete previous epoch or the complete new one.
//!
//! Publishing is *driver-side* work (the orchestrator reading rank memory
//! it co-hosts, like checkpointing): it charges no supersteps, messages,
//! or simulated time, which is what keeps the pinned perf-gate metrics
//! at +0.00% across the pipeline split.
//!
//! # Delta publication (S30)
//!
//! A typical epoch dirties only a small fraction of DV rows, so rebuilding
//! the whole closeness vector per publish is `O(n)` wasted work. The
//! publisher instead consumes a [`ViewDelta`] — the changed vertex ids
//! with their new values, derived from the arena's epoch-dirty bitsets —
//! and builds the next view by **structural sharing**: closeness (and
//! bounds) live in fixed-size chunks behind per-chunk `Arc`s, and only
//! chunks containing a changed row are copied. Unchanged memory is shared
//! across epochs, readers stay lock-free and torn-free exactly as before,
//! and publish cost is `O(changed)` instead of `O(n)`.
//!
//! A maintained top-k index (bounded, threshold-pruned, ordered
//! best-first with deterministic id tie-breaks) is updated per delta in
//! `O(Δ·log k)`, so [`PublishedView::top_k`] serves from a per-view
//! snapshot in `O(k)` instead of rescanning all `n` vertices.
//! [`PublishedView::top_k_rescan`] keeps the full scan as a debug oracle.
//!
//! # Multiple metrics per epoch (S31)
//!
//! A view always carries the closeness primary; configured extra metrics
//! (today: incremental betweenness, see [`crate::metric`]) ride the same
//! epoch as additional columns, each with its own chunked store and
//! maintained top-k index. The legacy single-metric entry points
//! ([`Publisher::publish`], [`Publisher::publish_changes`]) forward to the
//! `_with` variants with no extras and are **bit-identical** to the
//! pre-S31 publisher — same views, same stats, same wire bytes (the
//! closeness-only delta still encodes as `NetMsg::ViewDelta`; only
//! multi-metric deltas use the new `NetMsg::ViewDeltaMulti`).
//! [`PublishStats`] deliberately counts the closeness column only, so the
//! committed perf-gate baselines are unaffected by extras.

use crate::metric::{MetricKind, MetricMask};
use crate::net::NetMsg;
use crate::quality::CertifiedBoundsCache;
use aaa_graph::closeness::top_k;
use aaa_graph::{AdjGraph, VertexId};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Instant;

/// Vertices per closeness chunk. Power of two so the row → chunk map is a
/// shift; small enough that ~1% dirty rows on a large graph still share
/// most chunks, large enough that per-chunk `Arc` overhead is noise.
pub const CHUNK_VERTICES: usize = 1024;

/// How many top entries each view snapshots for `O(k)` serving. `top_k`
/// calls with `k` beyond this fall back to the rescan oracle.
pub const TOPK_SERVE_CAP: usize = 128;

/// Internal index capacity: twice the serve cap, so most displacements
/// drain slack instead of forcing an immediate rebuild scan.
const TOPK_INDEX_CAP: usize = 2 * TOPK_SERVE_CAP;

/// What quality label each published epoch carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundsMode {
    /// Publish closeness only (no per-vertex bounds). The default: zero
    /// extra cost per epoch.
    #[default]
    None,
    /// Publish certified per-vertex error bounds alongside closeness, via
    /// [`CertifiedBoundsCache`] (n BFS per graph version, amortized over
    /// epochs). Bounds are sound at every epoch and non-increasing across
    /// epochs on a quiescing run.
    Certified,
}

// ---------------------------------------------------------------------------
// Chunked copy-on-write value store
// ---------------------------------------------------------------------------

/// A `Vec<f64>` split into [`CHUNK_VERTICES`]-sized chunks behind
/// per-chunk `Arc`s. [`ChunkedVec::apply`] produces the next version by
/// cloning the chunk list (cheap `Arc` bumps) and materializing only the
/// chunks an entry lands in — the structural sharing that makes per-epoch
/// publication `O(changed)`.
///
/// Invariant: chunk `i` holds exactly `min(CHUNK_VERTICES, len − i·CHUNK)`
/// values, so every chunk except possibly the last is full.
#[derive(Debug, Clone, Default)]
struct ChunkedVec {
    len: usize,
    chunks: Vec<Arc<Vec<f64>>>,
}

impl ChunkedVec {
    fn from_vec(values: Vec<f64>) -> Self {
        let len = values.len();
        let chunks = values.chunks(CHUNK_VERTICES).map(|c| Arc::new(c.to_vec())).collect();
        Self { len, chunks }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn get(&self, i: usize) -> Option<f64> {
        if i >= self.len {
            return None;
        }
        Some(self.chunks[i / CHUNK_VERTICES][i % CHUNK_VERTICES])
    }

    fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.chunks.iter().flat_map(|c| c.iter().copied())
    }

    fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        for c in &self.chunks {
            out.extend_from_slice(c);
        }
        out
    }

    /// The next version: grown to `new_len` (`fill`-padded) with `entries`
    /// (sorted by id) written through copy-on-write. Returns the store
    /// plus how many chunks were materialized vs shared with `self`.
    fn apply(&self, new_len: usize, entries: &[(VertexId, f64)], fill: f64) -> (Self, u64, u64) {
        debug_assert!(new_len >= self.len, "chunked store never shrinks");
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "entries sorted unique");
        let mut chunks = self.chunks.clone();
        let n_chunks = new_len.div_ceil(CHUNK_VERTICES);
        let mut fresh = vec![false; n_chunks];
        if new_len > self.len {
            if self.len % CHUNK_VERTICES != 0 {
                // Top up the old partial tail chunk.
                let last = self.len / CHUNK_VERTICES;
                let mut data = chunks[last].as_ref().clone();
                data.resize(CHUNK_VERTICES.min(new_len - last * CHUNK_VERTICES), fill);
                chunks[last] = Arc::new(data);
                fresh[last] = true;
            }
            while chunks.len() < n_chunks {
                let c = chunks.len();
                chunks.push(Arc::new(vec![fill; CHUNK_VERTICES.min(new_len - c * CHUNK_VERTICES)]));
                fresh[c] = true;
            }
        }
        for &(v, val) in entries {
            debug_assert!((v as usize) < new_len, "entry {v} beyond view length {new_len}");
            let (c, i) = (v as usize / CHUNK_VERTICES, v as usize % CHUNK_VERTICES);
            if !fresh[c] {
                chunks[c] = Arc::new(chunks[c].as_ref().clone());
                fresh[c] = true;
            }
            Arc::get_mut(&mut chunks[c]).expect("freshly materialized chunk")[i] = val;
        }
        let copied = fresh.iter().filter(|&&f| f).count() as u64;
        (Self { len: new_len, chunks }, copied, n_chunks as u64 - copied)
    }
}

impl PartialEq for ChunkedVec {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.chunks.iter().zip(&other.chunks).all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}

// ---------------------------------------------------------------------------
// Maintained top-k index
// ---------------------------------------------------------------------------

/// Serve-rank order: higher closeness first, ties broken by lower vertex
/// id. `total_cmp` makes this a total order even on pathological values,
/// matching the rescan oracle in `aaa_graph::closeness::top_k`.
#[inline]
fn rank_before(a: (f64, VertexId), b: (f64, VertexId)) -> std::cmp::Ordering {
    b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
}

/// Bounded, threshold-pruned index of the best-ranked vertices, ordered
/// best-first under [`rank_before`].
///
/// Invariant: `entries` is the *exact* top-`entries.len()` prefix of the
/// current store — every non-member ranks strictly after `entries.last()`.
/// A delta update removes the member entry for a changed vertex (by its
/// old value) and re-inserts the new value only when it beats the current
/// worst (the threshold prune); displacement past the cap truncates. When
/// removals shrink the index below the serve cap it is rebuilt by one
/// bounded scan, restoring slack up to [`TOPK_INDEX_CAP`].
#[derive(Debug, Clone, Default)]
struct TopKIndex {
    entries: Vec<(f64, VertexId)>,
}

impl TopKIndex {
    fn len(&self) -> usize {
        self.entries.len()
    }

    /// One bounded scan of the whole store: `O(n·log cap)`.
    fn rebuild(&mut self, values: &ChunkedVec) {
        let cap = TOPK_INDEX_CAP.min(values.len());
        self.entries.clear();
        for (v, c) in values.iter().enumerate() {
            let cand = (c, v as VertexId);
            let pos = self
                .entries
                .binary_search_by(|e| rank_before(*e, cand))
                .expect_err("vertex ids are unique");
            if pos < cap {
                self.entries.insert(pos, cand);
                self.entries.truncate(cap);
            }
        }
    }

    /// Applies one delta entry: `old` is the vertex's value in the
    /// previous view (`None` if it is new). `O(log k + k)` worst case
    /// (binary search plus a bounded memmove).
    fn update(&mut self, old: Option<f64>, v: VertexId, new_c: f64) {
        if let Some(oc) = old {
            if let Ok(pos) = self.entries.binary_search_by(|e| rank_before(*e, (oc, v))) {
                self.entries.remove(pos);
            }
        }
        let cand = (new_c, v);
        match self.entries.binary_search_by(|e| rank_before(*e, cand)) {
            Ok(_) => unreachable!("vertex ids are unique"),
            // Beats the current worst member → exactness is preserved by
            // insertion; past-the-end candidates may or may not belong to
            // the true top prefix, so they are pruned (the caller rebuilds
            // if the index underflows the serve cap).
            Err(pos) if pos < self.entries.len() => {
                self.entries.insert(pos, cand);
                self.entries.truncate(TOPK_INDEX_CAP);
            }
            Err(_) => {}
        }
    }

    /// The per-view serve snapshot: the first `TOPK_SERVE_CAP` entries in
    /// serve order, as `(id, closeness)` pairs.
    fn snapshot(&self) -> Vec<(VertexId, f64)> {
        self.entries.iter().take(TOPK_SERVE_CAP).map(|&(c, v)| (v, c)).collect()
    }
}

// ---------------------------------------------------------------------------
// Extra metric columns
// ---------------------------------------------------------------------------

/// One extra metric's column within a view: its chunked value store plus
/// a per-view top-k snapshot under the same [`rank_before`] total order
/// the closeness index uses.
#[derive(Debug, Clone, PartialEq)]
struct MetricColumn {
    kind: MetricKind,
    values: ChunkedVec,
    topk: Arc<Vec<(VertexId, f64)>>,
}

// ---------------------------------------------------------------------------
// Published views
// ---------------------------------------------------------------------------

/// One immutable published answer. Readers obtain views via
/// [`ViewCell::load`] and keep them alive as long as they like; the engine
/// never mutates a view after publishing it.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishedView {
    /// Strictly-increasing epoch id (0 = the pre-construction empty view).
    pub epoch: u64,
    /// RC steps the engine had completed when this view was published.
    pub rc_steps: usize,
    /// Dynamic changes applied when this view was published.
    pub changes_applied: u64,
    /// Whether the engine had reached quiescence at publish time.
    pub converged: bool,
    closeness: ChunkedVec,
    /// Per-vertex certified bound on `|exact − closeness|`; empty under
    /// [`BoundsMode::None`].
    bounds: ChunkedVec,
    /// Exact top-[`TOPK_SERVE_CAP`] prefix in serve order, maintained by
    /// the publisher's index — what makes `top_k` `O(k)`.
    topk: Arc<Vec<(VertexId, f64)>>,
    /// Extra metric columns (wire-id order); empty on closeness-only runs.
    extras: Vec<MetricColumn>,
}

impl PublishedView {
    /// The empty epoch-0 view (what a cell holds before first publish).
    pub fn empty() -> Self {
        Self {
            epoch: 0,
            rc_steps: 0,
            changes_applied: 0,
            converged: false,
            closeness: ChunkedVec::default(),
            bounds: ChunkedVec::default(),
            topk: Arc::new(Vec::new()),
            extras: Vec::new(),
        }
    }

    /// Number of vertices covered by this view.
    pub fn num_vertices(&self) -> usize {
        self.closeness.len()
    }

    /// Point lookup: closeness of `v`, or `None` out of range. `O(1)`.
    pub fn point(&self, v: VertexId) -> Option<f64> {
        self.closeness.get(v as usize)
    }

    /// Batched point lookup against this one consistent epoch.
    pub fn points(&self, ids: &[VertexId]) -> Vec<Option<f64>> {
        ids.iter().map(|&v| self.point(v)).collect()
    }

    /// The full closeness vector, materialized from the chunked store.
    pub fn closeness(&self) -> Vec<f64> {
        self.closeness.to_vec()
    }

    /// The `k` most central vertices with their closeness, ties broken by
    /// vertex id. `O(k)` for `k ≤` [`TOPK_SERVE_CAP`] via the maintained
    /// snapshot; larger `k` falls back to [`PublishedView::top_k_rescan`].
    pub fn top_k(&self, k: usize) -> Vec<(VertexId, f64)> {
        let k = k.min(self.num_vertices());
        if k <= self.topk.len() {
            return self.topk[..k].to_vec();
        }
        self.top_k_rescan(k)
    }

    /// Debug oracle: full `O(n log n)` rescan of the materialized
    /// closeness vector. Must agree with [`PublishedView::top_k`] exactly.
    pub fn top_k_rescan(&self, k: usize) -> Vec<(VertexId, f64)> {
        let closeness = self.closeness.to_vec();
        top_k(&closeness, k).into_iter().map(|v| (v, closeness[v as usize])).collect()
    }

    /// How many entries the maintained top-k snapshot covers
    /// (`min(`[`TOPK_SERVE_CAP`]`, n)` on every published view).
    pub fn topk_coverage(&self) -> usize {
        self.topk.len()
    }

    /// Whether this view carries certified per-vertex bounds.
    pub fn has_bounds(&self) -> bool {
        !self.bounds.is_empty()
    }

    /// Certified bound on `|exact − closeness|` for `v`. `None` when the
    /// view was published without bounds or `v` is out of range.
    pub fn error_bound(&self, v: VertexId) -> Option<f64> {
        self.bounds.get(v as usize)
    }

    /// The full bounds vector (empty under [`BoundsMode::None`]).
    pub fn bounds(&self) -> Vec<f64> {
        self.bounds.to_vec()
    }

    /// Which metric columns this view carries. The closeness primary is
    /// always present; extras reflect the engine's configured metric set.
    pub fn metrics(&self) -> MetricMask {
        let mut m = MetricMask::only(MetricKind::Closeness);
        for e in &self.extras {
            m = m.with(e.kind);
        }
        m
    }

    /// Whether this view carries a column for `kind`.
    pub fn has_metric(&self, kind: MetricKind) -> bool {
        kind == MetricKind::Closeness || self.extras.iter().any(|e| e.kind == kind)
    }

    fn extra(&self, kind: MetricKind) -> Option<&MetricColumn> {
        self.extras.iter().find(|e| e.kind == kind)
    }

    /// Point lookup in the `kind` column. `None` when the view does not
    /// carry that metric **or** `v` is out of range — serve layers that
    /// need to distinguish the two check [`PublishedView::has_metric`]
    /// first (and surface `ServeError::MetricUnavailable`).
    pub fn metric_point(&self, kind: MetricKind, v: VertexId) -> Option<f64> {
        match kind {
            MetricKind::Closeness => self.point(v),
            _ => self.extra(kind)?.values.get(v as usize),
        }
    }

    /// The full `kind` column, or `None` when the view lacks it.
    pub fn metric_values(&self, kind: MetricKind) -> Option<Vec<f64>> {
        match kind {
            MetricKind::Closeness => Some(self.closeness()),
            _ => Some(self.extra(kind)?.values.to_vec()),
        }
    }

    /// Top-`k` of the `kind` column (serve order: higher score first, ties
    /// by lower id — identical to [`PublishedView::top_k`]), or `None`
    /// when the view lacks the metric. `O(k)` within the snapshot cap.
    pub fn metric_top_k(&self, kind: MetricKind, k: usize) -> Option<Vec<(VertexId, f64)>> {
        if kind == MetricKind::Closeness {
            return Some(self.top_k(k));
        }
        let col = self.extra(kind)?;
        let k = k.min(col.values.len());
        if k <= col.topk.len() {
            return Some(col.topk[..k].to_vec());
        }
        let values = col.values.to_vec();
        Some(top_k(&values, k).into_iter().map(|v| (v, values[v as usize])).collect())
    }

    /// How many closeness chunks this view shares (same allocation) with
    /// `other` — the structural-sharing diagnostic tests and benches pin.
    pub fn shared_closeness_chunks(&self, other: &PublishedView) -> usize {
        self.closeness
            .chunks
            .iter()
            .zip(&other.closeness.chunks)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }
}

// ---------------------------------------------------------------------------
// View deltas
// ---------------------------------------------------------------------------

/// The change set one epoch applies to the previous view: the publisher's
/// input, and — encoded as [`NetMsg::ViewDelta`] — the unit of future view
/// replication to reader processes (ROADMAP item 1).
///
/// `entries`/`bounds` are sorted by vertex id. A `full` delta re-states
/// every vertex (construction, restore, structural bound invalidation);
/// otherwise entries cover exactly the rows whose DV values changed since
/// the previous publish.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDelta {
    pub epoch: u64,
    pub rc_steps: usize,
    pub changes_applied: u64,
    pub converged: bool,
    pub full: bool,
    /// Vertex count of the view this delta produces.
    pub n: usize,
    /// `(vertex, new closeness)`, sorted by id.
    pub entries: Vec<(VertexId, f64)>,
    /// `(vertex, new certified bound)`, sorted by id; empty without bounds.
    pub bounds: Vec<(VertexId, f64)>,
    /// Per extra metric, its changed `(vertex, score)` entries sorted by
    /// id; kinds in wire-id order. Empty on closeness-only runs, in which
    /// case the wire form is the legacy `NetMsg::ViewDelta`, byte for byte.
    pub extras: Vec<(MetricKind, Vec<(VertexId, f64)>)>,
}

impl ViewDelta {
    /// Rows this delta re-states (closeness column).
    pub fn rows(&self) -> usize {
        self.entries.len()
    }

    /// Size of the wire encoding in bytes (kept in lockstep with the
    /// codec in `net.rs`; asserted by its tests). Closeness-only deltas
    /// encode as `NetMsg::ViewDelta` (tag 16); deltas with extra metric
    /// columns as `NetMsg::ViewDeltaMulti` (tag 17), which appends a
    /// per-metric entry list.
    pub fn encoded_bytes(&self) -> usize {
        // tag + epoch + rc_steps + changes_applied + n + flags
        // + 2 × (count + 12 bytes per (id, f64-bits) pair)
        let base = 1 + 8 + 8 + 8 + 4 + 1 + 4 + 12 * self.entries.len() + 4 + 12 * self.bounds.len();
        if self.extras.is_empty() {
            base
        } else {
            // + metric count + per metric (kind byte + count + pairs)
            base + 1 + self.extras.iter().map(|(_, e)| 1 + 4 + 12 * e.len()).sum::<usize>()
        }
    }

    /// The CRC-framed wire form (f64 carried as raw bits, so the message
    /// keeps `NetMsg`'s `Eq` and round-trips exactly).
    pub fn to_msg(&self) -> NetMsg {
        let entries: Vec<(VertexId, u64)> =
            self.entries.iter().map(|&(v, c)| (v, c.to_bits())).collect();
        let bounds: Vec<(VertexId, u64)> =
            self.bounds.iter().map(|&(v, b)| (v, b.to_bits())).collect();
        if self.extras.is_empty() {
            NetMsg::ViewDelta {
                epoch: self.epoch,
                rc_steps: self.rc_steps as u64,
                changes_applied: self.changes_applied,
                n: self.n as u32,
                converged: self.converged,
                full: self.full,
                entries,
                bounds,
            }
        } else {
            NetMsg::ViewDeltaMulti {
                epoch: self.epoch,
                rc_steps: self.rc_steps as u64,
                changes_applied: self.changes_applied,
                n: self.n as u32,
                converged: self.converged,
                full: self.full,
                entries,
                bounds,
                extras: self
                    .extras
                    .iter()
                    .map(|(k, es)| {
                        (k.wire_id(), es.iter().map(|&(v, s)| (v, s.to_bits())).collect())
                    })
                    .collect(),
            }
        }
    }

    /// Decodes the wire form; `None` if `msg` is a different variant (or
    /// a `ViewDeltaMulti` naming an unknown metric wire id).
    pub fn from_msg(msg: &NetMsg) -> Option<Self> {
        let decode =
            |es: &[(VertexId, u64)]| es.iter().map(|&(v, b)| (v, f64::from_bits(b))).collect();
        match msg {
            NetMsg::ViewDelta {
                epoch,
                rc_steps,
                changes_applied,
                n,
                converged,
                full,
                entries,
                bounds,
            } => Some(Self {
                epoch: *epoch,
                rc_steps: *rc_steps as usize,
                changes_applied: *changes_applied,
                converged: *converged,
                full: *full,
                n: *n as usize,
                entries: decode(entries),
                bounds: decode(bounds),
                extras: Vec::new(),
            }),
            NetMsg::ViewDeltaMulti {
                epoch,
                rc_steps,
                changes_applied,
                n,
                converged,
                full,
                entries,
                bounds,
                extras,
            } => Some(Self {
                epoch: *epoch,
                rc_steps: *rc_steps as usize,
                changes_applied: *changes_applied,
                converged: *converged,
                full: *full,
                n: *n as usize,
                entries: decode(entries),
                bounds: decode(bounds),
                extras: extras
                    .iter()
                    .map(|(id, es)| Some((MetricKind::from_wire_id(*id)?, decode(es))))
                    .collect::<Option<Vec<_>>>()?,
            }),
            _ => None,
        }
    }

    /// Follower-side application: reconstructs the view this delta
    /// produced, bit-identically to the leader's (the replication receive
    /// path). The top-k snapshot is rebuilt by a bounded scan here; a
    /// later PR gives followers a maintained index of their own.
    pub fn apply_to(&self, prev: &PublishedView) -> PublishedView {
        let closeness = if self.full {
            let mut vals = vec![0.0; self.n];
            for &(v, c) in &self.entries {
                vals[v as usize] = c;
            }
            ChunkedVec::from_vec(vals)
        } else {
            prev.closeness.apply(self.n, &self.entries, 0.0).0
        };
        let bounds = if self.full {
            if self.bounds.is_empty() {
                ChunkedVec::default()
            } else {
                let mut vals = vec![0.0; self.n];
                for &(v, b) in &self.bounds {
                    vals[v as usize] = b;
                }
                ChunkedVec::from_vec(vals)
            }
        } else if prev.has_bounds() {
            prev.bounds.apply(self.n, &self.bounds, 0.0).0
        } else {
            ChunkedVec::default()
        };
        let extras = self
            .extras
            .iter()
            .map(|(kind, entries)| {
                let values = if self.full {
                    let mut vals = vec![0.0; self.n];
                    for &(v, s) in entries {
                        vals[v as usize] = s;
                    }
                    ChunkedVec::from_vec(vals)
                } else {
                    let base = prev
                        .extras
                        .iter()
                        .find(|c| c.kind == *kind)
                        .map(|c| c.values.clone())
                        .unwrap_or_default();
                    base.apply(self.n, entries, 0.0).0
                };
                let mut idx = TopKIndex::default();
                idx.rebuild(&values);
                MetricColumn { kind: *kind, values, topk: Arc::new(idx.snapshot()) }
            })
            .collect();
        let mut index = TopKIndex::default();
        index.rebuild(&closeness);
        PublishedView {
            epoch: self.epoch,
            rc_steps: self.rc_steps,
            changes_applied: self.changes_applied,
            converged: self.converged,
            closeness,
            bounds,
            topk: Arc::new(index.snapshot()),
            extras,
        }
    }
}

// ---------------------------------------------------------------------------
// The shared cell
// ---------------------------------------------------------------------------

/// The swappable handle readers share: an `ArcSwap`-style cell holding the
/// latest [`PublishedView`], plus a condvar-tracked epoch watermark so
/// blocked readers park instead of spinning.
///
/// `load` takes a read lock only long enough to clone the inner `Arc`
/// (~tens of nanoseconds), so unbounded concurrent readers scale; `store`
/// swaps the whole `Arc` under the write lock, so a reader sees either
/// the old complete view or the new complete view — never a mix. The
/// watermark is advanced *after* the slot swap, so a waiter woken at
/// epoch `e` always loads a view with `epoch ≥ e`.
#[derive(Debug)]
pub struct ViewCell {
    slot: RwLock<Arc<PublishedView>>,
    epoch: Mutex<u64>,
    published: Condvar,
}

impl ViewCell {
    pub fn new(initial: PublishedView) -> Self {
        let epoch = initial.epoch;
        Self {
            slot: RwLock::new(Arc::new(initial)),
            epoch: Mutex::new(epoch),
            published: Condvar::new(),
        }
    }

    /// The latest published view. Never blocks on the compute loop — only
    /// on the instant of an `Arc` swap.
    pub fn load(&self) -> Arc<PublishedView> {
        self.slot.read().expect("view lock poisoned").clone()
    }

    /// Atomically replaces the published view and wakes parked waiters.
    pub fn store(&self, view: Arc<PublishedView>) {
        let epoch = view.epoch;
        *self.slot.write().expect("view lock poisoned") = view;
        let mut w = self.epoch.lock().expect("epoch lock poisoned");
        if epoch > *w {
            *w = epoch;
        }
        drop(w);
        self.published.notify_all();
    }

    /// Parks until a view with `epoch ≥ target` is published, then loads
    /// it. Blocks forever if the writer never reaches `target`.
    pub fn wait_for_epoch(&self, target: u64) -> Arc<PublishedView> {
        let mut w = self.epoch.lock().expect("epoch lock poisoned");
        while *w < target {
            w = self.published.wait(w).expect("epoch lock poisoned");
        }
        drop(w);
        self.load()
    }

    /// Like [`ViewCell::wait_for_epoch`] but gives up at `deadline`,
    /// returning the watermark reached. Spurious wakeups re-check.
    pub fn wait_for_epoch_until(
        &self,
        target: u64,
        deadline: Instant,
    ) -> Result<Arc<PublishedView>, u64> {
        let mut w = self.epoch.lock().expect("epoch lock poisoned");
        while *w < target {
            let now = Instant::now();
            if now >= deadline {
                return Err(*w);
            }
            let (guard, _) =
                self.published.wait_timeout(w, deadline - now).expect("epoch lock poisoned");
            w = guard;
        }
        drop(w);
        Ok(self.load())
    }
}

impl Default for ViewCell {
    fn default() -> Self {
        Self::new(PublishedView::empty())
    }
}

// ---------------------------------------------------------------------------
// The publisher
// ---------------------------------------------------------------------------

/// Publish-layer counters (driver-side bookkeeping, deterministic for a
/// pinned scenario — the perf gate pins them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// Epochs minted (full + delta).
    pub epochs: u64,
    /// Epochs published via the full `O(n)` rebuild path.
    pub full_epochs: u64,
    /// Epochs published via the `O(changed)` delta path.
    pub delta_epochs: u64,
    /// Total rows re-stated across all epochs.
    pub changed_rows: u64,
    /// Closeness chunks materialized (copied or newly filled).
    pub chunks_copied: u64,
    /// Closeness chunks shared with the previous view (`Arc` bump only).
    pub chunks_shared: u64,
    /// Bounded rescans of the top-k index (full publishes + underflow
    /// refills).
    pub topk_rebuilds: u64,
}

/// The engine-side writer half of the publish layer: mints epochs, owns
/// the bounds cache and the maintained top-k index, and swaps finished
/// views into the shared [`ViewCell`].
#[derive(Debug)]
pub struct Publisher {
    cell: Arc<ViewCell>,
    epoch: u64,
    mode: BoundsMode,
    /// Lazily (re)built per graph version under [`BoundsMode::Certified`];
    /// invalidated by the engine on any structural change.
    cache: Option<CertifiedBoundsCache>,
    index: TopKIndex,
    /// The next publish must re-state every vertex: set at construction,
    /// after a certified-bounds invalidation (a structural change moves
    /// the bounds of *unchanged* rows too), and by restore paths that may
    /// rewind the vertex count.
    needs_full: bool,
    /// Test/bench override: disable the delta path entirely.
    force_full: bool,
    stats: PublishStats,
    last_delta: Option<ViewDelta>,
    /// Maintained top-k index per extra metric kind (created on first
    /// sight of the kind; the engine's metric set is fixed per run).
    extra_indexes: Vec<(MetricKind, TopKIndex)>,
}

impl Publisher {
    pub fn new(mode: BoundsMode) -> Self {
        Self {
            cell: Arc::new(ViewCell::default()),
            epoch: 0,
            mode,
            cache: None,
            index: TopKIndex::default(),
            needs_full: true,
            force_full: false,
            stats: PublishStats::default(),
            last_delta: None,
            extra_indexes: Vec::new(),
        }
    }

    /// The shared handle readers should clone.
    pub fn cell(&self) -> Arc<ViewCell> {
        self.cell.clone()
    }

    /// The latest published view (what `cell().load()` would return).
    pub fn latest(&self) -> Arc<PublishedView> {
        self.cell.load()
    }

    /// Bounds mode in effect.
    pub fn mode(&self) -> BoundsMode {
        self.mode
    }

    /// Epochs minted so far (== the epoch of the latest published view).
    pub fn epochs_minted(&self) -> u64 {
        self.epoch
    }

    /// Publish-layer counters so far.
    pub fn stats(&self) -> PublishStats {
        self.stats
    }

    /// The delta describing the most recent epoch (full publishes re-state
    /// every vertex). What `NetMsg::ViewDelta` replication would ship.
    pub fn last_delta(&self) -> Option<&ViewDelta> {
        self.last_delta.as_ref()
    }

    /// Whether the next publish must take the full path.
    pub fn wants_full(&self) -> bool {
        self.needs_full || self.force_full
    }

    /// Forces the next publish onto the full path (restore paths that may
    /// rewind the vertex count below the published view's).
    pub fn request_full(&mut self) {
        self.needs_full = true;
    }

    /// Disables (`true`) or re-enables (`false`) the delta path — the
    /// full-rebuild baseline for equivalence tests and the publish bench.
    pub fn set_force_full(&mut self, on: bool) {
        self.force_full = on;
    }

    /// Drops the bounds cache; the next certified publish rebuilds it.
    /// Called by the engine whenever the graph structure changes. Under
    /// [`BoundsMode::Certified`] this also forces the next publish onto
    /// the full path: new bounds apply to *every* vertex, not just the
    /// rows whose DV values moved. Under [`BoundsMode::None`] published
    /// values are unaffected by structure, so the delta path stands.
    pub fn invalidate_cache(&mut self) {
        self.cache = None;
        if self.mode == BoundsMode::Certified {
            self.needs_full = true;
        }
    }

    /// The bounds cache for the current graph, building it if needed. A
    /// rebuild moves every vertex's bound, so it forces the full path.
    pub fn cache_for(&mut self, graph: &AdjGraph) -> &CertifiedBoundsCache {
        if self.cache.as_ref().map(|c| c.n()) != Some(graph.num_vertices()) {
            self.cache = None;
        }
        if self.cache.is_none() {
            self.needs_full = true;
            self.cache = Some(CertifiedBoundsCache::new(graph));
        }
        self.cache.as_ref().expect("cache just built")
    }

    /// Publishes a new epoch via the full `O(n)` rebuild path. `bounds`
    /// must be empty under [`BoundsMode::None`] and vertex-aligned under
    /// `Certified`.
    pub fn publish(
        &mut self,
        rc_steps: usize,
        changes_applied: u64,
        converged: bool,
        closeness: Vec<f64>,
        bounds: Vec<f64>,
    ) -> Arc<PublishedView> {
        self.publish_with(rc_steps, changes_applied, converged, closeness, bounds, Vec::new())
    }

    /// [`Publisher::publish`] plus full extra metric columns (each the
    /// complete length-`n` vector for its kind, kinds in wire-id order).
    pub fn publish_with(
        &mut self,
        rc_steps: usize,
        changes_applied: u64,
        converged: bool,
        closeness: Vec<f64>,
        bounds: Vec<f64>,
        extras: Vec<(MetricKind, Vec<f64>)>,
    ) -> Arc<PublishedView> {
        let n = closeness.len();
        let entries: Vec<(VertexId, f64)> =
            closeness.iter().enumerate().map(|(v, &c)| (v as VertexId, c)).collect();
        let bound_entries: Vec<(VertexId, f64)> =
            bounds.iter().enumerate().map(|(v, &b)| (v as VertexId, b)).collect();
        let cstore = ChunkedVec::from_vec(closeness);
        let bstore = ChunkedVec::from_vec(bounds);
        self.index.rebuild(&cstore);
        self.stats.full_epochs += 1;
        self.stats.changed_rows += n as u64;
        self.stats.chunks_copied += cstore.chunks.len() as u64;
        self.stats.topk_rebuilds += 1;
        let mut columns = Vec::with_capacity(extras.len());
        let mut extra_deltas = Vec::with_capacity(extras.len());
        for (kind, vals) in extras {
            debug_assert_eq!(vals.len(), n, "extra column must be vertex-aligned");
            let delta: Vec<(VertexId, f64)> =
                vals.iter().enumerate().map(|(v, &s)| (v as VertexId, s)).collect();
            let store = ChunkedVec::from_vec(vals);
            let idx = self.extra_index(kind);
            idx.rebuild(&store);
            columns.push(MetricColumn { kind, values: store, topk: Arc::new(idx.snapshot()) });
            extra_deltas.push((kind, delta));
        }
        self.mint(
            rc_steps,
            changes_applied,
            converged,
            true,
            n,
            entries,
            bound_entries,
            cstore,
            bstore,
            columns,
            extra_deltas,
        )
    }

    /// Publishes a new epoch via the `O(changed)` delta path: `entries`
    /// (and `bound_entries`, under `Certified`) re-state exactly the rows
    /// whose values changed since the previous publish, sorted by id; `n`
    /// is the new vertex count (never below the published view's — callers
    /// route shrinking transitions through [`Publisher::publish`]).
    pub fn publish_changes(
        &mut self,
        rc_steps: usize,
        changes_applied: u64,
        converged: bool,
        n: usize,
        entries: Vec<(VertexId, f64)>,
        bound_entries: Vec<(VertexId, f64)>,
    ) -> Arc<PublishedView> {
        self.publish_changes_with(
            rc_steps,
            changes_applied,
            converged,
            n,
            entries,
            bound_entries,
            Vec::new(),
        )
    }

    /// [`Publisher::publish_changes`] plus per-extra-metric changed
    /// entries (each sorted by id; kinds in wire-id order). An extra's
    /// column is carried forward by structural sharing exactly like
    /// closeness; its maintained index absorbs the delta. Extra columns
    /// are intentionally **not** counted in [`PublishStats`].
    #[allow(clippy::too_many_arguments)]
    pub fn publish_changes_with(
        &mut self,
        rc_steps: usize,
        changes_applied: u64,
        converged: bool,
        n: usize,
        entries: Vec<(VertexId, f64)>,
        bound_entries: Vec<(VertexId, f64)>,
        extras: Vec<(MetricKind, Vec<(VertexId, f64)>)>,
    ) -> Arc<PublishedView> {
        debug_assert!(!self.wants_full(), "delta publish while a full publish is required");
        let prev = self.cell.load();
        let (cstore, copied, shared) = prev.closeness.apply(n, &entries, 0.0);
        let bstore = if prev.has_bounds() {
            prev.bounds.apply(n, &bound_entries, 0.0).0
        } else {
            debug_assert!(bound_entries.is_empty(), "bound entries without a bounds-bearing view");
            ChunkedVec::default()
        };
        for &(v, c) in &entries {
            self.index.update(prev.point(v), v, c);
        }
        if self.index.len() < TOPK_SERVE_CAP.min(n) {
            self.index.rebuild(&cstore);
            self.stats.topk_rebuilds += 1;
        }
        self.stats.delta_epochs += 1;
        self.stats.changed_rows += entries.len() as u64;
        self.stats.chunks_copied += copied;
        self.stats.chunks_shared += shared;
        let mut columns = Vec::with_capacity(extras.len());
        for (kind, es) in &extras {
            let base = prev
                .extras
                .iter()
                .find(|c| c.kind == *kind)
                .map(|c| c.values.clone())
                .unwrap_or_default();
            let store = base.apply(n, es, 0.0).0;
            let prev_col = prev.extra(*kind);
            let idx = self.extra_index(*kind);
            for &(v, s) in es {
                idx.update(prev_col.and_then(|c| c.values.get(v as usize)), v, s);
            }
            if idx.len() < TOPK_SERVE_CAP.min(n) {
                idx.rebuild(&store);
            }
            let snapshot = Arc::new(idx.snapshot());
            columns.push(MetricColumn { kind: *kind, values: store, topk: snapshot });
        }
        self.mint(
            rc_steps,
            changes_applied,
            converged,
            false,
            n,
            entries,
            bound_entries,
            cstore,
            bstore,
            columns,
            extras,
        )
    }

    fn extra_index(&mut self, kind: MetricKind) -> &mut TopKIndex {
        if let Some(pos) = self.extra_indexes.iter().position(|(k, _)| *k == kind) {
            return &mut self.extra_indexes[pos].1;
        }
        self.extra_indexes.push((kind, TopKIndex::default()));
        &mut self.extra_indexes.last_mut().expect("just pushed").1
    }

    #[allow(clippy::too_many_arguments)]
    fn mint(
        &mut self,
        rc_steps: usize,
        changes_applied: u64,
        converged: bool,
        full: bool,
        n: usize,
        entries: Vec<(VertexId, f64)>,
        bound_entries: Vec<(VertexId, f64)>,
        closeness: ChunkedVec,
        bounds: ChunkedVec,
        extras: Vec<MetricColumn>,
        extra_deltas: Vec<(MetricKind, Vec<(VertexId, f64)>)>,
    ) -> Arc<PublishedView> {
        self.epoch += 1;
        self.stats.epochs += 1;
        self.needs_full = false;
        let view = Arc::new(PublishedView {
            epoch: self.epoch,
            rc_steps,
            changes_applied,
            converged,
            closeness,
            bounds,
            topk: Arc::new(self.index.snapshot()),
            extras,
        });
        self.last_delta = Some(ViewDelta {
            epoch: self.epoch,
            rc_steps,
            changes_applied,
            converged,
            full,
            n,
            entries,
            bounds: bound_entries,
            extras: extra_deltas,
        });
        self.cell.store(view.clone());
        view
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_strictly_increasing_and_views_immutable() {
        let mut p = Publisher::new(BoundsMode::None);
        let cell = p.cell();
        assert_eq!(cell.load().epoch, 0);
        let v1 = p.publish(1, 0, false, vec![0.5, 0.25], Vec::new());
        let held = cell.load();
        assert_eq!(held.epoch, 1);
        let v2 = p.publish(2, 0, true, vec![0.6, 0.25], Vec::new());
        assert_eq!(v2.epoch, 2);
        // The reader's old handle is untouched by the new publish.
        assert_eq!(held.point(0), Some(0.5));
        assert_eq!(cell.load().point(0), Some(0.6));
        assert!(v1.epoch < v2.epoch);
        assert_eq!(p.epochs_minted(), 2);
    }

    #[test]
    fn view_queries() {
        let mut p = Publisher::new(BoundsMode::Certified);
        let v = p.publish(3, 2, false, vec![0.1, 0.9, 0.4], vec![0.05, 0.0, 0.2]);
        assert_eq!(v.num_vertices(), 3);
        assert_eq!(v.point(1), Some(0.9));
        assert_eq!(v.point(9), None);
        assert_eq!(v.top_k(2), vec![(1, 0.9), (2, 0.4)]);
        assert_eq!(v.points(&[2, 9, 0]), vec![Some(0.4), None, Some(0.1)]);
        assert!(v.has_bounds());
        assert_eq!(v.error_bound(2), Some(0.2));
        assert_eq!(v.error_bound(7), None);
        assert_eq!(v.rc_steps, 3);
        assert_eq!(v.changes_applied, 2);
        let empty = PublishedView::empty();
        assert!(!empty.has_bounds());
        assert_eq!(empty.point(0), None);
        assert!(empty.top_k(3).is_empty());
    }

    #[test]
    fn cache_rebuilds_on_size_change_and_invalidation() {
        use aaa_graph::AdjGraph;
        let mut g = AdjGraph::with_vertices(3);
        g.add_edge(0, 1, 1).unwrap();
        let mut p = Publisher::new(BoundsMode::Certified);
        assert_eq!(p.cache_for(&g).n(), 3);
        let g2 = AdjGraph::with_vertices(5);
        assert_eq!(p.cache_for(&g2).n(), 5, "size mismatch must rebuild");
        p.invalidate_cache();
        assert_eq!(p.cache_for(&g2).n(), 5);
    }

    #[test]
    fn concurrent_readers_never_see_a_torn_view() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut p = Publisher::new(BoundsMode::None);
        let cell = p.cell();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut last_epoch = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = cell.load();
                        // Epoch k publishes a constant vector of k's value;
                        // a torn view would mix values from two epochs.
                        assert!(v.closeness().iter().all(|&c| c == v.epoch as f64));
                        assert!(v.epoch >= last_epoch, "epoch went backwards");
                        last_epoch = v.epoch;
                    }
                })
            })
            .collect();
        for e in 1..=200u64 {
            p.publish(e as usize, 0, false, vec![e as f64; 64], Vec::new());
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
        assert_eq!(cell.load().epoch, 200);
    }

    /// Reference next-view construction: full rebuild from the previous
    /// materialized vector plus the delta, via the legacy path.
    fn full_oracle(
        p: &mut Publisher,
        prev: &PublishedView,
        n: usize,
        entries: &[(VertexId, f64)],
    ) -> Arc<PublishedView> {
        let mut vals = prev.closeness();
        vals.resize(n, 0.0);
        for &(v, c) in entries {
            vals[v as usize] = c;
        }
        p.publish(prev.rc_steps + 1, 0, false, vals, Vec::new())
    }

    #[test]
    fn delta_publish_matches_full_rebuild_and_shares_chunks() {
        let n = 3 * CHUNK_VERTICES + 17;
        let base: Vec<f64> = (0..n).map(|i| (i % 97) as f64 / 97.0).collect();
        let mut fast = Publisher::new(BoundsMode::None);
        let mut slow = Publisher::new(BoundsMode::None);
        fast.publish(0, 0, false, base.clone(), Vec::new());
        slow.publish(0, 0, false, base, Vec::new());
        // Dirty a handful of rows inside chunk 1 only.
        let entries: Vec<(VertexId, f64)> =
            (0..8).map(|i| ((CHUNK_VERTICES + 13 * i) as VertexId, 0.5 + i as f64)).collect();
        let prev = fast.latest();
        let slow_prev = slow.latest();
        let dv = fast.publish_changes(1, 0, false, n, entries.clone(), Vec::new());
        let fv = full_oracle(&mut slow, &slow_prev, n, &entries);
        assert_eq!(dv.closeness(), fv.closeness());
        assert_eq!(dv.top_k(10), fv.top_k(10));
        assert_eq!(dv.top_k(10), dv.top_k_rescan(10));
        // Chunks 0, 2, 3 are shared with the previous epoch; chunk 1 was
        // copied.
        assert_eq!(dv.shared_closeness_chunks(&prev), 3);
        let s = fast.stats();
        assert_eq!((s.full_epochs, s.delta_epochs), (1, 1));
        assert_eq!(s.chunks_copied, 4 + 1);
        assert_eq!(s.chunks_shared, 3);
    }

    #[test]
    fn delta_publish_grows_the_view() {
        let mut p = Publisher::new(BoundsMode::None);
        p.publish(0, 0, false, vec![0.2; 10], Vec::new());
        let v = p.publish_changes(1, 1, false, 12, vec![(10, 0.9), (11, 0.1)], Vec::new());
        assert_eq!(v.num_vertices(), 12);
        assert_eq!(v.point(9), Some(0.2));
        assert_eq!(v.point(10), Some(0.9));
        assert_eq!(v.top_k(1), vec![(10, 0.9)]);
        // A grown vertex with no entry defaults to 0.0 (fresh isolated
        // vertices have zero closeness).
        let v2 = p.publish_changes(2, 2, false, 13, Vec::new(), Vec::new());
        assert_eq!(v2.point(12), Some(0.0));
    }

    #[test]
    fn maintained_topk_survives_displacement_churn() {
        // More vertices than the index cap, then repeatedly demote the
        // current best: every removal is an index hit, and underflow
        // rebuilds must keep the snapshot exact.
        let n = TOPK_INDEX_CAP * 3;
        let base: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let mut p = Publisher::new(BoundsMode::None);
        p.publish(0, 0, false, base, Vec::new());
        for step in 0..TOPK_INDEX_CAP + 8 {
            let view = p.latest();
            let (best, _) = view.top_k(1)[0];
            let v = p.publish_changes(step + 1, 0, false, n, vec![(best, -1.0)], Vec::new());
            assert_eq!(v.top_k(5), v.top_k_rescan(5), "after demoting {best}");
        }
        assert!(p.stats().topk_rebuilds >= 1);
    }

    #[test]
    fn topk_ties_break_by_id_on_both_paths() {
        let mut p = Publisher::new(BoundsMode::None);
        // All-equal values: order must be by id on the maintained path...
        let v = p.publish(0, 0, false, vec![0.5; 300], Vec::new());
        let maintained = v.top_k(6);
        assert_eq!(maintained, (0..6).map(|i| (i as VertexId, 0.5)).collect::<Vec<_>>());
        // ...and identically on the rescan oracle.
        assert_eq!(maintained, v.top_k_rescan(6));
        // Same via the delta path after introducing more ties.
        let v2 = p.publish_changes(1, 0, false, 300, vec![(3, 0.9), (7, 0.9)], Vec::new());
        assert_eq!(v2.top_k(3), vec![(3, 0.9), (7, 0.9), (0, 0.5)]);
        assert_eq!(v2.top_k(3), v2.top_k_rescan(3));
    }

    #[test]
    fn view_delta_roundtrips_through_netmsg_and_applies() {
        let mut p = Publisher::new(BoundsMode::Certified);
        p.publish(1, 0, false, vec![0.25; 40], vec![0.5; 40]);
        let follower_base = p.latest();
        p.invalidate_cache();
        // Certified invalidation forces the full path.
        assert!(p.wants_full());
        let g = AdjGraph::with_vertices(40);
        p.cache_for(&g);
        p.publish(2, 1, false, vec![0.3; 40], vec![0.4; 40]);
        let full_delta = p.last_delta().unwrap().clone();
        assert!(full_delta.full);
        let leader = p.latest();
        let msg = full_delta.to_msg();
        let decoded = ViewDelta::from_msg(&msg).unwrap();
        assert_eq!(decoded, full_delta);
        assert_eq!(&decoded.apply_to(&follower_base), leader.as_ref());

        // And a thin delta epoch.
        let prev = p.latest();
        p.publish_changes(3, 1, true, 40, vec![(5, 0.9)], vec![(5, 0.05)]);
        let thin = p.last_delta().unwrap().clone();
        assert!(!thin.full);
        assert_eq!(thin.rows(), 1);
        let rt = ViewDelta::from_msg(&thin.to_msg()).unwrap();
        assert_eq!(rt, thin);
        assert_eq!(&rt.apply_to(&prev), p.latest().as_ref());
    }

    #[test]
    fn multi_metric_columns_publish_query_and_replicate() {
        let mut p = Publisher::new(BoundsMode::None);
        let bc: Vec<f64> = (0..40).map(|i| (i * 7 % 11) as f64).collect();
        let v = p.publish_with(
            1,
            0,
            false,
            vec![0.5; 40],
            Vec::new(),
            vec![(MetricKind::Betweenness, bc.clone())],
        );
        assert!(v.has_metric(MetricKind::Betweenness));
        assert!(v.metrics().contains(MetricKind::Closeness));
        assert_eq!(v.metric_point(MetricKind::Betweenness, 3), Some(bc[3]));
        assert_eq!(v.metric_point(MetricKind::Betweenness, 99), None);
        assert_eq!(v.metric_values(MetricKind::Betweenness), Some(bc.clone()));
        // Top-k over the betweenness column, id tie-breaks, matches a
        // rescan oracle.
        let top = v.metric_top_k(MetricKind::Betweenness, 5).unwrap();
        let oracle: Vec<(VertexId, f64)> =
            top_k(&bc, 5).into_iter().map(|i| (i, bc[i as usize])).collect();
        assert_eq!(top, oracle);
        // The closeness accessors are untouched by extras.
        assert_eq!(v.point(0), Some(0.5));
        assert_eq!(v.metric_top_k(MetricKind::Closeness, 2).unwrap(), v.top_k(2));

        // Thin delta epoch: only the changed betweenness entries move.
        let prev = p.latest();
        let v2 = p.publish_changes_with(
            2,
            0,
            true,
            40,
            vec![(1, 0.9)],
            Vec::new(),
            vec![(MetricKind::Betweenness, vec![(3, 100.0), (7, 0.25)])],
        );
        assert_eq!(v2.metric_point(MetricKind::Betweenness, 3), Some(100.0));
        assert_eq!(v2.metric_point(MetricKind::Betweenness, 7), Some(0.25));
        assert_eq!(v2.metric_point(MetricKind::Betweenness, 4), Some(bc[4]));
        assert_eq!(v2.metric_top_k(MetricKind::Betweenness, 1).unwrap(), vec![(3, 100.0)]);
        // Extras are not counted in the closeness-only publish stats.
        assert_eq!(p.stats().changed_rows, 40 + 1);

        // Wire roundtrip (tag 17) and follower application bit-identity.
        let delta = p.last_delta().unwrap().clone();
        assert_eq!(delta.extras.len(), 1);
        let msg = delta.to_msg();
        assert!(matches!(msg, NetMsg::ViewDeltaMulti { .. }));
        assert_eq!(msg.encode().len(), delta.encoded_bytes());
        let rt = ViewDelta::from_msg(&msg).unwrap();
        assert_eq!(rt, delta);
        assert_eq!(&rt.apply_to(&prev), v2.as_ref());
    }

    #[test]
    fn closeness_only_wire_form_is_unchanged_by_s31() {
        let mut p = Publisher::new(BoundsMode::None);
        p.publish(1, 0, false, vec![0.5, 0.25], Vec::new());
        let delta = p.last_delta().unwrap().clone();
        assert!(delta.extras.is_empty());
        let msg = delta.to_msg();
        // No extras → the legacy tag-16 variant, and the byte-size
        // formula's legacy branch.
        assert!(matches!(msg, NetMsg::ViewDelta { .. }));
        assert_eq!(msg.encode().len(), delta.encoded_bytes());
        let v = p.latest();
        assert_eq!(v.metrics(), MetricMask::only(MetricKind::Closeness));
        assert!(!v.has_metric(MetricKind::Betweenness));
        assert_eq!(v.metric_point(MetricKind::Betweenness, 0), None);
        assert_eq!(v.metric_values(MetricKind::Betweenness), None);
        assert_eq!(v.metric_top_k(MetricKind::Betweenness, 3), None);
    }

    #[test]
    fn cell_wait_parks_until_epoch_lands() {
        let mut p = Publisher::new(BoundsMode::None);
        let cell = p.cell();
        let waiter = std::thread::spawn({
            let cell = cell.clone();
            move || cell.wait_for_epoch(3)
        });
        for e in 1..=3 {
            std::thread::sleep(std::time::Duration::from_millis(5));
            p.publish(e, 0, false, vec![e as f64], Vec::new());
        }
        assert!(waiter.join().unwrap().epoch >= 3);
        // Timed variant: an unreachable epoch reports the watermark.
        let deadline = Instant::now() + std::time::Duration::from_millis(20);
        assert_eq!(cell.wait_for_epoch_until(99, deadline), Err(3));
        // An already-published epoch returns immediately.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        assert_eq!(cell.wait_for_epoch_until(2, deadline).unwrap().epoch, 3);
    }
}
