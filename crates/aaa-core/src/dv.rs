//! Per-rank distance-vector storage.
//!
//! Each processor keeps a Distance Vector (DV) per **local** vertex — the
//! current estimate of its shortest-path distance to *every* vertex in the
//! graph — plus cached DVs of its **external boundary** vertices as received
//! from neighboring processors (§IV.C of the paper).
//!
//! Two invariants carry the whole anytime analysis:
//!
//! * entries only ever *decrease* (min-merge), so partial results are always
//!   an upper bound on true distances and quality is monotone;
//! * on vertex addition, every row grows by the new columns with amortized
//!   doubling — the `O(n)` resize cost the paper accounts for in §IV.C.1a.

use aaa_graph::{Dist, VertexId, INF};
use rustc_hash::{FxHashMap, FxHashSet};

/// Distance-vector store for one rank.
#[derive(Debug, Clone, Default)]
pub struct DvStore {
    /// Number of columns (current global vertex count).
    n: usize,
    /// Rows for vertices owned by this rank.
    local: FxHashMap<VertexId, Vec<Dist>>,
    /// Cached rows of external boundary vertices (owned elsewhere).
    cached: FxHashMap<VertexId, Vec<Dist>>,
    /// Local rows changed since they were last sent.
    dirty: FxHashSet<VertexId>,
}

impl DvStore {
    /// Creates an empty store with `n` columns.
    pub fn new(n: usize) -> Self {
        Self { n, ..Self::default() }
    }

    /// Current column count.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of local rows.
    pub fn num_local(&self) -> usize {
        self.local.len()
    }

    /// Number of cached external rows.
    pub fn num_cached(&self) -> usize {
        self.cached.len()
    }

    /// Adds a fresh local row for `v`: all `INF` except `row[v] = 0`.
    /// Marks it dirty. No-op if the row already exists.
    pub fn add_local_row(&mut self, v: VertexId) {
        debug_assert!((v as usize) < self.n, "row {v} beyond column count {}", self.n);
        self.local.entry(v).or_insert_with(|| {
            let mut row = vec![INF; self.n];
            row[v as usize] = 0;
            row
        });
        self.dirty.insert(v);
    }

    /// Grows every row to `new_n` columns (filled with `INF`).
    /// `Vec` growth is amortized-doubling, matching the paper's resize
    /// analysis.
    pub fn grow_columns(&mut self, new_n: usize) {
        debug_assert!(new_n >= self.n);
        self.n = new_n;
        for row in self.local.values_mut() {
            row.resize(new_n, INF);
        }
        for row in self.cached.values_mut() {
            row.resize(new_n, INF);
        }
    }

    /// Read a row: local first, then cached. `None` if unknown here.
    pub fn row(&self, v: VertexId) -> Option<&[Dist]> {
        self.local.get(&v).or_else(|| self.cached.get(&v)).map(|r| r.as_slice())
    }

    /// Read a local row.
    pub fn local_row(&self, v: VertexId) -> Option<&[Dist]> {
        self.local.get(&v).map(|r| r.as_slice())
    }

    /// True if `v` has a local row here.
    pub fn is_local(&self, v: VertexId) -> bool {
        self.local.contains_key(&v)
    }

    /// Ids of local rows, sorted (deterministic iteration order).
    pub fn local_ids_sorted(&self) -> Vec<VertexId> {
        let mut ids: Vec<VertexId> = self.local.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Ids of every row available here (local + cached), sorted.
    pub fn all_ids_sorted(&self) -> Vec<VertexId> {
        let mut ids: Vec<VertexId> = self.local.keys().chain(self.cached.keys()).copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Temporarily removes a local row so it can be mutated while other
    /// rows are read (split-borrow workaround). Pair with
    /// [`DvStore::put_back_local`].
    pub fn take_local(&mut self, v: VertexId) -> Option<Vec<Dist>> {
        self.local.remove(&v)
    }

    /// Restores a row taken with [`DvStore::take_local`]; `changed` marks it
    /// dirty.
    pub fn put_back_local(&mut self, v: VertexId, row: Vec<Dist>, changed: bool) {
        debug_assert_eq!(row.len(), self.n);
        self.local.insert(v, row);
        if changed {
            self.dirty.insert(v);
        }
    }

    /// Removes a local row entirely (migration). Returns it if present.
    pub fn remove_local(&mut self, v: VertexId) -> Option<Vec<Dist>> {
        self.dirty.remove(&v);
        self.local.remove(&v)
    }

    /// Installs a migrated row as local (overwrites any cached copy).
    pub fn install_local(&mut self, v: VertexId, mut row: Vec<Dist>, dirty: bool) {
        row.resize(self.n, INF);
        self.cached.remove(&v);
        self.local.insert(v, row);
        if dirty {
            self.dirty.insert(v);
        }
    }

    /// Element-wise min-merge into a local row. Returns `true` (and marks
    /// dirty) if any entry improved.
    pub fn min_merge_local(&mut self, v: VertexId, incoming: &[Dist]) -> bool {
        let row = self.local.get_mut(&v).expect("min_merge_local on missing row");
        let changed = min_merge(row, incoming);
        if changed {
            self.dirty.insert(v);
        }
        changed
    }

    /// Min-merges an incoming external-boundary row into the cache
    /// (creating it if new). Returns `true` if anything improved.
    pub fn min_merge_cached(&mut self, v: VertexId, incoming: &[Dist]) -> bool {
        debug_assert!(!self.local.contains_key(&v), "cached merge of a local row {v}");
        match self.cached.get_mut(&v) {
            Some(row) => min_merge(row, incoming),
            None => {
                let mut row = vec![INF; self.n];
                min_merge(&mut row, incoming);
                self.cached.insert(v, row);
                true
            }
        }
    }

    /// Drops all cached external rows (used on repartition).
    pub fn clear_cache(&mut self) {
        self.cached.clear();
    }

    /// Marks a local row dirty.
    pub fn mark_dirty(&mut self, v: VertexId) {
        debug_assert!(self.local.contains_key(&v));
        self.dirty.insert(v);
    }

    /// Marks every local row dirty.
    pub fn mark_all_dirty(&mut self) {
        self.dirty.extend(self.local.keys().copied());
    }

    /// True if any local row awaits sending.
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Takes the dirty set, sorted (deterministic send order).
    pub fn take_dirty_sorted(&mut self) -> Vec<VertexId> {
        let mut ids: Vec<VertexId> = self.dirty.drain().collect();
        ids.sort_unstable();
        ids
    }

    /// Memory the rows occupy, in bytes (diagnostics).
    pub fn memory_bytes(&self) -> usize {
        (self.local.len() + self.cached.len()) * self.n * std::mem::size_of::<Dist>()
    }

    // --------------------------------------------------------------------
    // Checkpoint support
    // --------------------------------------------------------------------

    /// Clones every local row, sorted by vertex id (deterministic snapshot
    /// order).
    pub fn export_local_sorted(&self) -> Vec<(VertexId, Vec<Dist>)> {
        let mut rows: Vec<(VertexId, Vec<Dist>)> =
            self.local.iter().map(|(&v, r)| (v, r.clone())).collect();
        rows.sort_unstable_by_key(|&(v, _)| v);
        rows
    }

    /// Clones every cached external row, sorted by vertex id.
    pub fn export_cached_sorted(&self) -> Vec<(VertexId, Vec<Dist>)> {
        let mut rows: Vec<(VertexId, Vec<Dist>)> =
            self.cached.iter().map(|(&v, r)| (v, r.clone())).collect();
        rows.sort_unstable_by_key(|&(v, _)| v);
        rows
    }

    /// The dirty set, sorted, without draining it (snapshots must not
    /// perturb the RC phase).
    pub fn dirty_sorted(&self) -> Vec<VertexId> {
        let mut ids: Vec<VertexId> = self.dirty.iter().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Installs a cached external row verbatim (restore path; rows shorter
    /// than the current column count are padded with `INF`).
    pub fn install_cached(&mut self, v: VertexId, mut row: Vec<Dist>) {
        debug_assert!(!self.local.contains_key(&v), "cached install of local row {v}");
        row.resize(self.n, INF);
        self.cached.insert(v, row);
    }

    /// Clears the dirty set (restore path: the snapshot's dirty mask is
    /// installed exactly, replacing whatever construction left behind).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }
}

/// Element-wise `dst = min(dst, src)`; returns whether anything changed.
/// The incoming row may be shorter than `dst` (sender had fewer columns);
/// missing entries are treated as `INF`.
pub fn min_merge(dst: &mut [Dist], src: &[Dist]) -> bool {
    let mut changed = false;
    for (d, &s) in dst.iter_mut().zip(src) {
        if s < *d {
            *d = s;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_row_is_identity() {
        let mut dv = DvStore::new(4);
        dv.add_local_row(2);
        assert_eq!(dv.row(2).unwrap(), &[INF, INF, 0, INF]);
        assert!(dv.is_local(2));
        assert!(dv.has_dirty());
        assert_eq!(dv.num_local(), 1);
    }

    #[test]
    fn grow_columns_extends_all_rows() {
        let mut dv = DvStore::new(2);
        dv.add_local_row(0);
        dv.min_merge_cached(1, &[3, 0]);
        dv.grow_columns(4);
        assert_eq!(dv.n(), 4);
        assert_eq!(dv.row(0).unwrap().len(), 4);
        assert_eq!(dv.row(1).unwrap(), &[3, 0, INF, INF]);
    }

    #[test]
    fn min_merge_only_improves() {
        let mut dst = vec![5, INF, 2];
        assert!(min_merge(&mut dst, &[7, 4, 2]));
        assert_eq!(dst, vec![5, 4, 2]);
        assert!(!min_merge(&mut dst, &[9, 9, 9]));
        // Shorter source: missing tail untouched.
        assert!(min_merge(&mut dst, &[1]));
        assert_eq!(dst, vec![1, 4, 2]);
    }

    #[test]
    fn cached_merge_creates_and_improves() {
        let mut dv = DvStore::new(3);
        assert!(dv.min_merge_cached(1, &[4, 0, 9]));
        assert!(dv.min_merge_cached(1, &[4, 0, 5]));
        assert!(!dv.min_merge_cached(1, &[6, 1, 7]));
        assert_eq!(dv.row(1).unwrap(), &[4, 0, 5]);
        assert_eq!(dv.num_cached(), 1);
        dv.clear_cache();
        assert!(dv.row(1).is_none());
    }

    #[test]
    fn dirty_lifecycle() {
        let mut dv = DvStore::new(3);
        dv.add_local_row(0);
        dv.add_local_row(2);
        assert_eq!(dv.take_dirty_sorted(), vec![0, 2]);
        assert!(!dv.has_dirty());
        dv.min_merge_local(0, &[0, 1, 1]);
        assert_eq!(dv.take_dirty_sorted(), vec![0]);
        // No improvement -> no dirt.
        dv.min_merge_local(0, &[0, 5, 5]);
        assert!(!dv.has_dirty());
    }

    #[test]
    fn take_and_put_back() {
        let mut dv = DvStore::new(2);
        dv.add_local_row(0);
        dv.take_dirty_sorted();
        let mut row = dv.take_local(0).unwrap();
        assert!(dv.row(0).is_none());
        row[1] = 7;
        dv.put_back_local(0, row, true);
        assert_eq!(dv.row(0).unwrap(), &[0, 7]);
        assert!(dv.has_dirty());
    }

    #[test]
    fn migration_install_and_remove() {
        let mut dv = DvStore::new(3);
        dv.min_merge_cached(1, &[9, 0, 9]);
        dv.install_local(1, vec![8, 0, 8], true);
        assert!(dv.is_local(1));
        assert_eq!(dv.num_cached(), 0);
        let row = dv.remove_local(1).unwrap();
        assert_eq!(row, vec![8, 0, 8]);
        assert!(!dv.has_dirty());
    }

    #[test]
    fn export_and_reinstall_roundtrip() {
        let mut dv = DvStore::new(3);
        dv.add_local_row(2);
        dv.add_local_row(0);
        dv.min_merge_local(0, &[0, 4, 7]);
        dv.min_merge_cached(1, &[9, 0, 9]);
        dv.take_dirty_sorted();
        dv.mark_dirty(0);

        let local = dv.export_local_sorted();
        let cached = dv.export_cached_sorted();
        let dirty = dv.dirty_sorted();
        assert_eq!(local.iter().map(|&(v, _)| v).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(cached.len(), 1);
        assert_eq!(dirty, vec![0]);
        // Export does not drain dirt.
        assert!(dv.has_dirty());

        let mut fresh = DvStore::new(3);
        for (v, row) in local {
            fresh.install_local(v, row, false);
        }
        for (v, row) in cached {
            fresh.install_cached(v, row);
        }
        fresh.clear_dirty();
        for v in dirty {
            fresh.mark_dirty(v);
        }
        assert_eq!(fresh.row(0).unwrap(), dv.row(0).unwrap());
        assert_eq!(fresh.row(1).unwrap(), dv.row(1).unwrap());
        assert_eq!(fresh.dirty_sorted(), dv.dirty_sorted());
    }

    #[test]
    fn memory_accounting() {
        let mut dv = DvStore::new(100);
        dv.add_local_row(0);
        dv.min_merge_cached(5, &[0; 100]);
        assert_eq!(dv.memory_bytes(), 2 * 100 * 4);
    }
}
