//! Per-rank distance-vector storage: a contiguous row arena plus the
//! round-structured min-plus relaxation kernel that runs on it.
//!
//! Each processor keeps a Distance Vector (DV) per **local** vertex — the
//! current estimate of its shortest-path distance to *every* vertex in the
//! graph — plus cached DVs of its **external boundary** vertices as received
//! from neighboring processors (§IV.C of the paper).
//!
//! Two invariants carry the whole anytime analysis:
//!
//! * entries only ever *decrease* (min-merge), so partial results are always
//!   an upper bound on true distances and quality is monotone;
//! * on vertex addition, every row grows by the new columns with amortized
//!   doubling — the `O(n)` resize cost the paper accounts for in §IV.C.1a.
//!
//! # Storage layout
//!
//! Rows live in two flat arenas (`Vec<Dist>`): one for local rows, one for
//! cached external rows. Row `slot` occupies the cell range from
//! `slot * stride` up to `slot * stride + n`, where `stride ≥ n` is the
//! column *capacity*. `grow_columns` within capacity is just an `n` bump
//! (every cell in `[n, stride)` is kept at `INF` at all times); growing
//! past capacity doubles the stride and re-lays rows out once — the
//! amortized-doubling resize of §IV.C.1a, now applied to the whole arena
//! instead of per-row `Vec`s. A dense `id → slot` map (one `u32` per
//! global vertex, local rows tagged with the top bit) replaces the hashmap
//! row lookup, the dirty set is a bitset over global ids (sorted iteration
//! for free), and the sorted-id vectors the relaxation kernel iterates are
//! cached and invalidated only when row membership changes (grow/migrate),
//! not per call.

use aaa_graph::{Dist, VertexId, INF};

/// `slot_of` sentinel: no row for this vertex.
const NO_SLOT: u32 = u32::MAX;
/// `slot_of` tag: the slot indexes the local arena (cleared → cached).
const LOCAL_BIT: u32 = 1 << 31;

/// Rows-per-chunk × columns below which the kernel stays sequential:
/// a round this small is cheaper than spawning scoped threads.
const PARALLEL_MIN_CELLS: usize = 1 << 16;

/// A dirty-row set as a bitset over global vertex ids. Iteration yields
/// ids in increasing order, so the deterministic sorted send order the RC
/// phase relies on needs no sort.
#[derive(Debug, Clone, Default)]
struct DirtyBits {
    words: Vec<u64>,
    count: usize,
}

impl DirtyBits {
    fn ensure(&mut self, n: usize) {
        let want = n.div_ceil(64);
        if want > self.words.len() {
            self.words.resize(want, 0);
        }
    }

    fn insert(&mut self, v: VertexId) -> bool {
        let (w, b) = (v as usize / 64, v as usize % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        self.count += fresh as usize;
        fresh
    }

    fn remove(&mut self, v: VertexId) {
        let (w, b) = (v as usize / 64, v as usize % 64);
        if let Some(word) = self.words.get_mut(w) {
            if *word & (1 << b) != 0 {
                *word &= !(1 << b);
                self.count -= 1;
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Set ids in increasing order.
    fn to_sorted(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.count);
        for (w, &word) in self.words.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let b = word.trailing_zeros();
                out.push((w as u32) * 64 + b);
                word &= word - 1;
            }
        }
        out
    }

    fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }
}

/// Where a pivot row lives, resolved to arena coordinates once per round.
#[derive(Debug, Clone, Copy)]
enum PivotSrc {
    Local(u32),
    Cached(u32),
}

/// Distance-vector store for one rank.
#[derive(Debug, Clone, Default)]
pub struct DvStore {
    /// Number of live columns (current global vertex count).
    n: usize,
    /// Column capacity; rows are `stride` apart in the arenas.
    stride: usize,
    /// Local rows, slot-major: slot `s` at `[s * stride, s * stride + n)`.
    local_data: Vec<Dist>,
    /// Slot → vertex id for local rows.
    local_ids: Vec<VertexId>,
    /// Cached external rows, same layout.
    cached_data: Vec<Dist>,
    cached_ids: Vec<VertexId>,
    /// Dense id → slot map (`LOCAL_BIT` tags local slots).
    slot_of: Vec<u32>,
    /// Local rows changed since they were last sent.
    dirty: DirtyBits,
    /// Local rows whose values changed since the last published epoch.
    /// Unlike `dirty` (drained at produce time for wire scheduling) this
    /// set survives until the publisher drains it, so an epoch's view
    /// delta covers exactly the rows whose closeness may have moved.
    epoch_dirty: DirtyBits,
    /// Cached sorted-id views, rebuilt only after membership changes.
    sorted_local: Vec<VertexId>,
    sorted_all: Vec<VertexId>,
    sorted_stale: bool,
}

impl DvStore {
    /// Creates an empty store with `n` columns.
    pub fn new(n: usize) -> Self {
        let mut dirty = DirtyBits::default();
        dirty.ensure(n);
        let mut epoch_dirty = DirtyBits::default();
        epoch_dirty.ensure(n);
        Self { n, stride: n, slot_of: vec![NO_SLOT; n], dirty, epoch_dirty, ..Self::default() }
    }

    /// Current column count.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of local rows.
    pub fn num_local(&self) -> usize {
        self.local_ids.len()
    }

    /// Number of cached external rows.
    pub fn num_cached(&self) -> usize {
        self.cached_ids.len()
    }

    #[inline]
    fn local_slot(&self, v: VertexId) -> Option<usize> {
        match self.slot_of.get(v as usize) {
            Some(&s) if s != NO_SLOT && s & LOCAL_BIT != 0 => Some((s & !LOCAL_BIT) as usize),
            _ => None,
        }
    }

    #[inline]
    fn cached_slot(&self, v: VertexId) -> Option<usize> {
        match self.slot_of.get(v as usize) {
            Some(&s) if s != NO_SLOT && s & LOCAL_BIT == 0 => Some(s as usize),
            _ => None,
        }
    }

    /// Adds a fresh local row for `v`: all `INF` except `row[v] = 0`.
    /// Marks it dirty. No-op if the row already exists.
    pub fn add_local_row(&mut self, v: VertexId) {
        debug_assert!((v as usize) < self.n, "row {v} beyond column count {}", self.n);
        if self.local_slot(v).is_none() {
            debug_assert!(self.cached_slot(v).is_none(), "add_local_row over cached row {v}");
            let s = self.local_ids.len();
            self.local_ids.push(v);
            self.local_data.resize(self.local_data.len() + self.stride, INF);
            self.local_data[s * self.stride + v as usize] = 0;
            self.slot_of[v as usize] = s as u32 | LOCAL_BIT;
            self.sorted_stale = true;
        }
        self.dirty.insert(v);
        self.epoch_dirty.insert(v);
    }

    /// Grows every row to `new_n` columns (filled with `INF`). Within the
    /// current capacity this is just a bound bump — the tails are already
    /// `INF`; past it the stride doubles and the arena is re-laid out once,
    /// matching the paper's amortized resize analysis (§IV.C.1a).
    pub fn grow_columns(&mut self, new_n: usize) {
        debug_assert!(new_n >= self.n);
        if new_n > self.stride {
            let new_stride = new_n.max(self.stride * 2);
            self.local_data = relayout(&self.local_data, self.n, self.stride, new_stride);
            self.cached_data = relayout(&self.cached_data, self.n, self.stride, new_stride);
            self.stride = new_stride;
        }
        self.n = new_n;
        self.slot_of.resize(new_n, NO_SLOT);
        self.dirty.ensure(new_n);
        self.epoch_dirty.ensure(new_n);
    }

    /// Read a row: local first, then cached. `None` if unknown here.
    pub fn row(&self, v: VertexId) -> Option<&[Dist]> {
        if let Some(s) = self.local_slot(v) {
            return Some(&self.local_data[s * self.stride..s * self.stride + self.n]);
        }
        self.cached_slot(v).map(|s| &self.cached_data[s * self.stride..s * self.stride + self.n])
    }

    /// Read a local row.
    pub fn local_row(&self, v: VertexId) -> Option<&[Dist]> {
        self.local_slot(v).map(|s| &self.local_data[s * self.stride..s * self.stride + self.n])
    }

    /// True if `v` has a local row here.
    pub fn is_local(&self, v: VertexId) -> bool {
        self.local_slot(v).is_some()
    }

    /// Ids of local rows, sorted (deterministic iteration order). Served
    /// from the membership cache when it is fresh.
    pub fn local_ids_sorted(&self) -> Vec<VertexId> {
        if !self.sorted_stale {
            return self.sorted_local.clone();
        }
        let mut ids = self.local_ids.clone();
        ids.sort_unstable();
        ids
    }

    /// Ids of every row available here (local + cached), sorted.
    pub fn all_ids_sorted(&self) -> Vec<VertexId> {
        if !self.sorted_stale {
            return self.sorted_all.clone();
        }
        let mut ids: Vec<VertexId> =
            self.local_ids.iter().chain(self.cached_ids.iter()).copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Rebuilds the cached sorted-id views if membership changed.
    fn refresh_sorted(&mut self) {
        if !self.sorted_stale {
            return;
        }
        self.sorted_local.clone_from(&self.local_ids);
        self.sorted_local.sort_unstable();
        self.sorted_all.clear();
        self.sorted_all.extend(self.local_ids.iter().chain(self.cached_ids.iter()));
        self.sorted_all.sort_unstable();
        self.sorted_stale = false;
    }

    /// Runs `f` on the (mutable) local row of `v`; a `true` return marks
    /// the row dirty. Returns `f`'s verdict. This is the split-borrow
    /// mutation point that replaced the old take/put-back row shuffle — the
    /// row never leaves the arena.
    pub fn update_local_row(&mut self, v: VertexId, f: impl FnOnce(&mut [Dist]) -> bool) -> bool {
        let s = self.local_slot(v).expect("update_local_row on missing row");
        let changed = f(&mut self.local_data[s * self.stride..s * self.stride + self.n]);
        if changed {
            self.dirty.insert(v);
            self.epoch_dirty.insert(v);
        }
        changed
    }

    /// Removes a local row entirely (migration). Returns it if present.
    pub fn remove_local(&mut self, v: VertexId) -> Option<Vec<Dist>> {
        let s = self.local_slot(v)?;
        self.dirty.remove(v);
        self.epoch_dirty.remove(v);
        self.slot_of[v as usize] = NO_SLOT;
        self.sorted_stale = true;
        Some(swap_remove_row(
            &mut self.local_data,
            &mut self.local_ids,
            &mut self.slot_of,
            s,
            self.stride,
            self.n,
            LOCAL_BIT,
        ))
    }

    /// Installs a migrated row as local (overwrites any cached copy).
    pub fn install_local(&mut self, v: VertexId, mut row: Vec<Dist>, dirty: bool) {
        row.resize(self.n, INF);
        if let Some(s) = self.cached_slot(v) {
            self.slot_of[v as usize] = NO_SLOT;
            swap_remove_row(
                &mut self.cached_data,
                &mut self.cached_ids,
                &mut self.slot_of,
                s,
                self.stride,
                self.n,
                0,
            );
            self.sorted_stale = true;
        }
        match self.local_slot(v) {
            Some(s) => {
                self.local_data[s * self.stride..s * self.stride + self.n].copy_from_slice(&row);
            }
            None => {
                let s = self.local_ids.len();
                self.local_ids.push(v);
                self.local_data.resize(self.local_data.len() + self.stride, INF);
                self.local_data[s * self.stride..s * self.stride + self.n].copy_from_slice(&row);
                self.slot_of[v as usize] = s as u32 | LOCAL_BIT;
                self.sorted_stale = true;
            }
        }
        if dirty {
            self.dirty.insert(v);
        }
        // An installed row may hold any values (migration, restore,
        // recompute), so the published closeness of `v` must be refreshed
        // regardless of the wire-dirty flag.
        self.epoch_dirty.insert(v);
    }

    /// Element-wise min-merge into a local row. Returns `true` (and marks
    /// dirty) if any entry improved.
    pub fn min_merge_local(&mut self, v: VertexId, incoming: &[Dist]) -> bool {
        let s = self.local_slot(v).expect("min_merge_local on missing row");
        let row = &mut self.local_data[s * self.stride..s * self.stride + self.n];
        let changed = min_merge(row, incoming);
        if changed {
            self.dirty.insert(v);
            self.epoch_dirty.insert(v);
        }
        changed
    }

    /// Sparse min-merge of `(column, distance)` pairs into a local row
    /// (delta wire format). Returns `true` (and marks dirty) if any entry
    /// improved.
    pub fn min_merge_local_sparse(&mut self, v: VertexId, pairs: &[(VertexId, Dist)]) -> bool {
        let s = self.local_slot(v).expect("min_merge_local_sparse on missing row");
        let row = &mut self.local_data[s * self.stride..s * self.stride + self.n];
        let changed = min_merge_sparse(row, pairs);
        if changed {
            self.dirty.insert(v);
            self.epoch_dirty.insert(v);
        }
        changed
    }

    /// Min-merges an incoming external-boundary row into the cache
    /// (creating it if new). Returns `true` if anything improved.
    pub fn min_merge_cached(&mut self, v: VertexId, incoming: &[Dist]) -> bool {
        debug_assert!(!self.is_local(v), "cached merge of a local row {v}");
        match self.cached_slot(v) {
            Some(s) => {
                let row = &mut self.cached_data[s * self.stride..s * self.stride + self.n];
                min_merge(row, incoming)
            }
            None => {
                let s = self.push_cached_inf(v);
                let row = &mut self.cached_data[s * self.stride..s * self.stride + self.n];
                min_merge(row, incoming);
                true
            }
        }
    }

    /// Sparse variant of [`DvStore::min_merge_cached`] for the delta wire
    /// format. A delta for a row never seen here (possible only when the
    /// chaos layer dropped the initial full row) merges into a fresh
    /// all-`INF` row — still a sound upper bound.
    pub fn min_merge_cached_sparse(&mut self, v: VertexId, pairs: &[(VertexId, Dist)]) -> bool {
        debug_assert!(!self.is_local(v), "cached merge of a local row {v}");
        match self.cached_slot(v) {
            Some(s) => {
                let row = &mut self.cached_data[s * self.stride..s * self.stride + self.n];
                min_merge_sparse(row, pairs)
            }
            None => {
                let s = self.push_cached_inf(v);
                let row = &mut self.cached_data[s * self.stride..s * self.stride + self.n];
                min_merge_sparse(row, pairs);
                true
            }
        }
    }

    /// Appends an all-`INF` cached row for `v`; returns its slot.
    fn push_cached_inf(&mut self, v: VertexId) -> usize {
        let s = self.cached_ids.len();
        self.cached_ids.push(v);
        self.cached_data.resize(self.cached_data.len() + self.stride, INF);
        self.slot_of[v as usize] = s as u32;
        self.sorted_stale = true;
        s
    }

    /// Drops all cached external rows (used on repartition).
    pub fn clear_cache(&mut self) {
        for &v in &self.cached_ids {
            self.slot_of[v as usize] = NO_SLOT;
        }
        self.cached_ids.clear();
        self.cached_data.clear();
        self.sorted_stale = true;
    }

    /// Marks a local row dirty.
    pub fn mark_dirty(&mut self, v: VertexId) {
        debug_assert!(self.is_local(v));
        self.dirty.insert(v);
    }

    /// Marks every local row dirty.
    pub fn mark_all_dirty(&mut self) {
        for i in 0..self.local_ids.len() {
            self.dirty.insert(self.local_ids[i]);
        }
    }

    /// True if any local row awaits sending.
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Takes the dirty set, sorted (deterministic send order).
    pub fn take_dirty_sorted(&mut self) -> Vec<VertexId> {
        let ids = self.dirty.to_sorted();
        self.dirty.clear();
        ids
    }

    /// Takes the epoch-dirty set (rows whose values changed since the last
    /// publish), sorted. Drained once per published epoch; independent of
    /// the wire-dirty set, which produce drains every RC step.
    pub fn take_epoch_dirty_sorted(&mut self) -> Vec<VertexId> {
        let ids = self.epoch_dirty.to_sorted();
        self.epoch_dirty.clear();
        ids
    }

    /// Memory the rows occupy, in bytes (diagnostics; live columns only,
    /// excluding the arena's reserve capacity).
    pub fn memory_bytes(&self) -> usize {
        (self.num_local() + self.num_cached()) * self.n * std::mem::size_of::<Dist>()
    }

    // --------------------------------------------------------------------
    // Relaxation kernel
    // --------------------------------------------------------------------

    fn pivot_src(&self, u: VertexId) -> Option<(VertexId, PivotSrc)> {
        if let Some(s) = self.local_slot(u) {
            return Some((u, PivotSrc::Local(s as u32)));
        }
        self.cached_slot(u).map(|s| (u, PivotSrc::Cached(s as u32)))
    }

    /// Min-plus relaxation until the rank-local fixed point (the paper's
    /// Floyd–Warshall-flavoured local refresh, §IV.C.1), seeded by the
    /// sorted changed-row ids in `initial`.
    ///
    /// A relaxation `D[v][·] ← min(D[v][·], D[v][u] + D[u][·])` can newly
    /// improve only when (a) pivot `u`'s row changed, or (b) row `v`'s
    /// column `u` changed. Each round therefore relaxes every local row
    /// through the rows that changed last round, and additionally
    /// re-relaxes *rows that changed themselves* through **all** available
    /// pivots — covering case (b).
    ///
    /// The kernel is **Jacobi-structured**: each round snapshots the local
    /// arena once, and every row relaxes against the pre-round pivot
    /// values (cached rows never change mid-kernel and are read in place).
    /// Rows are therefore independent within a round, so `threads > 1`
    /// splits them across scoped threads **bit-identically** to the
    /// sequential pass — per-row work and the per-row pivot order (sorted
    /// ids) are the same either way. Entries only decrease and every call
    /// runs to quiescence, so the fixed point — and with it the produced
    /// dirty set (changed ⟺ final ≠ initial, by monotonicity) — matches
    /// the old in-place kernel exactly.
    ///
    /// Marks changed rows dirty; returns whether any local row changed.
    pub fn relax_to_fixed_point(&mut self, initial: &[VertexId], threads: usize) -> bool {
        debug_assert!(initial.windows(2).all(|w| w[0] < w[1]), "initial must be sorted unique");
        self.refresh_sorted();
        let nl = self.local_ids.len();
        if nl == 0 || initial.is_empty() {
            return false;
        }
        let (n, stride) = (self.n, self.stride);

        // Round-1 pivots: the changed rows (ids without a row here are
        // simply never relaxed through — same as the old kernel skipping
        // them on lookup). Changed *local* rows also start as
        // full-relaxation targets.
        let mut pivots: Vec<(VertexId, PivotSrc)> =
            initial.iter().filter_map(|&u| self.pivot_src(u)).collect();
        let mut full = vec![false; nl];
        for &u in initial {
            if let Some(s) = self.local_slot(u) {
                full[s] = true;
            }
        }
        // Membership is fixed for the whole kernel, so the all-rows pivot
        // list (for full targets) resolves once.
        let all_pivots: Vec<(VertexId, PivotSrc)> =
            self.sorted_all.iter().filter_map(|&u| self.pivot_src(u)).collect();

        let mut snap: Vec<Dist> = Vec::new();
        let mut ever = vec![false; nl];
        while !pivots.is_empty() {
            // The per-round pivot snapshot: one bulk copy of the local
            // arena (reused across rounds).
            snap.clone_from(&self.local_data);
            let changed = relax_round(
                &mut self.local_data,
                &snap,
                &self.cached_data,
                &self.local_ids,
                n,
                stride,
                &pivots,
                &all_pivots,
                &full,
                threads,
            );
            // Next round: changed rows are both the pivots and the full
            // targets, visited in sorted-id order.
            pivots.clear();
            for &v in &self.sorted_local {
                let s = (self.slot_of[v as usize] & !LOCAL_BIT) as usize;
                if changed[s] {
                    pivots.push((v, PivotSrc::Local(s as u32)));
                    ever[s] = true;
                }
            }
            full = changed;
        }
        let mut any = false;
        for (s, &e) in ever.iter().enumerate() {
            if e {
                self.dirty.insert(self.local_ids[s]);
                self.epoch_dirty.insert(self.local_ids[s]);
                any = true;
            }
        }
        any
    }

    // --------------------------------------------------------------------
    // Checkpoint support
    // --------------------------------------------------------------------

    /// Clones every local row, sorted by vertex id (deterministic snapshot
    /// order).
    pub fn export_local_sorted(&self) -> Vec<(VertexId, Vec<Dist>)> {
        let mut ids = self.local_ids.clone();
        ids.sort_unstable();
        ids.into_iter().map(|v| (v, self.local_row(v).expect("local row").to_vec())).collect()
    }

    /// Clones every cached external row, sorted by vertex id.
    pub fn export_cached_sorted(&self) -> Vec<(VertexId, Vec<Dist>)> {
        let mut ids = self.cached_ids.clone();
        ids.sort_unstable();
        ids.into_iter().map(|v| (v, self.row(v).expect("cached row").to_vec())).collect()
    }

    /// The dirty set, sorted, without draining it (snapshots must not
    /// perturb the RC phase).
    pub fn dirty_sorted(&self) -> Vec<VertexId> {
        self.dirty.to_sorted()
    }

    /// Installs a cached external row verbatim (restore path; rows shorter
    /// than the current column count are padded with `INF`).
    pub fn install_cached(&mut self, v: VertexId, mut row: Vec<Dist>) {
        debug_assert!(!self.is_local(v), "cached install of local row {v}");
        row.resize(self.n, INF);
        let s = match self.cached_slot(v) {
            Some(s) => s,
            None => self.push_cached_inf(v),
        };
        self.cached_data[s * self.stride..s * self.stride + self.n].copy_from_slice(&row);
    }

    /// Clears the dirty set (restore path: the snapshot's dirty mask is
    /// installed exactly, replacing whatever construction left behind).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }
}

/// Re-lays an arena out with a wider stride, preserving the first `n`
/// columns of every row and `INF`-filling the rest.
fn relayout(data: &[Dist], n: usize, stride: usize, new_stride: usize) -> Vec<Dist> {
    let rows = data.len().checked_div(stride).unwrap_or(0);
    let mut out = vec![INF; rows * new_stride];
    for s in 0..rows {
        out[s * new_stride..s * new_stride + n].copy_from_slice(&data[s * stride..s * stride + n]);
    }
    out
}

/// Swap-removes row `s` from an arena, keeping slots dense. Returns the
/// removed row (live columns only). `tag` is OR-ed into the moved row's
/// `slot_of` entry (`LOCAL_BIT` for the local arena, `0` for cached).
fn swap_remove_row(
    data: &mut Vec<Dist>,
    ids: &mut Vec<VertexId>,
    slot_of: &mut [u32],
    s: usize,
    stride: usize,
    n: usize,
    tag: u32,
) -> Vec<Dist> {
    let last = ids.len() - 1;
    let row = data[s * stride..s * stride + n].to_vec();
    if s != last {
        let (head, tail) = data.split_at_mut(last * stride);
        head[s * stride..s * stride + stride].copy_from_slice(&tail[..stride]);
        let moved = ids[last];
        ids[s] = moved;
        slot_of[moved as usize] = s as u32 | tag;
    }
    ids.pop();
    data.truncate(ids.len() * stride);
    row
}

/// Target working-set bytes for one row block of the round kernel. Rows
/// are relaxed a block at a time with the pivot loop on the outside, so
/// every pivot row streams from memory once per *block* instead of once
/// per row — on arenas larger than cache this turns the round from
/// memory-bandwidth-bound into compute-bound. The per-row pivot order is
/// unchanged (rows are independent within a round), so tiling is a pure
/// loop interchange: bit-identical results.
const BLOCK_TARGET_BYTES: usize = 256 << 10;

/// One Jacobi round: every local row relaxes against the pre-round pivot
/// snapshot; returns the per-slot changed flags. With `threads > 1` and
/// enough cells, row blocks are chunked across scoped threads —
/// bit-identical to the sequential pass because rows are independent
/// within a round.
#[allow(clippy::too_many_arguments)]
fn relax_round(
    rows: &mut [Dist],
    snap: &[Dist],
    cached: &[Dist],
    ids: &[VertexId],
    n: usize,
    stride: usize,
    pivots: &[(VertexId, PivotSrc)],
    all_pivots: &[(VertexId, PivotSrc)],
    full: &[bool],
    threads: usize,
) -> Vec<bool> {
    let nl = ids.len();
    // `pivots` is a sorted-by-id subsequence of `all_pivots`; one merge
    // walk turns the pair into a single flagged list, so the block loop
    // below visits each pivot row once and non-full rows still see exactly
    // the round-pivot subsequence, in the same order as before.
    let mut round = pivots.iter().peekable();
    let flagged: Vec<(VertexId, PivotSrc, bool)> = all_pivots
        .iter()
        .map(|&(u, src)| {
            let hit = matches!(round.peek(), Some(&&(p, _)) if p == u);
            if hit {
                round.next();
            }
            (u, src, hit)
        })
        .collect();
    debug_assert!(round.next().is_none(), "round pivots must be a subsequence of all pivots");

    let block_rows =
        (BLOCK_TARGET_BYTES / (stride * std::mem::size_of::<Dist>()).max(1)).clamp(1, 64);
    // Relaxes the block of `flags.len()` rows starting at slot `base`
    // (backed by `data`) through every applicable pivot, pivot-major.
    let relax_block = |base: usize, data: &mut [Dist], flags: &mut [bool]| {
        let has_full = full[base..base + flags.len()].iter().any(|&f| f);
        for &(u, src, in_round) in &flagged {
            if !in_round && !has_full {
                continue;
            }
            let via = match src {
                PivotSrc::Local(t) => &snap[t as usize * stride..t as usize * stride + n],
                PivotSrc::Cached(t) => &cached[t as usize * stride..t as usize * stride + n],
            };
            for (i, row) in data.chunks_mut(stride).enumerate() {
                let s = base + i;
                if (!in_round && !full[s]) || ids[s] == u {
                    continue;
                }
                let through = row[u as usize];
                if through == INF {
                    continue;
                }
                flags[i] |= relax_via(&mut row[..n], through, via);
            }
        }
    };
    let workers = threads.min(nl);
    let mut changed = vec![false; nl];
    if workers <= 1 || nl * n < PARALLEL_MIN_CELLS {
        for (b, (data, flags)) in
            rows.chunks_mut(block_rows * stride).zip(changed.chunks_mut(block_rows)).enumerate()
        {
            relax_block(b * block_rows, data, flags);
        }
    } else {
        // The vendored rayon substitute is sequential, so chunk by hand
        // over scoped threads; each worker owns a disjoint slot range and
        // tiles it into the same row blocks the sequential pass uses.
        let chunk_rows = nl.div_ceil(workers);
        std::thread::scope(|scope| {
            let relax_block = &relax_block;
            for ((chunk, data), flags) in
                rows.chunks_mut(chunk_rows * stride).enumerate().zip(changed.chunks_mut(chunk_rows))
            {
                scope.spawn(move || {
                    let base = chunk * chunk_rows;
                    for (b, (d, f)) in data
                        .chunks_mut(block_rows * stride)
                        .zip(flags.chunks_mut(block_rows))
                        .enumerate()
                    {
                        relax_block(base + b * block_rows, d, f);
                    }
                });
            }
        });
    }
    changed
}

/// Element-wise `dst = min(dst, src)`; returns whether anything changed.
/// The incoming row may be shorter than `dst` (sender had fewer columns);
/// missing entries are treated as `INF`. Branchless (select + flag
/// accumulation) so the loop auto-vectorizes; on x86-64 with AVX2 a
/// runtime-dispatched recompilation of the same loop runs 8 lanes wide
/// (bit-identical: the arithmetic is elementwise integer either way).
pub fn min_merge(dst: &mut [Dist], src: &[Dist]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { min_merge_avx2(dst, src) };
    }
    min_merge_scalar(dst, src)
}

#[inline(always)]
fn min_merge_scalar(dst: &mut [Dist], src: &[Dist]) -> bool {
    let mut changed = false;
    for (d, &s) in dst.iter_mut().zip(src) {
        let m = if s < *d { s } else { *d };
        changed |= m < *d;
        *d = m;
    }
    changed
}

/// The same loop compiled with AVX2 enabled: native unsigned `u32` min and
/// 256-bit lanes, which the baseline x86-64 target (SSE2) cannot emit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn min_merge_avx2(dst: &mut [Dist], src: &[Dist]) -> bool {
    min_merge_scalar(dst, src)
}

/// Sparse min-merge of `(column, distance)` pairs (delta wire format).
/// Columns beyond `dst` (sender grew first — cannot happen in a barrier
/// exchange, but harmless) are ignored.
pub fn min_merge_sparse(dst: &mut [Dist], pairs: &[(VertexId, Dist)]) -> bool {
    let mut changed = false;
    for &(t, d) in pairs {
        if let Some(cell) = dst.get_mut(t as usize) {
            if d < *cell {
                *cell = d;
                changed = true;
            }
        }
    }
    changed
}

/// Relaxes `row[t] = min(row[t], through + via[t])` for all `t`.
/// Returns whether anything improved. This is the inner loop of the whole
/// engine — branchless (saturating add + select + flag accumulation) so it
/// auto-vectorizes; on x86-64 with AVX2 a runtime-dispatched recompilation
/// of the same loop runs 8 lanes wide (bit-identical: the arithmetic is
/// elementwise integer either way).
#[inline]
pub fn relax_via(row: &mut [Dist], through: Dist, via: &[Dist]) -> bool {
    if through == INF {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { relax_via_avx2(row, through, via) };
    }
    relax_via_scalar(row, through, via)
}

#[inline(always)]
fn relax_via_scalar(row: &mut [Dist], through: Dist, via: &[Dist]) -> bool {
    let mut changed = false;
    for (r, &b) in row.iter_mut().zip(via) {
        let cand = through.saturating_add(b);
        let m = if cand < *r { cand } else { *r };
        changed |= m < *r;
        *r = m;
    }
    changed
}

/// The same loop compiled with AVX2 enabled: native unsigned `u32` min and
/// 256-bit lanes, which the baseline x86-64 target (SSE2) cannot emit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn relax_via_avx2(row: &mut [Dist], through: Dist, via: &[Dist]) -> bool {
    relax_via_scalar(row, through, via)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_row_is_identity() {
        let mut dv = DvStore::new(4);
        dv.add_local_row(2);
        assert_eq!(dv.row(2).unwrap(), &[INF, INF, 0, INF]);
        assert!(dv.is_local(2));
        assert!(dv.has_dirty());
        assert_eq!(dv.num_local(), 1);
    }

    #[test]
    fn grow_columns_extends_all_rows() {
        let mut dv = DvStore::new(2);
        dv.add_local_row(0);
        dv.min_merge_cached(1, &[3, 0]);
        dv.grow_columns(4);
        assert_eq!(dv.n(), 4);
        assert_eq!(dv.row(0).unwrap().len(), 4);
        assert_eq!(dv.row(1).unwrap(), &[3, 0, INF, INF]);
    }

    #[test]
    fn grow_within_capacity_keeps_data_and_tail_inf() {
        let mut dv = DvStore::new(2);
        dv.add_local_row(0);
        dv.min_merge_local(0, &[0, 7]);
        // Force a capacity re-layout (stride doubles), then grow within it.
        dv.grow_columns(3); // stride 2 -> 4
        assert_eq!(dv.row(0).unwrap(), &[0, 7, INF]);
        dv.grow_columns(4); // in capacity: bound bump only
        assert_eq!(dv.row(0).unwrap(), &[0, 7, INF, INF]);
        dv.add_local_row(3);
        assert_eq!(dv.row(3).unwrap(), &[INF, INF, INF, 0]);
        // Past capacity again: amortized doubling.
        dv.grow_columns(9); // stride 4 -> 9
        assert_eq!(dv.row(0).unwrap()[..2], [0, 7]);
        assert!(dv.row(0).unwrap()[2..].iter().all(|&d| d == INF));
        assert_eq!(dv.row(3).unwrap()[3], 0);
    }

    #[test]
    fn min_merge_only_improves() {
        let mut dst = vec![5, INF, 2];
        assert!(min_merge(&mut dst, &[7, 4, 2]));
        assert_eq!(dst, vec![5, 4, 2]);
        assert!(!min_merge(&mut dst, &[9, 9, 9]));
        // Shorter source: missing tail untouched.
        assert!(min_merge(&mut dst, &[1]));
        assert_eq!(dst, vec![1, 4, 2]);
    }

    #[test]
    fn sparse_merges_improve_and_ignore_out_of_range() {
        let mut dst = vec![5, INF, 2];
        assert!(min_merge_sparse(&mut dst, &[(1, 4), (2, 9), (7, 0)]));
        assert_eq!(dst, vec![5, 4, 2]);
        assert!(!min_merge_sparse(&mut dst, &[(0, 5)]));

        let mut dv = DvStore::new(3);
        dv.add_local_row(0);
        dv.take_dirty_sorted();
        assert!(dv.min_merge_local_sparse(0, &[(2, 4)]));
        assert_eq!(dv.row(0).unwrap(), &[0, INF, 4]);
        assert!(dv.has_dirty());
        // Cached delta without a prior full row creates an INF row.
        assert!(dv.min_merge_cached_sparse(1, &[(0, 9)]));
        assert_eq!(dv.row(1).unwrap(), &[9, INF, INF]);
    }

    #[test]
    fn cached_merge_creates_and_improves() {
        let mut dv = DvStore::new(3);
        assert!(dv.min_merge_cached(1, &[4, 0, 9]));
        assert!(dv.min_merge_cached(1, &[4, 0, 5]));
        assert!(!dv.min_merge_cached(1, &[6, 1, 7]));
        assert_eq!(dv.row(1).unwrap(), &[4, 0, 5]);
        assert_eq!(dv.num_cached(), 1);
        dv.clear_cache();
        assert!(dv.row(1).is_none());
    }

    #[test]
    fn dirty_lifecycle() {
        let mut dv = DvStore::new(3);
        dv.add_local_row(0);
        dv.add_local_row(2);
        assert_eq!(dv.take_dirty_sorted(), vec![0, 2]);
        assert!(!dv.has_dirty());
        dv.min_merge_local(0, &[0, 1, 1]);
        assert_eq!(dv.take_dirty_sorted(), vec![0]);
        // No improvement -> no dirt.
        dv.min_merge_local(0, &[0, 5, 5]);
        assert!(!dv.has_dirty());
    }

    #[test]
    fn update_local_row_marks_dirty_on_change() {
        let mut dv = DvStore::new(2);
        dv.add_local_row(0);
        dv.take_dirty_sorted();
        assert!(!dv.update_local_row(0, |_| false));
        assert!(!dv.has_dirty());
        assert!(dv.update_local_row(0, |row| {
            row[1] = 7;
            true
        }));
        assert_eq!(dv.row(0).unwrap(), &[0, 7]);
        assert!(dv.has_dirty());
    }

    #[test]
    fn migration_install_and_remove() {
        let mut dv = DvStore::new(3);
        dv.min_merge_cached(1, &[9, 0, 9]);
        dv.install_local(1, vec![8, 0, 8], true);
        assert!(dv.is_local(1));
        assert_eq!(dv.num_cached(), 0);
        let row = dv.remove_local(1).unwrap();
        assert_eq!(row, vec![8, 0, 8]);
        assert!(!dv.has_dirty());
    }

    #[test]
    fn swap_remove_keeps_other_rows_intact() {
        let mut dv = DvStore::new(4);
        for v in 0..3 {
            dv.add_local_row(v);
            dv.min_merge_local(v, &[v + 10; 4]);
        }
        // Remove the middle slot; the last row is swapped into its place.
        let row1 = dv.remove_local(1).unwrap();
        assert_eq!(row1[3], 11);
        assert_eq!(dv.num_local(), 2);
        assert!(dv.row(1).is_none());
        assert_eq!(dv.row(0).unwrap()[3], 10);
        assert_eq!(dv.row(2).unwrap()[3], 12);
        assert_eq!(dv.local_ids_sorted(), vec![0, 2]);
        assert_eq!(dv.local_row(2).unwrap()[2], 0);
    }

    #[test]
    fn export_and_reinstall_roundtrip() {
        let mut dv = DvStore::new(3);
        dv.add_local_row(2);
        dv.add_local_row(0);
        dv.min_merge_local(0, &[0, 4, 7]);
        dv.min_merge_cached(1, &[9, 0, 9]);
        dv.take_dirty_sorted();
        dv.mark_dirty(0);

        let local = dv.export_local_sorted();
        let cached = dv.export_cached_sorted();
        let dirty = dv.dirty_sorted();
        assert_eq!(local.iter().map(|&(v, _)| v).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(cached.len(), 1);
        assert_eq!(dirty, vec![0]);
        // Export does not drain dirt.
        assert!(dv.has_dirty());

        let mut fresh = DvStore::new(3);
        for (v, row) in local {
            fresh.install_local(v, row, false);
        }
        for (v, row) in cached {
            fresh.install_cached(v, row);
        }
        fresh.clear_dirty();
        for v in dirty {
            fresh.mark_dirty(v);
        }
        assert_eq!(fresh.row(0).unwrap(), dv.row(0).unwrap());
        assert_eq!(fresh.row(1).unwrap(), dv.row(1).unwrap());
        assert_eq!(fresh.dirty_sorted(), dv.dirty_sorted());
    }

    #[test]
    fn export_roundtrip_survives_capacity_growth() {
        // Rows written under one stride must export/import identically
        // after the arena re-laid itself out.
        let mut dv = DvStore::new(2);
        dv.add_local_row(0);
        dv.min_merge_local(0, &[0, 3]);
        dv.min_merge_cached(1, &[3, 0]);
        dv.grow_columns(5); // stride 2 -> 5
        dv.add_local_row(4);
        dv.grow_columns(6); // stride 5 -> 10
        let local = dv.export_local_sorted();
        let cached = dv.export_cached_sorted();
        assert!(local.iter().all(|(_, r)| r.len() == 6));

        let mut fresh = DvStore::new(6);
        for (v, row) in local {
            fresh.install_local(v, row, false);
        }
        for (v, row) in cached {
            fresh.install_cached(v, row);
        }
        assert_eq!(fresh.row(0).unwrap(), dv.row(0).unwrap());
        assert_eq!(fresh.row(1).unwrap(), dv.row(1).unwrap());
        assert_eq!(fresh.row(4).unwrap(), dv.row(4).unwrap());
    }

    #[test]
    fn memory_accounting() {
        let mut dv = DvStore::new(100);
        dv.add_local_row(0);
        dv.min_merge_cached(5, &[0; 100]);
        assert_eq!(dv.memory_bytes(), 2 * 100 * 4);
    }

    #[test]
    fn relax_via_saturates_and_detects_change() {
        let mut row = vec![5, INF, 3];
        assert!(relax_via(&mut row, 1, &[3, 2, 9]));
        assert_eq!(row, vec![4, 3, 3]);
        assert!(!relax_via(&mut row, INF, &[0, 0, 0]));
        assert!(!relax_via(&mut row, 10, &[INF, INF, INF]));
    }

    /// The kernel on a 4-path split 2|2: rank 0 holds rows 0,1 and a
    /// cached row 2; relaxing with pivot 2 must propagate 2's knowledge of
    /// 3 into both local rows, identically for 1 and 4 threads.
    #[test]
    fn kernel_reaches_fixed_point_and_matches_parallel() {
        let build = || {
            let mut dv = DvStore::new(4);
            dv.add_local_row(0);
            dv.add_local_row(1);
            dv.min_merge_local(0, &[0, 1, 2, INF]);
            dv.min_merge_local(1, &[1, 0, 1, INF]);
            dv.min_merge_cached(2, &[INF, INF, 0, 1]);
            dv.take_dirty_sorted();
            dv
        };
        let mut seq = build();
        let mut par = build();
        assert!(seq.relax_to_fixed_point(&[2], 1));
        assert!(par.relax_to_fixed_point(&[2], 4));
        assert_eq!(seq.row(0).unwrap(), &[0, 1, 2, 3]);
        assert_eq!(seq.row(1).unwrap(), &[1, 0, 1, 2]);
        assert_eq!(seq.row(0).unwrap(), par.row(0).unwrap());
        assert_eq!(seq.row(1).unwrap(), par.row(1).unwrap());
        assert_eq!(seq.dirty_sorted(), par.dirty_sorted());
        assert_eq!(seq.dirty_sorted(), vec![0, 1]);
        // Quiescent: re-running with the same pivots changes nothing.
        seq.clear_dirty();
        assert!(!seq.relax_to_fixed_point(&[2], 1));
        assert!(!seq.has_dirty());
    }
}
