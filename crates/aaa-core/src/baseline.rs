//! The Baseline Restart comparator (§V.B.1): a method with no anytime
//! property that recomputes the full analysis from scratch on every change.

use crate::engine::{AnytimeEngine, EngineConfig};
use crate::error::CoreError;
use aaa_graph::AdjGraph;
use aaa_runtime::RunStats;

/// One from-scratch run: DD + IA + RC to convergence on the given graph.
/// Returns the closeness values and the run's cost.
pub fn restart_run(
    graph: &AdjGraph,
    config: &EngineConfig,
) -> Result<(Vec<f64>, RunStats), CoreError> {
    let mut engine = AnytimeEngine::new(graph.clone(), config.clone())?;
    engine.run_to_convergence();
    let closeness = engine.closeness();
    Ok((closeness, engine.stats()))
}

/// Baseline driver over a sequence of graph snapshots: restarts the
/// analysis for every snapshot and accumulates the total cost — exactly
/// what Figure 4 / Figure 8 compare the anytime anywhere approach against.
pub struct BaselineRestart {
    config: EngineConfig,
    total: RunStats,
    runs: usize,
}

impl BaselineRestart {
    /// Creates a baseline driver.
    pub fn new(config: EngineConfig) -> Self {
        Self { config, total: RunStats::default(), runs: 0 }
    }

    /// Analyzes a snapshot from scratch; returns its closeness values.
    pub fn analyze(&mut self, graph: &AdjGraph) -> Result<Vec<f64>, CoreError> {
        let (closeness, stats) = restart_run(graph, &self.config)?;
        self.total.merge(&stats);
        self.runs += 1;
        Ok(closeness)
    }

    /// Accumulated cost over all restarts.
    pub fn total_stats(&self) -> RunStats {
        self.total
    }

    /// Number of restarts performed.
    pub fn runs(&self) -> usize {
        self.runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_graph::closeness::closeness_exact;
    use aaa_graph::generators::{barabasi_albert, WeightModel};
    use aaa_graph::Csr;

    #[test]
    fn restart_matches_exact_closeness() {
        let g = barabasi_albert(60, 2, WeightModel::Unit, 3).unwrap();
        let (got, stats) = restart_run(&g, &EngineConfig::deterministic(4)).unwrap();
        let want = closeness_exact(&Csr::from_adj(&g));
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert!(stats.supersteps > 0);
    }

    #[test]
    fn baseline_accumulates_over_snapshots() {
        let g1 = barabasi_albert(40, 2, WeightModel::Unit, 5).unwrap();
        let mut g2 = g1.clone();
        let v = g2.add_vertex();
        g2.add_edge(v, 0, 1).unwrap();
        let mut baseline = BaselineRestart::new(EngineConfig::deterministic(3));
        let c1 = baseline.analyze(&g1).unwrap();
        let c2 = baseline.analyze(&g2).unwrap();
        assert_eq!(c1.len(), 40);
        assert_eq!(c2.len(), 41);
        assert_eq!(baseline.runs(), 2);
        let one = restart_run(&g1, &EngineConfig::deterministic(3)).unwrap().1;
        assert!(baseline.total_stats().sim_total_us() > one.sim_total_us());
    }
}
