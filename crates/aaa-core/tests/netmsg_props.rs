//! Property and corruption tests for the cluster protocol codec
//! (`NetMsg`), the layer that rides inside `Data` frames.
//!
//! The frame codec below this one guarantees integrity (CRC over the
//! whole frame), but the protocol decoder still has to be total: a buggy
//! or version-skewed peer can ship a frame that passes the CRC and still
//! carries garbage. Every byte-level corruption must come back as a typed
//! [`WireError`] or as a different-but-valid message — never a panic, and
//! never an allocation bomb from a hostile length prefix.

use aaa_core::rank::{RowMsg, RowPayload, WireFormat};
use aaa_core::{NetMsg, WireError};
use aaa_graph::INF;
use proptest::prelude::*;

fn any_row_payload() -> impl Strategy<Value = RowPayload> {
    (0u8..2).prop_flat_map(|which| match which {
        0 => proptest::collection::vec(0u32..=INF, 0..32).prop_map(RowPayload::Full).boxed(),
        _ => proptest::collection::vec((0u32..10_000, 0u32..=INF), 0..32)
            .prop_map(RowPayload::Delta)
            .boxed(),
    })
}

fn any_rowmsg() -> impl Strategy<Value = RowMsg> {
    proptest::collection::vec((0u32..10_000, any_row_payload()), 0..8)
        .prop_map(|rows| RowMsg { rows })
}

fn any_rows_list() -> impl Strategy<Value = Vec<(u32, Vec<u32>)>> {
    proptest::collection::vec((0u32..10_000, proptest::collection::vec(0u32..=INF, 0..24)), 0..6)
}

/// One strategy per message tag, so the corpus exercises every arm of the
/// codec — including the `Rows` arm with both Full and Delta payloads.
fn any_netmsg() -> impl Strategy<Value = NetMsg> {
    (0u8..15).prop_flat_map(|tag| match tag {
        0 => (
            (0u32..64, 1u32..64, 0u8..2, 0u64..1 << 40),
            proptest::collection::vec(0u32..64, 0..128),
            proptest::collection::vec((0u32..200, 0u32..200, 1u32..100), 0..256),
        )
            .prop_map(|((rank, procs, wire, cap_bytes), owner, edges)| NetMsg::Init {
                rank,
                procs,
                wire: if wire == 0 { WireFormat::Full } else { WireFormat::Delta },
                cap_bytes,
                owner,
                edges,
            })
            .boxed(),
        1 => (0u32..64).prop_map(|rank| NetMsg::Ready { rank }).boxed(),
        2 => (0u64..1 << 32).prop_map(|round| NetMsg::Produce { round }).boxed(),
        3 => ((0u64..1 << 32, 0u32..64), any_rowmsg())
            .prop_map(|((round, peer), msg)| NetMsg::Rows { round, peer, msg })
            .boxed(),
        4 => (0u64..1 << 32, 0u8..2)
            .prop_map(|(round, sent)| NetMsg::RowsDone { round, sent: sent == 1 })
            .boxed(),
        5 => (0u64..1 << 32, 0u32..1 << 16)
            .prop_map(|(round, expect)| NetMsg::Consume { round, expect })
            .boxed(),
        6 => (0u64..1 << 32, 0u8..2, 0u8..2)
            .prop_map(|(round, changed, dirty)| NetMsg::StepDone {
                round,
                changed: changed == 1,
                dirty: dirty == 1,
            })
            .boxed(),
        7 => Just(NetMsg::GatherClose).boxed(),
        8 => proptest::collection::vec((0u32..10_000, 0u64..=u64::MAX), 0..64)
            .prop_map(|pairs| NetMsg::CloseReply { pairs })
            .boxed(),
        9 => Just(NetMsg::GatherRows).boxed(),
        10 => any_rows_list().prop_map(|rows| NetMsg::RowsReply { rows }).boxed(),
        11 => any_rows_list().prop_map(|rows| NetMsg::Absorb { rows }).boxed(),
        12 => Just(NetMsg::ResendAll).boxed(),
        13 => (
            0u64..1 << 32,
            proptest::collection::vec((0u32..10_000, 0u32..64), 0..32),
            proptest::collection::vec((0u32..10_000, 0u32..10_000, 1u32..100), 0..64),
        )
            .prop_map(|(round, moves, adj)| NetMsg::Reassign { round, moves, adj })
            .boxed(),
        _ => Just(NetMsg::Bye).boxed(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn encode_decode_is_the_identity(msg in any_netmsg()) {
        let bytes = msg.encode();
        let back = NetMsg::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn every_single_bit_flip_is_handled(msg in any_netmsg()) {
        // Unlike the frame layer there is no checksum here (the frame CRC
        // provides it), so a flip may legitimately decode to a different
        // valid message — but it must never panic or hang.
        let bytes = msg.encode();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                match NetMsg::decode(&bad) {
                    Ok(_) => {}
                    Err(
                        WireError::Truncated { .. }
                        | WireError::UnknownTag(_)
                        | WireError::UnknownWire(_)
                        | WireError::UnknownPayload(_)
                        | WireError::TrailingBytes { .. },
                    ) => {}
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error(msg in any_netmsg()) {
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            match NetMsg::decode(&bytes[..cut]) {
                Err(_) => {}
                // Dropping trailing bytes can only produce a shorter valid
                // message if the codec were ambiguous — it is length-prefixed
                // everywhere, so a strict prefix must never decode.
                Ok(short) => prop_assert!(
                    false,
                    "prefix of {cut}/{} bytes decoded as {short:?}",
                    bytes.len()
                ),
            }
        }
    }
}

/// A hostile count prefix must be rejected by bounds-checking against the
/// remaining input, not trusted as an allocation size.
#[test]
fn hostile_length_prefixes_do_not_allocate() {
    // CloseReply claiming u32::MAX pairs with a 4-byte body.
    let mut bomb = vec![9u8]; // CloseReply tag
    bomb.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(NetMsg::decode(&bomb), Err(WireError::Truncated { .. })));

    // Init claiming a huge owner table.
    let mut bomb = vec![1u8]; // Init tag
    bomb.extend_from_slice(&0u32.to_le_bytes()); // rank
    bomb.extend_from_slice(&4u32.to_le_bytes()); // procs
    bomb.push(0); // wire = Full
    bomb.extend_from_slice(&0u64.to_le_bytes()); // cap_bytes
    bomb.extend_from_slice(&u32::MAX.to_le_bytes()); // owner count
    assert!(matches!(NetMsg::decode(&bomb), Err(WireError::Truncated { .. })));

    // A Rows bundle whose inner row claims a giant Full vector.
    let mut bomb = vec![4u8]; // Rows tag
    bomb.extend_from_slice(&1u64.to_le_bytes()); // round
    bomb.extend_from_slice(&0u32.to_le_bytes()); // peer
    bomb.extend_from_slice(&1u32.to_le_bytes()); // one row
    bomb.extend_from_slice(&7u32.to_le_bytes()); // vertex
    bomb.push(0); // RowPayload::Full
    bomb.extend_from_slice(&u32::MAX.to_le_bytes()); // entry count
    assert!(matches!(NetMsg::decode(&bomb), Err(WireError::Truncated { .. })));
}

#[test]
fn unknown_tags_and_trailing_bytes_are_typed_errors() {
    assert!(matches!(NetMsg::decode(&[0xEE]), Err(WireError::UnknownTag(0xEE))));
    assert!(matches!(NetMsg::decode(&[]), Err(WireError::Truncated { .. })));

    let mut padded = NetMsg::Bye.encode();
    padded.push(0);
    assert!(matches!(NetMsg::decode(&padded), Err(WireError::TrailingBytes { extra: 1 })));

    // Unknown wire-format byte inside Init.
    let mut msg = NetMsg::Init {
        rank: 0,
        procs: 2,
        wire: WireFormat::Full,
        cap_bytes: 0,
        owner: vec![0, 1],
        edges: vec![(0, 1, 1)],
    }
    .encode();
    // Init layout: tag, rank u32, procs u32, wire u8 at offset 9.
    msg[9] = 9;
    assert!(matches!(NetMsg::decode(&msg), Err(WireError::UnknownWire(9))));
}
