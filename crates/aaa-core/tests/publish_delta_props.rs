//! Property suite for epoch-delta view publication: across randomized
//! change streams, growth over chunk boundaries, restores, rebalances and
//! vertex removals, a view published by the `O(changed)` delta path must
//! be **bit-identical** to one rebuilt from scratch — closeness, bounds,
//! and top-k for every k — and the follower reconstruction from encoded
//! [`ViewDelta`]s must land on the same bits. Epoch ids stay monotone
//! under concurrent readers throughout.

use aaa_core::{
    AnytimeEngine, AssignStrategy, BoundsMode, DynamicChange, EngineConfig, NewVertex,
    PublishedView, Publisher, VertexBatch, TOPK_SERVE_CAP,
};
use aaa_graph::AdjGraph;
use proptest::prelude::*;
use std::sync::Arc;

/// The shim has no float strategies; derive closeness-like values from
/// raw integers (distinct enough to churn the top-k, with deliberate
/// collisions so id tie-breaks fire).
fn val(raw: u32) -> f64 {
    (raw % 4096) as f64 / 4096.0
}

/// Full bitwise equivalence of two views, including every top-k size and
/// agreement between the maintained index and the rescan oracle.
fn assert_views_match(a: &PublishedView, b: &PublishedView) {
    assert_eq!(a.epoch, b.epoch, "lockstep epochs");
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.closeness(), b.closeness(), "closeness drifted");
    assert_eq!(a.has_bounds(), b.has_bounds());
    if a.has_bounds() {
        assert_eq!(a.bounds(), b.bounds(), "bounds drifted");
    }
    for k in [0, 1, 3, TOPK_SERVE_CAP, a.num_vertices(), a.num_vertices() + 7] {
        assert_eq!(a.top_k(k), b.top_k(k), "top_k({k}) drifted");
        assert_eq!(a.top_k(k), a.top_k_rescan(k), "index disagrees with the rescan oracle");
    }
}

/// One synthetic epoch: optional growth plus raw `(id, value)` rows.
type RawEpoch = (usize, Vec<(u32, u32)>);

fn epochs_strategy() -> impl Strategy<Value = (usize, Vec<RawEpoch>)> {
    (
        1usize..2400,
        proptest::collection::vec(
            (0usize..1300, proptest::collection::vec((0u32..4096, 0u32..4096), 0..48)),
            1..7,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Publisher-level lockstep: a delta publisher, a forced-full
    /// publisher fed the same streams, and a follower reconstructing
    /// views purely from each epoch's encoded `ViewDelta` must all hold
    /// the same bits — across chunk boundaries and random growth.
    #[test]
    fn delta_full_and_follower_views_agree(input in epochs_strategy()) {
        let (n0, raw_epochs) = input;
        let mut delta = Publisher::new(BoundsMode::None);
        let mut full = Publisher::new(BoundsMode::None);
        full.set_force_full(true);

        let mut current: Vec<f64> = (0..n0).map(|i| val(i as u32 * 37)).collect();
        delta.publish(0, 0, false, current.clone(), Vec::new());
        full.publish(0, 0, false, current.clone(), Vec::new());
        let mut follower: Arc<PublishedView> = delta.latest();

        for (step, (grow, raw)) in raw_epochs.into_iter().enumerate() {
            let n = current.len() + grow;
            current.resize(n, 0.0);
            let mut entries: Vec<(u32, f64)> =
                raw.into_iter().map(|(id, v)| (id % n as u32, val(v))).collect();
            entries.sort_by_key(|e| e.0);
            entries.dedup_by_key(|e| e.0);
            for &(id, c) in &entries {
                current[id as usize] = c;
            }
            delta.publish_changes(step + 1, 0, false, n, entries, Vec::new());
            full.publish(step + 1, 0, false, current.clone(), Vec::new());

            assert_views_match(&delta.latest(), &full.latest());

            // Follower: the encoded delta alone must reconstruct the
            // leader's view bit for bit (the replication contract).
            let wire = delta.last_delta().expect("delta recorded").to_msg().encode();
            let decoded = aaa_core::NetMsg::decode(&wire).expect("delta decodes");
            let applied = aaa_core::ViewDelta::from_msg(&decoded)
                .expect("ViewDelta message")
                .apply_to(&follower);
            assert_eq!(&applied, delta.latest().as_ref(), "follower drifted");
            follower = Arc::new(applied);
        }
    }
}

/// A small seeded engine pair: one publishing by delta (the default), one
/// with the delta path disabled. Drives both through an identical script.
fn engine_pair(
    n: usize,
    edges: &[(u32, u32, u32)],
    bounds: BoundsMode,
) -> (AnytimeEngine, AnytimeEngine) {
    let mut g = AdjGraph::with_vertices(n);
    for &(u, v, w) in edges {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v, w).expect("validated edge");
        }
    }
    let mut config = EngineConfig::deterministic(2);
    config.publish_bounds = bounds;
    let a = AnytimeEngine::new(g.clone(), config.clone()).expect("engine");
    let mut b = AnytimeEngine::new(g, config).expect("engine");
    b.set_force_full_publish(true);
    (a, b)
}

/// Mirrors one scripted operation onto both engines.
fn apply_op(engine: &mut AnytimeEngine, op: &(u8, u32, u32, u32)) {
    let &(code, x, y, w) = op;
    let n = engine.graph().num_vertices() as u32;
    let (u, v) = (x % n, y % n);
    match code % 6 {
        0 => {
            if u != v {
                let _ = engine.submit(DynamicChange::AddEdge { u, v, w: 1 + w % 9 });
            }
        }
        1 => {
            let _ = engine.submit(DynamicChange::RemoveEdge { u, v });
        }
        2 => {
            if u != v {
                let _ = engine.submit(DynamicChange::SetWeight { u, v, w: 1 + w % 9 });
            }
        }
        3 => {
            // A small batch: each new vertex hangs off an existing one.
            let batch = VertexBatch {
                vertices: (0..1 + (w as usize % 3))
                    .map(|i| NewVertex { edges: vec![((u + i as u32) % n, 1 + w % 5)] })
                    .collect(),
            };
            let _ = engine.submit_with_strategy(
                DynamicChange::AddVertices(batch),
                AssignStrategy::RoundRobin,
            );
        }
        4 => {
            engine.rc_step();
        }
        _ => {
            let _ = engine.drain_changes();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine-level lockstep: random graphs and change streams — edge
    /// churn, vertex batches, drains, interleaved RC steps — published by
    /// delta must match the forced-full engine bit for bit at every
    /// barrier, under both bounds modes.
    #[test]
    fn lockstep_engines_publish_identical_views(
        n in 4usize..24,
        edges in proptest::collection::vec((0u32..64, 0u32..64, 1u32..9), 1..40),
        ops in proptest::collection::vec((0u8..6, 0u32..64, 0u32..64, 0u32..64), 1..24),
        certified in 0u8..2,
    ) {
        let mode = if certified == 1 { BoundsMode::Certified } else { BoundsMode::None };
        let (mut a, mut b) = engine_pair(n, &edges, mode);
        assert_views_match(&a.published(), &b.published());
        for op in &ops {
            apply_op(&mut a, op);
            apply_op(&mut b, op);
            assert_views_match(&a.published(), &b.published());
        }
        let _ = a.drain_changes();
        let _ = b.drain_changes();
        while a.rc_step() { prop_assert!(b.rc_step()); }
        prop_assert!(!b.rc_step());
        assert_views_match(&a.published(), &b.published());
        prop_assert!(a.published().converged);
    }

    /// Vertex removal, background rebalancing and checkpoint/restore all
    /// reroute rows through `install_local` — the delta path must still
    /// re-state every row whose value moved.
    #[test]
    fn removal_rebalance_and_restore_publish_identically(
        n in 6usize..20,
        edges in proptest::collection::vec((0u32..64, 0u32..64, 1u32..9), 4..40),
        victim in 0u32..64,
        seed in 0u64..1000,
    ) {
        let (mut a, mut b) = engine_pair(n, &edges, BoundsMode::None);
        a.run_to_convergence();
        b.run_to_convergence();
        assert_views_match(&a.published(), &b.published());

        a.remove_vertices(&[victim % n as u32]).expect("removal");
        b.remove_vertices(&[victim % n as u32]).expect("removal");
        assert_views_match(&a.published(), &b.published());

        a.rebalance(seed).expect("rebalance");
        b.rebalance(seed).expect("rebalance");
        a.rc_step();
        b.rc_step();
        assert_views_match(&a.published(), &b.published());

        // Restore rewinds both engines to the checkpoint; the restored
        // publisher starts over (full first epoch), and the pair must
        // stay in lockstep through re-convergence.
        // (The two snapshots differ only in measured wall-time stats —
        // publishing mode must not leak into restored *behavior*.)
        let snap_a = a.checkpoint_bytes().expect("checkpoint");
        let snap_b = b.checkpoint_bytes().expect("checkpoint");
        let config = EngineConfig::deterministic(2);
        let mut a = AnytimeEngine::restore(&snap_a[..], config.clone()).expect("restore");
        let mut b = AnytimeEngine::restore(&snap_b[..], config).expect("restore");
        b.set_force_full_publish(true);
        a.run_to_convergence();
        b.run_to_convergence();
        assert_views_match(&a.published(), &b.published());
    }
}

/// Epoch ids must be monotone and every view complete while readers race
/// a writer that publishes through the delta path.
#[test]
fn epochs_stay_monotone_under_concurrent_readers() {
    let mut g = AdjGraph::with_vertices(12);
    for i in 0..11u32 {
        g.add_edge(i, i + 1, 1 + i % 3).expect("path edge");
    }
    let mut engine = AnytimeEngine::new(g, EngineConfig::deterministic(2)).expect("engine");
    let cell = engine.view_cell();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let cell = cell.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut last = 0u64;
                let mut switches = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let view = cell.load();
                    assert!(view.epoch >= last, "epoch went backwards");
                    if view.epoch != last {
                        switches += 1;
                        last = view.epoch;
                    }
                    assert_eq!(view.closeness().len(), view.num_vertices());
                    assert!(view.top_k(4).len() <= 4);
                }
                switches
            })
        })
        .collect();

    for round in 0..40u32 {
        if engine.graph().num_vertices() < 64 {
            let batch = VertexBatch {
                vertices: vec![NewVertex { edges: vec![(round % 12, 1 + round % 4)] }],
            };
            engine
                .submit_with_strategy(DynamicChange::AddVertices(batch), AssignStrategy::RoundRobin)
                .expect("batch submits");
        }
        engine.rc_step();
    }
    while engine.rc_step() {}
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let switches: u64 = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert!(switches > 0, "readers observed live epochs");
    assert!(engine.published().converged);
}
