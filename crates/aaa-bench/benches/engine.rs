//! Criterion benchmarks for the engine phases: DD+IA construction, a
//! recombination step, vertex-addition strategies, and the restart
//! baseline.

use aaa_core::baseline::restart_run;
use aaa_core::changes::preferential_batch;
use aaa_core::{AnytimeEngine, AssignStrategy, EngineConfig};
use aaa_graph::generators::{barabasi_albert, WeightModel};
use aaa_graph::AdjGraph;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn graph() -> AdjGraph {
    barabasi_albert(800, 3, WeightModel::Unit, 5).unwrap()
}

fn bench_construction(c: &mut Criterion) {
    let g = graph();
    c.bench_function("engine/dd-ia/ba-800-p8", |b| {
        b.iter(|| black_box(AnytimeEngine::new(g.clone(), EngineConfig::deterministic(8)).unwrap()))
    });
}

fn bench_rc_step(c: &mut Criterion) {
    let g = graph();
    c.bench_function("engine/first-rc-step/ba-800-p8", |b| {
        b.iter_batched(
            || AnytimeEngine::new(g.clone(), EngineConfig::deterministic(8)).unwrap(),
            |mut e| {
                e.rc_step();
                black_box(e.rc_steps_done())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_vertex_addition_strategies(c: &mut Criterion) {
    let g = graph();
    let batch = preferential_batch(&g, 16, 3, 9);
    for (name, strategy) in [
        ("round-robin", AssignStrategy::RoundRobin),
        ("cut-edge", AssignStrategy::CutEdge { seed: 1, tries: 2 }),
        ("repartition", AssignStrategy::Repartition { seed: 1 }),
    ] {
        c.bench_function(&format!("engine/add-16-vertices/{name}"), |b| {
            b.iter_batched(
                || {
                    let mut e =
                        AnytimeEngine::new(g.clone(), EngineConfig::deterministic(8)).unwrap();
                    e.run_to_convergence();
                    e
                },
                |mut e| {
                    e.apply_vertex_additions(&batch, strategy).unwrap();
                    e.run_to_convergence();
                    black_box(e.rc_steps_done())
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_restart_baseline(c: &mut Criterion) {
    let g = graph();
    c.bench_function("baseline/full-restart/ba-800-p8", |b| {
        b.iter(|| black_box(restart_run(&g, &EngineConfig::deterministic(8)).unwrap().1))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_construction, bench_rc_step, bench_vertex_addition_strategies, bench_restart_baseline
}
criterion_main!(benches);
