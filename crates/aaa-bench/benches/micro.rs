//! Criterion micro-benchmarks for the substrate kernels: shortest paths,
//! row relaxation, partitioning, community detection, schedules, and the
//! chaos-off exchange fast path.

use aaa_core::rank::{relax_via, RankState, RowMsg};
use aaa_graph::community::{louvain, LouvainConfig};
use aaa_graph::generators::{barabasi_albert, planted_partition, PlantedPartition, WeightModel};
use aaa_graph::sssp::dijkstra;
use aaa_graph::{Csr, INF};
use aaa_partition::{MultilevelPartitioner, Partitioner};
use aaa_runtime::schedule::{all_to_all_cost_us, tournament_rounds};
use aaa_runtime::{ChaosPlan, Cluster, ClusterConfig, ExchangeSchedule, ExecutionMode, LogPModel};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_dijkstra(c: &mut Criterion) {
    let g = barabasi_albert(2_000, 3, WeightModel::Unit, 1).unwrap();
    let csr = Csr::from_adj(&g);
    c.bench_function("dijkstra/ba-2000-m3", |b| b.iter(|| black_box(dijkstra(&csr, black_box(0)))));
}

fn bench_relax_via(c: &mut Criterion) {
    let n = 5_000;
    let via: Vec<u32> = (0..n).map(|i| (i % 97) as u32).collect();
    c.bench_function("relax_via/5000-cols", |b| {
        b.iter_batched(
            || vec![INF / 2; n],
            |mut row| black_box(relax_via(&mut row, 3, &via)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_min_merge(c: &mut Criterion) {
    use aaa_core::dv::min_merge;
    for n in [512usize, 4_096] {
        let src: Vec<u32> = (0..n).map(|i| (i % 89) as u32).collect();
        c.bench_function(&format!("min_merge/{n}-cols"), |b| {
            b.iter_batched(
                || (0..n).map(|i| (i % 97) as u32).collect::<Vec<u32>>(),
                |mut dst| black_box(min_merge(&mut dst, &src)),
                BatchSize::SmallInput,
            )
        });
    }
}

/// The whole-`relax_worklist` hot path, driven through the RC consume the
/// engine actually runs: rank 1 of a 2-rank block partition produces its
/// post-IA boundary rows, and the benchmark measures rank 0 min-merging
/// that inbox and relaxing to its rank-local fixed point.
fn bench_relax_worklist(c: &mut Criterion) {
    for n in [512usize, 4_096] {
        let g = barabasi_albert(n, 3, WeightModel::Unit, 1).unwrap();
        let owner: Vec<u32> = (0..n as u32).map(|v| u32::from(v as usize >= n / 2)).collect();
        let adj = |v: u32| g.neighbors(v).to_vec();
        let mut s0 = RankState::build(0, owner.clone(), adj);
        let mut s1 = RankState::build(1, owner, adj);
        s0.initial_approximation();
        s1.initial_approximation();
        // Retire the IA dirt so the clone under test is a realistic
        // mid-RC rank, then route rank 1's boundary rows to rank 0.
        let _ = s0.produce_rc_messages(usize::MAX);
        let inbox: Vec<(usize, RowMsg)> = s1
            .produce_rc_messages(usize::MAX)
            .into_iter()
            .filter(|&(q, _)| q == 0)
            .map(|(_, m)| (1usize, m))
            .collect();
        // The kernel is bit-identical for any thread count; "par" uses the
        // host's cores (on a single-core runner it measures the same code
        // path plus scope overhead).
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        for (label, threads) in [("seq", 1usize), ("par", cores.max(2))] {
            s0.set_kernel_threads(threads);
            c.bench_function(&format!("relax_worklist/ba-{n}-p2/{label}"), |b| {
                b.iter_batched(
                    || (s0.clone(), inbox.clone()),
                    |(mut s, inbox)| {
                        s.consume_rc_messages(inbox);
                        black_box(s.last_changed)
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
}

fn bench_multilevel_partition(c: &mut Criterion) {
    let g = barabasi_albert(5_000, 3, WeightModel::Unit, 2).unwrap();
    c.bench_function("multilevel/ba-5000-k16", |b| {
        b.iter(|| {
            let p = MultilevelPartitioner::seeded(3).partition(&g, 16).unwrap();
            black_box(p)
        })
    });
}

fn bench_louvain(c: &mut Criterion) {
    let m = PlantedPartition { communities: 10, size: 100, p_in: 0.1, p_out: 0.002 };
    let (g, _) = planted_partition(&m, WeightModel::Unit, 4).unwrap();
    c.bench_function("louvain/sbm-1000", |b| {
        b.iter(|| black_box(louvain(&g, &LouvainConfig::default())))
    });
}

fn bench_schedules(c: &mut Criterion) {
    let bytes = vec![vec![4096usize; 16]; 16];
    let model = LogPModel::ethernet_1g();
    c.bench_function("schedule/tournament-rounds-p64", |b| {
        b.iter(|| black_box(tournament_rounds(black_box(64))))
    });
    c.bench_function("schedule/all-to-all-cost-p16", |b| {
        b.iter(|| black_box(all_to_all_cost_us(ExchangeSchedule::Pairwise, &model, &bytes)))
    });
}

/// The chaos zero-cost claim: with no plan — or with `ChaosPlan::none()`
/// installed — `exchange` must take its original fast routing path, so the
/// two variants should measure identically (within noise).
fn bench_exchange_chaos_off(c: &mut Criterion) {
    let run = |chaos: Option<ChaosPlan>| {
        let cfg = ClusterConfig {
            mode: ExecutionMode::Sequential,
            model: LogPModel::ethernet_1g(),
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(vec![0u64; 16], cfg);
        if let Some(plan) = chaos {
            cluster.set_chaos(plan);
        }
        for _ in 0..8 {
            cluster.exchange(
                |rank, _| (0..16).filter(|&d| d != rank).map(|d| (d, rank as u64)).collect(),
                |_| 8,
                |_, s, inbox| *s += inbox.iter().map(|&(_, m)| m).sum::<u64>(),
            );
        }
        cluster.stats().messages
    };
    c.bench_function("exchange/16r-8rounds/no-plan", |b| b.iter(|| black_box(run(None))));
    c.bench_function("exchange/16r-8rounds/chaos-none", |b| {
        b.iter(|| black_box(run(Some(ChaosPlan::none()))))
    });
}

/// The observability zero-cost claim: a disarmed sink (the default
/// `NoopSink`) must leave `exchange` within noise of the uninstrumented
/// number above; an armed `MemorySink` shows the price of recording.
fn bench_exchange_sinks(c: &mut Criterion) {
    use aaa_runtime::{EventSink, MemorySink, NoopSink};
    use std::sync::Arc;
    let run = |sink: Option<Arc<dyn EventSink>>| {
        let cfg = ClusterConfig {
            mode: ExecutionMode::Sequential,
            model: LogPModel::ethernet_1g(),
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(vec![0u64; 16], cfg);
        if let Some(s) = sink {
            cluster.set_sink(s);
        }
        for _ in 0..8 {
            cluster.exchange(
                |rank, _| (0..16).filter(|&d| d != rank).map(|d| (d, rank as u64)).collect(),
                |_| 8,
                |_, s, inbox| *s += inbox.iter().map(|&(_, m)| m).sum::<u64>(),
            );
        }
        cluster.stats().messages
    };
    c.bench_function("exchange/16r-8rounds/noop-sink", |b| {
        b.iter(|| black_box(run(Some(Arc::new(NoopSink)))))
    });
    c.bench_function("exchange/16r-8rounds/memory-sink", |b| {
        b.iter(|| black_box(run(Some(Arc::new(MemorySink::new())))))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dijkstra, bench_relax_via, bench_min_merge, bench_relax_worklist, bench_multilevel_partition, bench_louvain, bench_schedules, bench_exchange_chaos_off, bench_exchange_sinks
}
criterion_main!(benches);
